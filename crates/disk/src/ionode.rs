//! Dedicated I/O processors with asynchronous submission.
//!
//! The paper's §4 prescribes "multiple buffering and dedicated I/O
//! processors" — in a 1989 multiprocessor, processors set aside to do
//! nothing but move data between compute nodes and drives. [`IoNode`] is
//! that component: it owns one device, services requests from a queue on
//! its own persistent worker thread, and reports queue statistics.
//! [`IoNode::device`] yields a [`BlockDevice`] handle that transparently
//! routes through the node, so an entire volume can be put behind I/O
//! processors without any layer above noticing.
//!
//! Two things make the node an *executor* rather than a proxy:
//!
//! * **Asynchronous submission.** [`BlockDevice::submit_read_blocks`] /
//!   [`BlockDevice::submit_write_blocks`] on a node handle enqueue the
//!   transfer and return a [`Ticket`] immediately; the caller collects
//!   the result with [`Ticket::wait`]. Span I/O submits every per-device
//!   run up front and blocks only on completion — no thread is ever
//!   spawned per request.
//! * **Scheduled dispatch.** The worker drains its channel into a pending
//!   set and picks the next request with a [`Scheduler`]
//!   ([`SchedPolicy`]: FIFO / SSTF / SCAN / C-SCAN), mapping block
//!   addresses onto cylinders with [`block_cylinder`]. Concurrent
//!   sessions sharing a device get seek-aware reordering for free.
//!
//! Reordering is safe because every completion is individually awaited:
//! a caller that must order two transfers orders them by waiting the
//! first ticket before submitting the second, and callers on different
//! threads never had an ordering guarantee to lose.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;

use pario_check::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use crate::device::{BlockDevice, DeviceRef, IoCounters};
use crate::error::{DiskError, Result};
use crate::sched::{block_cylinder, SchedPolicy, Scheduler};

/// A pending asynchronous I/O completion.
///
/// Returned by [`BlockDevice::submit_read_blocks`] and
/// [`BlockDevice::submit_write_blocks`]. Dropping a ticket abandons the
/// result but not the operation: a transfer already queued on an
/// [`IoNode`] still executes.
#[must_use = "a ticket does nothing until waited on"]
pub struct Ticket<T> {
    inner: TicketInner<T>,
}

enum TicketInner<T> {
    Ready(Result<T>),
    Pending(Receiver<Result<T>>),
}

impl<T> Ticket<T> {
    /// A ticket that is already complete — what synchronous devices
    /// return from the submit API.
    pub fn ready(res: Result<T>) -> Ticket<T> {
        Ticket {
            inner: TicketInner::Ready(res),
        }
    }

    fn pending(rx: Receiver<Result<T>>) -> Ticket<T> {
        Ticket {
            inner: TicketInner::Pending(rx),
        }
    }

    /// Block until the operation completes and take its result.
    pub fn wait(self) -> Result<T> {
        match self.inner {
            TicketInner::Ready(res) => res,
            TicketInner::Pending(rx) => rx
                .recv()
                .map_err(|_| DiskError::Io("I/O node dropped request".into()))?,
        }
    }

    /// Wait for whichever of two tickets completes first — the hedged
    /// read: submit the same data from two replicas and take the faster.
    ///
    /// The first `Ok` wins and the loser's result is abandoned (its
    /// operation still executes; see the [`Ticket`] drop contract). If
    /// the faster completion failed, the slower ticket is awaited as the
    /// fallback; if both fail, the first error observed is returned.
    pub fn race(a: Ticket<T>, b: Ticket<T>) -> Result<T> {
        fn settle<T>(first: Result<T>, slower: Ticket<T>) -> Result<T> {
            match first {
                Ok(v) => Ok(v),
                Err(e) => slower.wait().or(Err(e)),
            }
        }
        match (a.inner, b.inner) {
            (TicketInner::Ready(res), other) | (other, TicketInner::Ready(res)) => {
                settle(res, Ticket { inner: other })
            }
            (TicketInner::Pending(ra), TicketInner::Pending(rb)) => {
                // Alternate short timed receives between the two replies.
                // The ~50us granularity is noise next to the queue wait
                // that makes hedging worthwhile in the first place.
                use crossbeam::channel::RecvTimeoutError;
                let step = std::time::Duration::from_micros(50);
                let dropped = || Err(DiskError::Io("I/O node dropped request".into()));
                loop {
                    match ra.recv_timeout(step) {
                        Ok(res) => return settle(res, Ticket::pending(rb)),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            return settle(dropped(), Ticket::pending(rb));
                        }
                    }
                    match rb.recv_timeout(step) {
                        Ok(res) => return settle(res, Ticket::pending(ra)),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            return settle(dropped(), Ticket::pending(ra));
                        }
                    }
                }
            }
        }
    }
}

/// A request plus its arrival order and the instant it entered the
/// queue, so the worker can schedule deterministically and attribute
/// elapsed time to queueing vs. device service.
struct Queued {
    enqueued: Instant,
    tag: u64,
    req: Request,
}

impl Queued {
    /// The cylinder the disk arm must reach to start this request.
    /// Flushes have no position; they are serviced at the current head.
    fn cylinder(&self, head: u32, num_blocks: u64) -> u32 {
        match &self.req {
            Request::Read { block, .. } | Request::Write { block, .. } => {
                block_cylinder(*block, num_blocks)
            }
            Request::Flush { .. } => head,
        }
    }
}

/// Every transfer is vectored: single-block operations are one-block
/// spans (the wrapped device's vectored path charges them identically).
/// Replies carry the buffer back so callers can reuse it.
enum Request {
    Read {
        block: u64,
        buf: Box<[u8]>,
        reply: Sender<Result<Box<[u8]>>>,
    },
    Write {
        block: u64,
        data: Box<[u8]>,
        reply: Sender<Result<Box<[u8]>>>,
    },
    Flush {
        reply: Sender<Result<()>>,
    },
}

/// Stats and geometry shared between the node, its worker thread, and
/// every device handle. Deliberately does NOT hold the request sender:
/// the channel closes (and the worker exits, after draining everything
/// already queued) when the node and all handles are gone.
struct Shared {
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
    serviced: AtomicU64,
    queue_wait_nanos: AtomicU64,
    service_nanos: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    next_tag: AtomicU64,
    block_size: usize,
    num_blocks: u64,
    config: NodeConfig,
    label: String,
}

impl Shared {
    fn snapshot(&self) -> IoNodeStats {
        IoNodeStats {
            serviced: self.serviced.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            in_flight: self.in_flight.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            queue_wait_nanos: self.queue_wait_nanos.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            service_nanos: self.service_nanos.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            retries: self.retries.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            timeouts: self.timeouts.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            panics: self.panics.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
        }
    }
}

/// Bounded retry for transient device faults.
///
/// A fault classified retryable by [`DiskError::is_transient`] is
/// retried in place by the worker, with exponential backoff, before the
/// error reaches the ticket — the layers above only ever see transients
/// that survived the whole budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per request after the initial attempt (0 disables).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff: std::time::Duration::from_micros(20),
        }
    }
}

/// Full executor configuration for one I/O node.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NodeConfig {
    /// Dispatch order for the pending set.
    pub policy: SchedPolicy,
    /// Transient-fault retry budget.
    pub retry: RetryPolicy,
    /// Per-ticket deadline measured from submission: a request that is
    /// still unserved (or still retrying) past this budget fails with
    /// [`DiskError::Timeout`] instead of occupying the device. `None`
    /// means requests wait forever.
    pub deadline: Option<std::time::Duration>,
}

impl Default for NodeConfig {
    fn default() -> NodeConfig {
        NodeConfig {
            policy: SchedPolicy::Fifo,
            retry: RetryPolicy::default(),
            deadline: None,
        }
    }
}

/// A dedicated I/O processor serving one device.
///
/// The worker thread runs until the node and every handle from
/// [`IoNode::device`] have been dropped, then drains whatever is still
/// queued before exiting — shutdown never abandons an accepted request.
pub struct IoNode {
    shared: Arc<Shared>,
    queue_tx: Sender<Queued>,
}

/// Queue statistics for an I/O node.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IoNodeStats {
    /// Requests serviced since the node started.
    pub serviced: u64,
    /// Requests queued or in service right now.
    pub in_flight: u64,
    /// The deepest the queue has been.
    pub max_in_flight: u64,
    /// Cumulative nanoseconds serviced requests spent waiting in the
    /// queue before the worker picked them up.
    pub queue_wait_nanos: u64,
    /// Cumulative nanoseconds the worker spent inside device transfers.
    pub service_nanos: u64,
    /// Transient faults retried in place by the worker
    /// (see [`RetryPolicy`]).
    pub retries: u64,
    /// Requests expired by the per-ticket deadline
    /// (see [`NodeConfig::deadline`]).
    pub timeouts: u64,
    /// Device operations that panicked; each failed only its own ticket.
    pub panics: u64,
}

impl IoNodeStats {
    /// Accumulate another node's statistics into this one (`in_flight`
    /// and totals add; `max_in_flight` takes the deeper queue).
    pub fn absorb(&mut self, other: IoNodeStats) {
        self.serviced += other.serviced;
        self.in_flight += other.in_flight;
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
        self.queue_wait_nanos += other.queue_wait_nanos;
        self.service_nanos += other.service_nanos;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.panics += other.panics;
    }
}

impl IoNode {
    /// Spawn an I/O processor thread owning `inner`, dispatching its
    /// queue in arrival order.
    pub fn spawn(inner: DeviceRef) -> IoNode {
        IoNode::spawn_with_policy(inner, SchedPolicy::Fifo)
    }

    /// Spawn an I/O processor thread owning `inner`, dispatching its
    /// queue per `policy` (SSTF and the elevator policies reorder a
    /// backlog to cut arm travel; see [`Scheduler`]), with the default
    /// transient-retry budget and no deadline.
    pub fn spawn_with_policy(inner: DeviceRef, policy: SchedPolicy) -> IoNode {
        IoNode::spawn_with_config(
            inner,
            NodeConfig {
                policy,
                ..NodeConfig::default()
            },
        )
    }

    /// Spawn an I/O processor with full control over dispatch policy,
    /// retry budget, and per-ticket deadline.
    pub fn spawn_with_config(inner: DeviceRef, config: NodeConfig) -> IoNode {
        let (queue_tx, queue_rx): (Sender<Queued>, Receiver<Queued>) = unbounded();
        let shared = Arc::new(Shared {
            in_flight: AtomicU64::new(0),
            max_in_flight: AtomicU64::new(0),
            serviced: AtomicU64::new(0),
            queue_wait_nanos: AtomicU64::new(0),
            service_nanos: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            next_tag: AtomicU64::new(0),
            block_size: inner.block_size(),
            num_blocks: inner.num_blocks(),
            config,
            label: format!("ionode({})", inner.label()),
        });
        let worker_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pario-ionode".into())
            .spawn(move || worker(inner, &worker_shared, &queue_rx))
            // invariant: spawn fails only on OS thread exhaustion at startup.
            .expect("spawn I/O node thread");
        IoNode { shared, queue_tx }
    }

    /// Wrap a whole device bank: one I/O processor per device. Returns
    /// the nodes (for statistics) and the transparent device handles.
    pub fn spawn_bank(devices: Vec<DeviceRef>) -> (Vec<IoNode>, Vec<DeviceRef>) {
        IoNode::spawn_bank_with_policy(devices, SchedPolicy::Fifo)
    }

    /// [`IoNode::spawn_bank`] with a dispatch policy shared by every
    /// worker.
    pub fn spawn_bank_with_policy(
        devices: Vec<DeviceRef>,
        policy: SchedPolicy,
    ) -> (Vec<IoNode>, Vec<DeviceRef>) {
        let nodes: Vec<IoNode> = devices
            .into_iter()
            .map(|d| IoNode::spawn_with_policy(d, policy))
            .collect();
        let handles = nodes.iter().map(|n| n.device()).collect();
        (nodes, handles)
    }

    /// A [`BlockDevice`] handle that routes through this node's queue.
    pub fn device(&self) -> DeviceRef {
        Arc::new(IoNodeDevice {
            shared: Arc::clone(&self.shared),
            queue_tx: self.queue_tx.clone(),
        })
    }

    /// The dispatch policy the worker runs.
    pub fn policy(&self) -> SchedPolicy {
        self.shared.config.policy
    }

    /// The full executor configuration the worker runs.
    pub fn config(&self) -> NodeConfig {
        self.shared.config
    }

    /// Current queue statistics.
    pub fn stats(&self) -> IoNodeStats {
        self.shared.snapshot()
    }
}

/// The worker loop: block for one request, opportunistically drain the
/// rest of the channel into a pending set, and service the set in
/// scheduler order until node and handles are gone AND the set is empty.
fn worker(inner: DeviceRef, shared: &Shared, queue_rx: &Receiver<Queued>) {
    let num_blocks = inner.num_blocks();
    let config = shared.config;
    let mut sched = Scheduler::new(config.policy);
    let mut head: u32 = 0;
    let mut pending: Vec<Queued> = Vec::new();
    // Stats are settled BEFORE the reply is sent, so a client that
    // observes its request complete also observes it counted.
    let complete = |wait: u64, service: u64| {
        shared.serviced.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        shared.queue_wait_nanos.fetch_add(wait, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        shared.service_nanos.fetch_add(service, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        shared.in_flight.fetch_sub(1, Ordering::Relaxed); // ordering: stats gauge; completion is published by the ticket
    };
    loop {
        if pending.is_empty() {
            // recv() keeps yielding queued requests after every sender is
            // gone, so shutdown naturally drains the backlog.
            match queue_rx.recv() {
                Ok(q) => pending.push(q),
                Err(_) => return,
            }
        }
        while let Ok(q) = queue_rx.try_recv() {
            pending.push(q);
        }
        let keyed: Vec<(u32, u64)> = pending
            .iter()
            .map(|q| (q.cylinder(head, num_blocks), q.tag))
            .collect();
        // invariant: guarded above — this path runs only with pending non-empty.
        let idx = sched.pick(&keyed, head).expect("pending set is non-empty");
        let Queued { enqueued, req, .. } = pending.swap_remove(idx);
        let deadline_at = config.deadline.map(|d| enqueued + d);
        let started = Instant::now();
        let wait = (started - enqueued).as_nanos() as u64;
        match req {
            Request::Read {
                block,
                mut buf,
                reply,
            } => {
                head = end_cylinder(block, buf.len() / shared.block_size, num_blocks);
                let res = execute(shared, &config, deadline_at, || {
                    inner.read_blocks_at(block, &mut buf)
                })
                .map(|()| buf);
                complete(wait, started.elapsed().as_nanos() as u64);
                let _ = reply.send(res);
            }
            Request::Write { block, data, reply } => {
                head = end_cylinder(block, data.len() / shared.block_size, num_blocks);
                let res = execute(shared, &config, deadline_at, || {
                    inner.write_blocks_at(block, &data)
                })
                .map(|()| data);
                complete(wait, started.elapsed().as_nanos() as u64);
                let _ = reply.send(res);
            }
            Request::Flush { reply } => {
                let res = execute(shared, &config, deadline_at, || inner.flush());
                complete(wait, started.elapsed().as_nanos() as u64);
                let _ = reply.send(res);
            }
        }
    }
}

/// Run one device operation under the node's fault policy: transient
/// errors are retried with exponential backoff up to the
/// [`RetryPolicy`] budget, the per-ticket deadline converts an expired
/// request into [`DiskError::Timeout`] *before* it occupies the device,
/// and a panicking device op fails only its own ticket — the worker
/// reports it as an I/O error and keeps serving.
fn execute<T>(
    shared: &Shared,
    config: &NodeConfig,
    deadline_at: Option<Instant>,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let expired = |at: Option<Instant>| at.is_some_and(|d| Instant::now() >= d);
    let timeout = || {
        shared.timeouts.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        DiskError::Timeout {
            device: shared.label.clone(),
        }
    };
    if expired(deadline_at) {
        return Err(timeout());
    }
    let mut attempt: u32 = 0;
    loop {
        match catch_unwind(AssertUnwindSafe(&mut op)) {
            Ok(Ok(v)) => return Ok(v),
            Ok(Err(e)) if e.is_transient() && attempt < config.retry.max_retries => {
                if expired(deadline_at) {
                    return Err(timeout());
                }
                shared.retries.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
                std::thread::sleep(config.retry.backoff * (1u32 << attempt.min(16)));
                attempt += 1;
            }
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                shared.panics.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
                return Err(DiskError::Io(format!(
                    "device operation panicked in {}",
                    shared.label
                )));
            }
        }
    }
}

/// Cylinder of the last block of a transfer — where the arm rests after.
fn end_cylinder(block: u64, nblocks: usize, num_blocks: u64) -> u32 {
    block_cylinder(block + (nblocks as u64).saturating_sub(1), num_blocks)
}

struct IoNodeDevice {
    shared: Arc<Shared>,
    queue_tx: Sender<Queued>,
}

impl IoNodeDevice {
    fn enqueue(&self, req: Request) -> Result<()> {
        let inflight = self.shared.in_flight.fetch_add(1, Ordering::Relaxed) + 1; // ordering: stats gauge; the queue channel orders the hand-off
        self.shared
            .max_in_flight
            .fetch_max(inflight, Ordering::Relaxed); // ordering: monotonic high-water mark, diagnostic only
        self.queue_tx
            .send(Queued {
                enqueued: Instant::now(),
                tag: self.shared.next_tag.fetch_add(1, Ordering::Relaxed), // ordering: tag needs uniqueness, not ordering
                req,
            })
            .map_err(|_| {
                self.shared.in_flight.fetch_sub(1, Ordering::Relaxed); // ordering: stats gauge; the send failed, nothing was handed off
                DiskError::Io("I/O node stopped".into())
            })
    }

    fn whole_blocks(&self, len: usize) {
        assert_eq!(
            len % self.shared.block_size,
            0,
            "buffer must be a whole number of blocks"
        );
    }
}

impl BlockDevice for IoNodeDevice {
    fn block_size(&self) -> usize {
        self.shared.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.shared.num_blocks
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        let data = self
            .submit_read_blocks(block, vec![0u8; self.shared.block_size].into_boxed_slice())
            .wait()?;
        buf.copy_from_slice(&data);
        Ok(())
    }

    fn write_block(&self, block: u64, data: &[u8]) -> Result<()> {
        self.submit_write_blocks(block, data.to_vec().into_boxed_slice())
            .wait()
            .map(|_| ())
    }

    /// One queued request for the whole run, serviced by the wrapped
    /// device's own vectored path.
    fn read_blocks_at(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let data = self
            .submit_read_blocks(block, vec![0u8; buf.len()].into_boxed_slice())
            .wait()?;
        buf.copy_from_slice(&data);
        Ok(())
    }

    /// One queued request for the whole run.
    fn write_blocks_at(&self, block: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        self.submit_write_blocks(block, data.to_vec().into_boxed_slice())
            .wait()
            .map(|_| ())
    }

    /// True asynchronous submission: the request is queued and the
    /// ticket completes when the worker services it.
    fn submit_read_blocks(&self, block: u64, buf: Box<[u8]>) -> Ticket<Box<[u8]>> {
        self.whole_blocks(buf.len());
        if buf.is_empty() {
            return Ticket::ready(Ok(buf));
        }
        let (tx, rx) = bounded(1);
        match self.enqueue(Request::Read {
            block,
            buf,
            reply: tx,
        }) {
            Ok(()) => Ticket::pending(rx),
            Err(e) => Ticket::ready(Err(e)),
        }
    }

    fn submit_write_blocks(&self, block: u64, data: Box<[u8]>) -> Ticket<Box<[u8]>> {
        self.whole_blocks(data.len());
        if data.is_empty() {
            return Ticket::ready(Ok(data));
        }
        let (tx, rx) = bounded(1);
        match self.enqueue(Request::Write {
            block,
            data,
            reply: tx,
        }) {
            Ok(()) => Ticket::pending(rx),
            Err(e) => Ticket::ready(Err(e)),
        }
    }

    fn flush(&self) -> Result<()> {
        let (tx, rx) = bounded(1);
        self.enqueue(Request::Flush { reply: tx })?;
        rx.recv()
            .map_err(|_| DiskError::Io("I/O node dropped request".into()))?
    }

    fn counters(&self) -> IoCounters {
        // Detailed read/write counters remain on the wrapped device; the
        // node tracks queue statistics instead.
        IoCounters::default()
    }

    fn ionode_stats(&self) -> Option<IoNodeStats> {
        Some(self.shared.snapshot())
    }

    /// Failure injection belongs to the wrapped device, not the node.
    fn fail(&self) {}

    fn heal(&self) {}

    fn is_failed(&self) -> bool {
        false
    }

    fn label(&self) -> String {
        self.shared.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDisk;

    #[test]
    fn transparent_round_trip() {
        let node = IoNode::spawn(Arc::new(MemDisk::new(16, 64)));
        let dev = node.device();
        assert_eq!(dev.block_size(), 64);
        assert_eq!(dev.num_blocks(), 16);
        dev.write_block(3, &[7u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        dev.read_block(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        dev.flush().unwrap();
        let s = node.stats();
        assert_eq!(s.serviced, 3);
        assert_eq!(s.in_flight, 0);
        assert!(dev.label().starts_with("ionode("));
        assert_eq!(node.policy(), SchedPolicy::Fifo);
    }

    #[test]
    fn span_requests_cost_one_unit_of_service() {
        let mem = Arc::new(MemDisk::new(32, 64));
        let node = IoNode::spawn(Arc::clone(&mem) as DeviceRef);
        let dev = node.device();
        let data: Vec<u8> = (0..64 * 8).map(|i| i as u8).collect();
        dev.write_blocks_at(4, &data).unwrap();
        let mut back = vec![0u8; 64 * 8];
        dev.read_blocks_at(4, &mut back).unwrap();
        assert_eq!(back, data);
        // Two span transfers = two serviced requests, not sixteen.
        assert_eq!(node.stats().serviced, 2);
        // The wrapped device saw them as vectored requests too.
        let c = mem.counters();
        assert_eq!((c.reads, c.writes), (1, 1));
        assert_eq!((c.blocks_read, c.blocks_written), (8, 8));
        // Errors round-trip through the span path.
        let mut big = vec![0u8; 64 * 64];
        assert!(matches!(
            dev.read_blocks_at(1, &mut big),
            Err(DiskError::OutOfRange { .. })
        ));
    }

    #[test]
    fn submitted_tickets_complete_out_of_band() {
        let node = IoNode::spawn(Arc::new(MemDisk::new(32, 64)));
        let dev = node.device();
        // Submit a batch of writes before waiting on any of them.
        let tickets: Vec<Ticket<Box<[u8]>>> = (0..8u64)
            .map(|b| dev.submit_write_blocks(b, vec![b as u8 + 1; 64].into_boxed_slice()))
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        // Reads the same way; buffers come back filled.
        let tickets: Vec<(u64, Ticket<Box<[u8]>>)> = (0..8u64)
            .map(|b| {
                (
                    b,
                    dev.submit_read_blocks(b, vec![0u8; 64].into_boxed_slice()),
                )
            })
            .collect();
        for (b, t) in tickets {
            let buf = t.wait().unwrap();
            assert!(buf.iter().all(|&x| x == b as u8 + 1), "block {b}");
        }
        assert_eq!(node.stats().serviced, 16);
        assert_eq!(node.stats().in_flight, 0);
    }

    #[test]
    fn shutdown_drains_in_flight_tickets() {
        // Drop the node and every handle while writes are still queued:
        // the worker must drain and complete them all, not abandon them.
        use std::time::Duration;
        let mem = Arc::new(MemDisk::new(64, 64).with_delay(Duration::from_micros(100)));
        let node = IoNode::spawn(Arc::clone(&mem) as DeviceRef);
        let dev = node.device();
        let tickets: Vec<Ticket<Box<[u8]>>> = (0..32u64)
            .map(|b| dev.submit_write_blocks(b, vec![b as u8; 64].into_boxed_slice()))
            .collect();
        drop(dev);
        drop(node); // all senders gone; the backlog must still be served
        for (b, t) in tickets.into_iter().enumerate() {
            t.wait().unwrap_or_else(|e| panic!("ticket {b}: {e}"));
        }
        let mut buf = vec![0u8; 64];
        for b in 0..32u64 {
            mem.read_block(b, &mut buf).unwrap();
            assert!(buf.iter().all(|&x| x == b as u8), "block {b}");
        }
    }

    #[test]
    fn panicking_device_op_fails_its_ticket_not_the_node() {
        /// A device that panics on a chosen block.
        struct Landmine(MemDisk, u64);
        impl BlockDevice for Landmine {
            fn block_size(&self) -> usize {
                self.0.block_size()
            }
            fn num_blocks(&self) -> u64 {
                self.0.num_blocks()
            }
            fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()> {
                assert!(block != self.1, "landmine");
                self.0.read_block(block, buf)
            }
            fn write_block(&self, block: u64, data: &[u8]) -> Result<()> {
                self.0.write_block(block, data)
            }
            fn counters(&self) -> IoCounters {
                self.0.counters()
            }
            fn fail(&self) {
                self.0.fail()
            }
            fn heal(&self) {
                self.0.heal()
            }
            fn is_failed(&self) -> bool {
                self.0.is_failed()
            }
        }
        let node = IoNode::spawn(Arc::new(Landmine(MemDisk::new(16, 64), 5)));
        let dev = node.device();
        dev.write_block(5, &[1u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        let err = dev.read_block(5, &mut buf).unwrap_err();
        assert!(
            matches!(&err, DiskError::Io(m) if m.contains("panicked")),
            "unexpected error: {err}"
        );
        // The worker survived the panic and keeps serving.
        dev.write_block(6, &[2u8; 64]).unwrap();
        dev.read_block(6, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 2));
        assert_eq!(node.stats().in_flight, 0);
    }

    #[test]
    fn concurrent_clients_share_the_node() {
        let node = IoNode::spawn(Arc::new(MemDisk::new(64, 64)));
        crossbeam::thread::scope(|s| {
            for t in 0..8u8 {
                let dev = node.device();
                s.spawn(move |_| {
                    for b in 0..8u64 {
                        let block = b + u64::from(t) * 8;
                        dev.write_block(block, &[t + 1; 64]).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let dev = node.device();
        let mut buf = vec![0u8; 64];
        for t in 0..8u8 {
            for b in 0..8u64 {
                dev.read_block(b + u64::from(t) * 8, &mut buf).unwrap();
                assert!(buf.iter().all(|&x| x == t + 1));
            }
        }
        assert_eq!(node.stats().serviced, 128);
        assert!(node.stats().max_in_flight >= 1);
    }

    #[test]
    fn sstf_node_round_trips_under_load() {
        // Correctness is order-independent: a seek-optimising node must
        // still complete every submitted request exactly once.
        let node = IoNode::spawn_with_policy(Arc::new(MemDisk::new(256, 64)), SchedPolicy::Sstf);
        assert_eq!(node.policy(), SchedPolicy::Sstf);
        let dev = node.device();
        let blocks: Vec<u64> = (0..64u64).map(|i| (i * 97) % 256).collect();
        let writes: Vec<Ticket<Box<[u8]>>> = blocks
            .iter()
            .map(|&b| dev.submit_write_blocks(b, vec![b as u8; 64].into_boxed_slice()))
            .collect();
        for t in writes {
            t.wait().unwrap();
        }
        let reads: Vec<(u64, Ticket<Box<[u8]>>)> = blocks
            .iter()
            .map(|&b| {
                (
                    b,
                    dev.submit_read_blocks(b, vec![0u8; 64].into_boxed_slice()),
                )
            })
            .collect();
        for (b, t) in reads {
            assert!(t.wait().unwrap().iter().all(|&x| x == b as u8));
        }
        assert_eq!(node.stats().serviced, 128);
    }

    #[test]
    fn wait_and_service_time_accumulate() {
        use std::time::Duration;
        let slow = Arc::new(MemDisk::new(16, 64).with_delay(Duration::from_micros(200)));
        let node = IoNode::spawn(slow as DeviceRef);
        // Two clients race: the second request queues behind the first,
        // so both service time and queue wait must accumulate.
        crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                let dev = node.device();
                s.spawn(move |_| {
                    for b in 0..4u64 {
                        dev.write_block(b, &[1u8; 64]).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let s = node.stats();
        assert_eq!(s.serviced, 8);
        // 8 requests x >=200us modelled transfer.
        assert!(
            s.service_nanos >= 8 * 200_000,
            "service time under-counted: {}",
            s.service_nanos
        );
        assert!(s.queue_wait_nanos > 0, "queued requests must report wait");
        // The device handle exposes the same stats through the trait hook.
        let via_handle = node.device().ionode_stats().unwrap();
        assert_eq!(via_handle.serviced, 8);
        // A plain device reports none.
        assert!((Arc::new(MemDisk::new(4, 64)) as DeviceRef)
            .ionode_stats()
            .is_none());
    }

    #[test]
    fn stats_absorb_aggregates() {
        let a = IoNodeStats {
            serviced: 3,
            in_flight: 1,
            max_in_flight: 2,
            queue_wait_nanos: 100,
            service_nanos: 400,
            retries: 2,
            timeouts: 1,
            panics: 0,
        };
        let mut agg = IoNodeStats::default();
        agg.absorb(a);
        agg.absorb(IoNodeStats {
            serviced: 1,
            in_flight: 0,
            max_in_flight: 5,
            queue_wait_nanos: 10,
            service_nanos: 20,
            retries: 1,
            timeouts: 0,
            panics: 3,
        });
        assert_eq!(agg.serviced, 4);
        assert_eq!(agg.max_in_flight, 5);
        assert_eq!(agg.queue_wait_nanos, 110);
        assert_eq!(agg.service_nanos, 420);
        assert_eq!((agg.retries, agg.timeouts, agg.panics), (3, 1, 3));
    }

    #[test]
    fn transient_faults_are_retried_in_place() {
        use crate::fault::{FaultDevice, FaultPlan};
        // Every third-ish op glitches; the worker's retry budget should
        // absorb all of them so clients never see an error.
        let (fault, faulty) = FaultDevice::wrap(
            Arc::new(MemDisk::new(32, 64)) as DeviceRef,
            FaultPlan {
                seed: 7,
                transient_rate: 0.3,
                ..FaultPlan::default()
            },
        );
        let node = IoNode::spawn(faulty);
        let dev = node.device();
        let mut buf = vec![0u8; 64];
        for b in 0..32u64 {
            dev.write_block(b, &[b as u8; 64]).unwrap();
        }
        for b in 0..32u64 {
            dev.read_block(b, &mut buf).unwrap();
            assert!(buf.iter().all(|&x| x == b as u8));
        }
        // With rate 0.3 over 64 ops some retries must have happened
        // (P[no transient at all] < 1e-9 for seed 7 it does glitch).
        assert!(node.stats().retries > 0, "{:?}", node.stats());
        assert!(fault.counts().transients > 0);
        assert_eq!(node.stats().timeouts, 0);
    }

    #[test]
    fn exhausted_retry_budget_surfaces_the_transient() {
        use crate::fault::{FaultDevice, FaultPlan};
        let (_, faulty) = FaultDevice::wrap(
            Arc::new(MemDisk::new(8, 64)) as DeviceRef,
            FaultPlan {
                transient_rate: 1.0,
                ..FaultPlan::default()
            },
        );
        let node = IoNode::spawn_with_config(
            faulty,
            NodeConfig {
                retry: RetryPolicy {
                    max_retries: 2,
                    backoff: std::time::Duration::from_micros(1),
                },
                ..NodeConfig::default()
            },
        );
        let dev = node.device();
        let mut buf = vec![0u8; 64];
        let err = dev.read_block(0, &mut buf).unwrap_err();
        assert!(err.is_transient(), "got {err}");
        assert_eq!(node.stats().retries, 2);
    }

    #[test]
    fn expired_deadline_times_out_without_touching_the_device() {
        use std::time::Duration;
        let mem = Arc::new(MemDisk::new(16, 64).with_delay(Duration::from_millis(2)));
        let node = IoNode::spawn_with_config(
            Arc::clone(&mem) as DeviceRef,
            NodeConfig {
                deadline: Some(Duration::from_micros(500)),
                ..NodeConfig::default()
            },
        );
        let dev = node.device();
        // A burst deep enough that tail requests queue past the deadline.
        let tickets: Vec<Ticket<Box<[u8]>>> = (0..8u64)
            .map(|b| dev.submit_write_blocks(b, vec![1u8; 64].into_boxed_slice()))
            .collect();
        let outcomes: Vec<Result<Box<[u8]>>> = tickets.into_iter().map(Ticket::wait).collect();
        assert!(outcomes[0].is_ok(), "first request had the device idle");
        let timed_out = outcomes
            .iter()
            .filter(|r| matches!(r, Err(DiskError::Timeout { .. })))
            .count() as u64;
        assert!(timed_out > 0, "queue tail must expire");
        assert_eq!(node.stats().timeouts, timed_out);
        // Timed-out writes never reached the media's request counters.
        assert_eq!(mem.counters().writes, 8 - timed_out);
    }

    #[test]
    fn panics_are_counted_per_node() {
        struct Landmine(MemDisk);
        impl BlockDevice for Landmine {
            fn block_size(&self) -> usize {
                self.0.block_size()
            }
            fn num_blocks(&self) -> u64 {
                self.0.num_blocks()
            }
            fn read_block(&self, _block: u64, _buf: &mut [u8]) -> Result<()> {
                panic!("landmine");
            }
            fn write_block(&self, block: u64, data: &[u8]) -> Result<()> {
                self.0.write_block(block, data)
            }
            fn counters(&self) -> IoCounters {
                self.0.counters()
            }
            fn fail(&self) {}
            fn heal(&self) {}
            fn is_failed(&self) -> bool {
                false
            }
        }
        let node = IoNode::spawn(Arc::new(Landmine(MemDisk::new(8, 64))));
        let dev = node.device();
        let mut buf = vec![0u8; 64];
        assert!(dev.read_block(0, &mut buf).is_err());
        assert!(dev.read_block(1, &mut buf).is_err());
        dev.write_block(0, &[1u8; 64]).unwrap();
        assert_eq!(node.stats().panics, 2);
    }

    #[test]
    fn race_prefers_the_faster_ok() {
        use std::time::Duration;
        let fast = IoNode::spawn(Arc::new(MemDisk::new(8, 64)));
        let slow_mem = Arc::new(MemDisk::new(8, 64).with_delay(Duration::from_millis(5)));
        let slow = IoNode::spawn(Arc::clone(&slow_mem) as DeviceRef);
        fast.device().write_block(0, &[1u8; 64]).unwrap();
        slow_mem.write_block(0, &[2u8; 64]).unwrap();
        let a = fast
            .device()
            .submit_read_blocks(0, vec![0u8; 64].into_boxed_slice());
        let b = slow
            .device()
            .submit_read_blocks(0, vec![0u8; 64].into_boxed_slice());
        let winner = Ticket::race(a, b).unwrap();
        assert!(winner.iter().all(|&x| x == 1), "fast replica must win");
    }

    #[test]
    fn race_falls_back_to_the_slower_ok() {
        let broken = Arc::new(MemDisk::new(8, 64));
        broken.fail();
        let good = IoNode::spawn(Arc::new(MemDisk::new(8, 64)));
        good.device().write_block(0, &[9u8; 64]).unwrap();
        let a = (Arc::clone(&broken) as DeviceRef)
            .submit_read_blocks(0, vec![0u8; 64].into_boxed_slice());
        let b = good
            .device()
            .submit_read_blocks(0, vec![0u8; 64].into_boxed_slice());
        let got = Ticket::race(a, b).unwrap();
        assert!(got.iter().all(|&x| x == 9));
        // Both failing: the error survives.
        let a = (Arc::clone(&broken) as DeviceRef)
            .submit_read_blocks(0, vec![0u8; 64].into_boxed_slice());
        let b = (Arc::clone(&broken) as DeviceRef)
            .submit_read_blocks(1, vec![0u8; 64].into_boxed_slice());
        assert!(matches!(
            Ticket::race(a, b),
            Err(DiskError::DeviceFailed { .. })
        ));
    }

    #[test]
    fn errors_propagate_through_the_node() {
        let mem = Arc::new(MemDisk::new(8, 64));
        let node = IoNode::spawn(Arc::clone(&mem) as DeviceRef);
        let dev = node.device();
        mem.fail();
        let mut buf = vec![0u8; 64];
        assert!(matches!(
            dev.read_block(0, &mut buf),
            Err(DiskError::DeviceFailed { .. })
        ));
        mem.heal();
        assert!(dev.read_block(0, &mut buf).is_ok());
        // Out-of-range also round-trips.
        assert!(matches!(
            dev.read_block(99, &mut buf),
            Err(DiskError::OutOfRange { .. })
        ));
    }

    #[test]
    fn whole_bank_behind_io_processors() {
        let (nodes, handles) = IoNode::spawn_bank(crate::mem_array(3, 32, 128));
        for (i, dev) in handles.iter().enumerate() {
            dev.write_block(0, &[i as u8 + 1; 128]).unwrap();
        }
        let mut buf = vec![0u8; 128];
        for (i, dev) in handles.iter().enumerate() {
            dev.read_block(0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == i as u8 + 1));
        }
        assert!(nodes.iter().all(|n| n.stats().serviced == 2));
    }
}
