//! Dedicated I/O processors.
//!
//! The paper's §4 prescribes "multiple buffering and dedicated I/O
//! processors" — in a 1989 multiprocessor, processors set aside to do
//! nothing but move data between compute nodes and drives. [`IoNode`] is
//! that component: it owns one device, services requests from a queue on
//! its own thread, and reports queue statistics. [`IoNode::device`]
//! yields a [`BlockDevice`] handle that transparently routes through the
//! node, so an entire volume can be put behind I/O processors without
//! any layer above noticing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use crate::device::{BlockDevice, DeviceRef, IoCounters};
use crate::error::{DiskError, Result};

/// A request plus the instant it entered the queue, so the worker can
/// attribute elapsed time to queueing vs. device service.
struct Queued {
    enqueued: Instant,
    req: Request,
}

enum Request {
    Read {
        block: u64,
        reply: Sender<Result<Box<[u8]>>>,
    },
    Write {
        block: u64,
        data: Box<[u8]>,
        reply: Sender<Result<()>>,
    },
    /// A vectored read of `nblocks` consecutive blocks — one queue entry,
    /// one unit of service, however long the run is.
    ReadSpan {
        block: u64,
        nblocks: u64,
        reply: Sender<Result<Box<[u8]>>>,
    },
    /// A vectored write of `data.len() / block_size` consecutive blocks.
    WriteSpan {
        block: u64,
        data: Box<[u8]>,
        reply: Sender<Result<()>>,
    },
    Flush {
        reply: Sender<Result<()>>,
    },
}

/// Stats and geometry shared between the node, its worker thread, and
/// every device handle. Deliberately does NOT hold the request sender:
/// the channel closes (and the worker exits) when the node and all
/// handles are gone.
struct Shared {
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
    serviced: AtomicU64,
    queue_wait_nanos: AtomicU64,
    service_nanos: AtomicU64,
    block_size: usize,
    num_blocks: u64,
    label: String,
}

impl Shared {
    fn snapshot(&self) -> IoNodeStats {
        IoNodeStats {
            serviced: self.serviced.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
            queue_wait_nanos: self.queue_wait_nanos.load(Ordering::Relaxed),
            service_nanos: self.service_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A dedicated I/O processor serving one device.
///
/// The worker thread runs until the node and every handle from
/// [`IoNode::device`] have been dropped.
pub struct IoNode {
    shared: Arc<Shared>,
    queue_tx: Sender<Queued>,
}

/// Queue statistics for an I/O node.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IoNodeStats {
    /// Requests serviced since the node started.
    pub serviced: u64,
    /// Requests queued or in service right now.
    pub in_flight: u64,
    /// The deepest the queue has been.
    pub max_in_flight: u64,
    /// Cumulative nanoseconds serviced requests spent waiting in the
    /// queue before the worker picked them up.
    pub queue_wait_nanos: u64,
    /// Cumulative nanoseconds the worker spent inside device transfers.
    pub service_nanos: u64,
}

impl IoNodeStats {
    /// Accumulate another node's statistics into this one (`in_flight`
    /// and totals add; `max_in_flight` takes the deeper queue).
    pub fn absorb(&mut self, other: IoNodeStats) {
        self.serviced += other.serviced;
        self.in_flight += other.in_flight;
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
        self.queue_wait_nanos += other.queue_wait_nanos;
        self.service_nanos += other.service_nanos;
    }
}

impl IoNode {
    /// Spawn an I/O processor thread owning `inner`.
    pub fn spawn(inner: DeviceRef) -> IoNode {
        let (queue_tx, queue_rx): (Sender<Queued>, Receiver<Queued>) = unbounded();
        let shared = Arc::new(Shared {
            in_flight: AtomicU64::new(0),
            max_in_flight: AtomicU64::new(0),
            serviced: AtomicU64::new(0),
            queue_wait_nanos: AtomicU64::new(0),
            service_nanos: AtomicU64::new(0),
            block_size: inner.block_size(),
            num_blocks: inner.num_blocks(),
            label: format!("ionode({})", inner.label()),
        });
        let worker_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pario-ionode".into())
            .spawn(move || {
                let bs = inner.block_size();
                // Stats are settled BEFORE the reply is sent, so a client
                // that observes its request complete also observes it
                // counted.
                let complete = |shared: &Shared, wait: u64, service: u64| {
                    shared.serviced.fetch_add(1, Ordering::Relaxed);
                    shared.queue_wait_nanos.fetch_add(wait, Ordering::Relaxed);
                    shared.service_nanos.fetch_add(service, Ordering::Relaxed);
                    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                };
                // Ends when every Sender (node + device handles) is gone.
                while let Ok(Queued { enqueued, req }) = queue_rx.recv() {
                    let started = Instant::now();
                    let wait = (started - enqueued).as_nanos() as u64;
                    match req {
                        Request::Read { block, reply } => {
                            let mut buf = vec![0u8; bs].into_boxed_slice();
                            let res = inner.read_block(block, &mut buf).map(|()| buf);
                            complete(&worker_shared, wait, started.elapsed().as_nanos() as u64);
                            let _ = reply.send(res);
                        }
                        Request::Write { block, data, reply } => {
                            let res = inner.write_block(block, &data);
                            complete(&worker_shared, wait, started.elapsed().as_nanos() as u64);
                            let _ = reply.send(res);
                        }
                        Request::ReadSpan {
                            block,
                            nblocks,
                            reply,
                        } => {
                            let mut buf = vec![0u8; nblocks as usize * bs].into_boxed_slice();
                            let res = inner.read_blocks_at(block, &mut buf).map(|()| buf);
                            complete(&worker_shared, wait, started.elapsed().as_nanos() as u64);
                            let _ = reply.send(res);
                        }
                        Request::WriteSpan { block, data, reply } => {
                            let res = inner.write_blocks_at(block, &data);
                            complete(&worker_shared, wait, started.elapsed().as_nanos() as u64);
                            let _ = reply.send(res);
                        }
                        Request::Flush { reply } => {
                            let res = inner.flush();
                            complete(&worker_shared, wait, started.elapsed().as_nanos() as u64);
                            let _ = reply.send(res);
                        }
                    }
                }
            })
            .expect("spawn I/O node thread");
        IoNode { shared, queue_tx }
    }

    /// Wrap a whole device bank: one I/O processor per device. Returns
    /// the nodes (for statistics) and the transparent device handles.
    pub fn spawn_bank(devices: Vec<DeviceRef>) -> (Vec<IoNode>, Vec<DeviceRef>) {
        let nodes: Vec<IoNode> = devices.into_iter().map(IoNode::spawn).collect();
        let handles = nodes.iter().map(|n| n.device()).collect();
        (nodes, handles)
    }

    /// A [`BlockDevice`] handle that routes through this node's queue.
    pub fn device(&self) -> DeviceRef {
        Arc::new(IoNodeDevice {
            shared: Arc::clone(&self.shared),
            queue_tx: self.queue_tx.clone(),
        })
    }

    /// Current queue statistics.
    pub fn stats(&self) -> IoNodeStats {
        self.shared.snapshot()
    }
}

struct IoNodeDevice {
    shared: Arc<Shared>,
    queue_tx: Sender<Queued>,
}

impl IoNodeDevice {
    fn enqueue(&self, req: Request) -> Result<()> {
        let inflight = self.shared.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared
            .max_in_flight
            .fetch_max(inflight, Ordering::Relaxed);
        self.queue_tx
            .send(Queued {
                enqueued: Instant::now(),
                req,
            })
            .map_err(|_| {
                self.shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                DiskError::Io("I/O node stopped".into())
            })
    }
}

impl BlockDevice for IoNodeDevice {
    fn block_size(&self) -> usize {
        self.shared.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.shared.num_blocks
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        let (tx, rx) = bounded(1);
        self.enqueue(Request::Read { block, reply: tx })?;
        let data = rx
            .recv()
            .map_err(|_| DiskError::Io("I/O node dropped request".into()))??;
        buf.copy_from_slice(&data);
        Ok(())
    }

    fn write_block(&self, block: u64, data: &[u8]) -> Result<()> {
        let (tx, rx) = bounded(1);
        self.enqueue(Request::Write {
            block,
            data: data.to_vec().into_boxed_slice(),
            reply: tx,
        })?;
        rx.recv()
            .map_err(|_| DiskError::Io("I/O node dropped request".into()))?
    }

    /// One queued request for the whole run, serviced by the wrapped
    /// device's own vectored path.
    fn read_blocks_at(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        let bs = self.shared.block_size;
        assert_eq!(buf.len() % bs, 0, "buffer must be a whole number of blocks");
        if buf.is_empty() {
            return Ok(());
        }
        let (tx, rx) = bounded(1);
        self.enqueue(Request::ReadSpan {
            block,
            nblocks: (buf.len() / bs) as u64,
            reply: tx,
        })?;
        let data = rx
            .recv()
            .map_err(|_| DiskError::Io("I/O node dropped request".into()))??;
        buf.copy_from_slice(&data);
        Ok(())
    }

    /// One queued request for the whole run.
    fn write_blocks_at(&self, block: u64, data: &[u8]) -> Result<()> {
        let bs = self.shared.block_size;
        assert_eq!(
            data.len() % bs,
            0,
            "buffer must be a whole number of blocks"
        );
        if data.is_empty() {
            return Ok(());
        }
        let (tx, rx) = bounded(1);
        self.enqueue(Request::WriteSpan {
            block,
            data: data.to_vec().into_boxed_slice(),
            reply: tx,
        })?;
        rx.recv()
            .map_err(|_| DiskError::Io("I/O node dropped request".into()))?
    }

    fn flush(&self) -> Result<()> {
        let (tx, rx) = bounded(1);
        self.enqueue(Request::Flush { reply: tx })?;
        rx.recv()
            .map_err(|_| DiskError::Io("I/O node dropped request".into()))?
    }

    fn counters(&self) -> IoCounters {
        // Detailed read/write counters remain on the wrapped device; the
        // node tracks queue statistics instead.
        IoCounters::default()
    }

    fn ionode_stats(&self) -> Option<IoNodeStats> {
        Some(self.shared.snapshot())
    }

    /// Failure injection belongs to the wrapped device, not the node.
    fn fail(&self) {}

    fn heal(&self) {}

    fn is_failed(&self) -> bool {
        false
    }

    fn label(&self) -> String {
        self.shared.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDisk;

    #[test]
    fn transparent_round_trip() {
        let node = IoNode::spawn(Arc::new(MemDisk::new(16, 64)));
        let dev = node.device();
        assert_eq!(dev.block_size(), 64);
        assert_eq!(dev.num_blocks(), 16);
        dev.write_block(3, &[7u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        dev.read_block(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        dev.flush().unwrap();
        let s = node.stats();
        assert_eq!(s.serviced, 3);
        assert_eq!(s.in_flight, 0);
        assert!(dev.label().starts_with("ionode("));
    }

    #[test]
    fn span_requests_cost_one_unit_of_service() {
        let mem = Arc::new(MemDisk::new(32, 64));
        let node = IoNode::spawn(Arc::clone(&mem) as DeviceRef);
        let dev = node.device();
        let data: Vec<u8> = (0..64 * 8).map(|i| i as u8).collect();
        dev.write_blocks_at(4, &data).unwrap();
        let mut back = vec![0u8; 64 * 8];
        dev.read_blocks_at(4, &mut back).unwrap();
        assert_eq!(back, data);
        // Two span transfers = two serviced requests, not sixteen.
        assert_eq!(node.stats().serviced, 2);
        // The wrapped device saw them as vectored requests too.
        let c = mem.counters();
        assert_eq!((c.reads, c.writes), (1, 1));
        assert_eq!((c.blocks_read, c.blocks_written), (8, 8));
        // Errors round-trip through the span path.
        let mut big = vec![0u8; 64 * 64];
        assert!(matches!(
            dev.read_blocks_at(1, &mut big),
            Err(DiskError::OutOfRange { .. })
        ));
    }

    #[test]
    fn concurrent_clients_share_the_node() {
        let node = IoNode::spawn(Arc::new(MemDisk::new(64, 64)));
        crossbeam::thread::scope(|s| {
            for t in 0..8u8 {
                let dev = node.device();
                s.spawn(move |_| {
                    for b in 0..8u64 {
                        let block = b + u64::from(t) * 8;
                        dev.write_block(block, &[t + 1; 64]).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let dev = node.device();
        let mut buf = vec![0u8; 64];
        for t in 0..8u8 {
            for b in 0..8u64 {
                dev.read_block(b + u64::from(t) * 8, &mut buf).unwrap();
                assert!(buf.iter().all(|&x| x == t + 1));
            }
        }
        assert_eq!(node.stats().serviced, 128);
        assert!(node.stats().max_in_flight >= 1);
    }

    #[test]
    fn wait_and_service_time_accumulate() {
        use std::time::Duration;
        let slow = Arc::new(MemDisk::new(16, 64).with_delay(Duration::from_micros(200)));
        let node = IoNode::spawn(slow as DeviceRef);
        // Two clients race: the second request queues behind the first,
        // so both service time and queue wait must accumulate.
        crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                let dev = node.device();
                s.spawn(move |_| {
                    for b in 0..4u64 {
                        dev.write_block(b, &[1u8; 64]).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let s = node.stats();
        assert_eq!(s.serviced, 8);
        // 8 requests x >=200us modelled transfer.
        assert!(
            s.service_nanos >= 8 * 200_000,
            "service time under-counted: {}",
            s.service_nanos
        );
        assert!(s.queue_wait_nanos > 0, "queued requests must report wait");
        // The device handle exposes the same stats through the trait hook.
        let via_handle = node.device().ionode_stats().unwrap();
        assert_eq!(via_handle.serviced, 8);
        // A plain device reports none.
        assert!((Arc::new(MemDisk::new(4, 64)) as DeviceRef)
            .ionode_stats()
            .is_none());
    }

    #[test]
    fn stats_absorb_aggregates() {
        let a = IoNodeStats {
            serviced: 3,
            in_flight: 1,
            max_in_flight: 2,
            queue_wait_nanos: 100,
            service_nanos: 400,
        };
        let mut agg = IoNodeStats::default();
        agg.absorb(a);
        agg.absorb(IoNodeStats {
            serviced: 1,
            in_flight: 0,
            max_in_flight: 5,
            queue_wait_nanos: 10,
            service_nanos: 20,
        });
        assert_eq!(agg.serviced, 4);
        assert_eq!(agg.max_in_flight, 5);
        assert_eq!(agg.queue_wait_nanos, 110);
        assert_eq!(agg.service_nanos, 420);
    }

    #[test]
    fn errors_propagate_through_the_node() {
        let mem = Arc::new(MemDisk::new(8, 64));
        let node = IoNode::spawn(Arc::clone(&mem) as DeviceRef);
        let dev = node.device();
        mem.fail();
        let mut buf = vec![0u8; 64];
        assert!(matches!(
            dev.read_block(0, &mut buf),
            Err(DiskError::DeviceFailed { .. })
        ));
        mem.heal();
        assert!(dev.read_block(0, &mut buf).is_ok());
        // Out-of-range also round-trips.
        assert!(matches!(
            dev.read_block(99, &mut buf),
            Err(DiskError::OutOfRange { .. })
        ));
    }

    #[test]
    fn whole_bank_behind_io_processors() {
        let (nodes, handles) = IoNode::spawn_bank(crate::mem_array(3, 32, 128));
        for (i, dev) in handles.iter().enumerate() {
            dev.write_block(0, &[i as u8 + 1; 128]).unwrap();
        }
        let mut buf = vec![0u8; 128];
        for (i, dev) in handles.iter().enumerate() {
            dev.read_block(0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == i as u8 + 1));
        }
        assert!(nodes.iter().all(|n| n.stats().serviced == 2));
    }
}
