//! Disk-arm request scheduling policies.
//!
//! When several processes share one drive — the paper's "blocks belonging
//! to several processes would be allocated to each device" case — the order
//! the drive services its queue determines how much time is lost to seeks.
//! The classic policies are provided: FIFO (fair, seek-oblivious), SSTF
//! (greedy shortest-seek), and the elevator algorithms SCAN and C-SCAN.

use serde::{Deserialize, Serialize};

/// Synthetic cylinder count used by [`block_cylinder`].
pub const CYLINDERS: u32 = 1 << 20;

/// Map a block address onto a synthetic cylinder, proportionally across
/// the device's `num_blocks`-block surface.
///
/// Block devices expose a linear address space; seek-aware policies need
/// a notion of arm position. Spreading addresses over a fixed
/// [`CYLINDERS`]-cylinder surface makes "seek distance" proportional to
/// block distance, independent of device size, and lets tests replay a
/// worker's dispatch decisions exactly.
pub fn block_cylinder(block: u64, num_blocks: u64) -> u32 {
    let nb = num_blocks.max(1);
    let b = block.min(nb - 1) as u128;
    (b * u128::from(CYLINDERS - 1) / u128::from(nb.max(2) - 1)) as u32
}

/// Queue service order policy.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// First-come first-served (arrival order).
    Fifo,
    /// Shortest seek time first: nearest cylinder next.
    Sstf,
    /// Elevator: sweep up-cylinder, then reverse.
    Scan,
    /// Circular elevator: sweep up-cylinder, then jump to the lowest
    /// pending cylinder and sweep up again.
    CScan,
}

/// Scheduling state (the SCAN direction) plus the policy.
#[derive(Copy, Clone, Debug)]
pub struct Scheduler {
    /// The policy in force.
    pub policy: SchedPolicy,
    going_up: bool,
}

impl Scheduler {
    /// A scheduler for `policy`, initially sweeping toward higher
    /// cylinders.
    pub fn new(policy: SchedPolicy) -> Scheduler {
        Scheduler {
            policy,
            going_up: true,
        }
    }

    /// Choose the index of the next request to service.
    ///
    /// `queue` holds `(cylinder, arrival_tag)` pairs in arrival order;
    /// `head` is the arm's current cylinder. Ties are broken by arrival
    /// tag, so the choice is deterministic. Returns `None` on an empty
    /// queue.
    pub fn pick(&mut self, queue: &[(u32, u64)], head: u32) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        let best = |it: &mut dyn Iterator<Item = (usize, (u32, u64))>,
                    key: &dyn Fn((u32, u64)) -> (u64, u64)|
         -> Option<usize> { it.min_by_key(|&(_, q)| key(q)).map(|(i, _)| i) };
        let idx = match self.policy {
            SchedPolicy::Fifo => best(&mut queue.iter().copied().enumerate(), &|(_, tag)| (tag, 0)),
            SchedPolicy::Sstf => best(&mut queue.iter().copied().enumerate(), &|(cyl, tag)| {
                (u64::from(cyl.abs_diff(head)), tag)
            }),
            SchedPolicy::Scan => {
                let pick_dir = |up: bool| {
                    let it = queue.iter().copied().enumerate().filter(|&(_, (cyl, _))| {
                        if up {
                            cyl >= head
                        } else {
                            cyl <= head
                        }
                    });
                    if up {
                        it.min_by_key(|&(_, (cyl, tag))| (cyl, tag)).map(|(i, _)| i)
                    } else {
                        it.min_by_key(|&(_, (cyl, tag))| (u32::MAX - cyl, tag))
                            .map(|(i, _)| i)
                    }
                };
                match pick_dir(self.going_up) {
                    Some(i) => Some(i),
                    None => {
                        self.going_up = !self.going_up;
                        pick_dir(self.going_up)
                    }
                }
            }
            SchedPolicy::CScan => {
                let up = queue
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, (cyl, _))| cyl >= head)
                    .min_by_key(|&(_, (cyl, tag))| (cyl, tag))
                    .map(|(i, _)| i);
                up.or_else(|| {
                    best(&mut queue.iter().copied().enumerate(), &|(cyl, tag)| {
                        (u64::from(cyl), tag)
                    })
                })
            }
        };
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(cyls: &[u32]) -> Vec<(u32, u64)> {
        cyls.iter().copied().zip(0u64..).collect()
    }

    #[test]
    fn block_cylinder_spans_the_surface() {
        assert_eq!(block_cylinder(0, 1024), 0);
        assert_eq!(block_cylinder(1023, 1024), CYLINDERS - 1);
        // Proportional and monotone in between.
        let mid = block_cylinder(512, 1024);
        assert!(mid > CYLINDERS / 3 && mid < 2 * CYLINDERS / 3);
        assert!(block_cylinder(100, 1024) < block_cylinder(200, 1024));
        // Degenerate and out-of-range inputs stay in range.
        assert_eq!(block_cylinder(0, 1), 0);
        assert_eq!(block_cylinder(5, 1), 0);
        assert_eq!(block_cylinder(99, 4), CYLINDERS - 1);
    }

    #[test]
    fn fifo_ignores_position() {
        let mut s = Scheduler::new(SchedPolicy::Fifo);
        assert_eq!(s.pick(&q(&[900, 10, 500]), 500), Some(0));
    }

    #[test]
    fn sstf_picks_nearest() {
        let mut s = Scheduler::new(SchedPolicy::Sstf);
        assert_eq!(s.pick(&q(&[900, 10, 480]), 500), Some(2));
        // Tie at equal distance goes to earlier arrival.
        assert_eq!(s.pick(&q(&[510, 490]), 500), Some(0));
    }

    #[test]
    fn scan_sweeps_then_reverses() {
        let mut s = Scheduler::new(SchedPolicy::Scan);
        // Going up from 500: nearest at-or-above is 520.
        assert_eq!(s.pick(&q(&[100, 520, 900, 480]), 500), Some(1));
        // Nothing above 950: reverse, take highest below.
        let mut s = Scheduler::new(SchedPolicy::Scan);
        assert_eq!(s.pick(&q(&[100, 480]), 950), Some(1));
        assert!(!s.going_up);
        // Now going down from 480: next is 100.
        assert_eq!(s.pick(&q(&[100, 470]), 480), Some(1));
    }

    #[test]
    fn cscan_wraps_to_lowest() {
        let mut s = Scheduler::new(SchedPolicy::CScan);
        assert_eq!(s.pick(&q(&[100, 520, 900]), 500), Some(1));
        // Nothing at or above 950: wrap to the lowest cylinder.
        assert_eq!(s.pick(&q(&[300, 100, 900]), 950), Some(1));
    }

    #[test]
    fn empty_queue() {
        for p in [
            SchedPolicy::Fifo,
            SchedPolicy::Sstf,
            SchedPolicy::Scan,
            SchedPolicy::CScan,
        ] {
            assert_eq!(Scheduler::new(p).pick(&[], 0), None);
        }
    }

    #[test]
    fn scan_services_everything_eventually() {
        // Simulate draining a queue; every policy must service all requests.
        for p in [
            SchedPolicy::Fifo,
            SchedPolicy::Sstf,
            SchedPolicy::Scan,
            SchedPolicy::CScan,
        ] {
            let mut s = Scheduler::new(p);
            let mut queue = q(&[700, 10, 350, 999, 350, 0]);
            let mut head = 400;
            let mut served = 0;
            while let Some(i) = s.pick(&queue, head) {
                head = queue.remove(i).0;
                served += 1;
                assert!(served <= 6);
            }
            assert_eq!(served, 6, "{p:?} failed to drain");
        }
    }
}
