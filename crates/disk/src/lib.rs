//! # pario-disk — the storage substrate
//!
//! Crockett (1989) assumes "multiple direct-access storage devices" under
//! the file system. This crate supplies them, in two forms:
//!
//! * **Real devices** for functional code and wall-clock experiments:
//!   [`MemDisk`] (thread-safe RAM device with failure injection and an
//!   optional calibrated service delay) and [`FileDisk`] (file-backed,
//!   persistent). Both implement [`BlockDevice`], the trait every layer
//!   above speaks.
//! * **A modelled rotating disk** for virtual-time experiments:
//!   [`DiskGeometry`] (seek `a + b·√d`, rotational position, media rate —
//!   defaults match the 30,000-hour-MTBF Winchester drives the paper
//!   cites) combined with a request [`Scheduler`] (FIFO / SSTF / SCAN /
//!   C-SCAN) in [`ModeledDisk`], a `pario_sim::DeviceModel`.
//!
//! ```
//! use pario_disk::{mem_array, BlockDevice};
//!
//! let bank = mem_array(4, 128, 4096);
//! bank[2].write_block(7, &[0xAB; 4096]).unwrap();
//! let mut buf = [0u8; 4096];
//! bank[2].read_block(7, &mut buf).unwrap();
//! assert_eq!(buf[0], 0xAB);
//! // Fail-stop injection:
//! bank[2].fail();
//! assert!(bank[2].read_block(7, &mut buf).is_err());
//! ```

#![warn(missing_docs)]

mod device;
mod error;
mod fault;
mod file;
mod geometry;
mod ionode;
mod mem;
mod modeled;
mod sched;

pub use device::{read_blocks, write_blocks, BlockDevice, DeviceRef, IoCounters};
pub use error::{DiskError, Result};
pub use fault::{FaultCounts, FaultDevice, FaultPlan};
pub use file::FileDisk;
pub use geometry::DiskGeometry;
pub use ionode::{IoNode, IoNodeStats, NodeConfig, RetryPolicy, Ticket};
pub use mem::MemDisk;
pub use modeled::ModeledDisk;
pub use sched::{block_cylinder, SchedPolicy, Scheduler, CYLINDERS};

use std::sync::Arc;

/// Build an array of `n` identical in-memory devices, each of
/// `blocks_per_device` blocks of `block_size` bytes — the standard device
/// bank used throughout tests and experiments.
pub fn mem_array(n: usize, blocks_per_device: u64, block_size: usize) -> Vec<DeviceRef> {
    (0..n)
        .map(|i| {
            Arc::new(MemDisk::named(
                &format!("mem{i}"),
                blocks_per_device,
                block_size,
            )) as DeviceRef
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_array_builds_labelled_devices() {
        let devs = mem_array(3, 8, 64);
        assert_eq!(devs.len(), 3);
        assert_eq!(devs[1].label(), "mem1");
        assert_eq!(devs[2].num_blocks(), 8);
        assert_eq!(devs[0].block_size(), 64);
    }
}
