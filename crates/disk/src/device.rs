//! The [`BlockDevice`] abstraction.
//!
//! Everything above this layer (caches, file systems, parallel file
//! handles) speaks to storage through this trait, so in-memory devices,
//! file-backed devices, and redundancy wrappers (shadow pairs, parity
//! groups) compose freely.

use std::sync::Arc;

use crate::error::Result;

/// Cumulative traffic counters for one device.
///
/// `reads`/`writes` count *requests* issued to the device; `blocks_read`/
/// `blocks_written` count the blocks those requests moved. For single-block
/// transfers the pairs advance in lockstep; a vectored transfer of `n`
/// blocks costs one request and `n` blocks, so the ratio `blocks / requests`
/// measures how well a workload coalesces.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Read requests completed.
    pub reads: u64,
    /// Write requests completed.
    pub writes: u64,
    /// Blocks transferred by read requests.
    pub blocks_read: u64,
    /// Blocks transferred by write requests.
    pub blocks_written: u64,
}

impl IoCounters {
    /// Total requests.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total blocks transferred.
    pub fn total_blocks(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }
}

/// A random-access block storage device.
///
/// All methods take `&self`: devices are internally synchronised and shared
/// across threads behind `Arc`. Transfers are whole blocks — exactly the
/// discipline real device drivers impose — and partial-block framing is the
/// job of the buffering layer above.
pub trait BlockDevice: Send + Sync {
    /// Block size in bytes. Constant for the device's lifetime.
    fn block_size(&self) -> usize;

    /// Capacity in blocks.
    fn num_blocks(&self) -> u64;

    /// Read one block into `buf` (`buf.len()` must equal `block_size`).
    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()>;

    /// Write one block from `data` (`data.len()` must equal `block_size`).
    fn write_block(&self, block: u64, data: &[u8]) -> Result<()>;

    /// Read `buf.len() / block_size` consecutive blocks starting at
    /// `block` into `buf` (`buf.len()` must be a whole number of blocks).
    ///
    /// The default implementation loops over [`read_block`]; devices that
    /// can service a contiguous run in one operation (one lock
    /// acquisition, one positioned syscall, one queued request) override
    /// it, which is what makes span I/O cheap.
    ///
    /// [`read_block`]: BlockDevice::read_block
    fn read_blocks_at(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        let bs = self.block_size();
        assert_eq!(buf.len() % bs, 0, "buffer must be a whole number of blocks");
        for (i, chunk) in buf.chunks_mut(bs).enumerate() {
            self.read_block(block + i as u64, chunk)?;
        }
        Ok(())
    }

    /// Write `data` (a whole number of blocks) starting at `block`.
    ///
    /// Default loops over [`write_block`]; see [`read_blocks_at`] for the
    /// override contract.
    ///
    /// [`write_block`]: BlockDevice::write_block
    /// [`read_blocks_at`]: BlockDevice::read_blocks_at
    fn write_blocks_at(&self, block: u64, data: &[u8]) -> Result<()> {
        let bs = self.block_size();
        assert_eq!(
            data.len() % bs,
            0,
            "buffer must be a whole number of blocks"
        );
        for (i, chunk) in data.chunks(bs).enumerate() {
            self.write_block(block + i as u64, chunk)?;
        }
        Ok(())
    }

    /// Submit an asynchronous read of `buf.len() / block_size` blocks at
    /// `block`, returning a [`Ticket`](crate::Ticket) that yields the
    /// filled buffer on [`wait`](crate::Ticket::wait).
    ///
    /// The default services the request inline and returns a completed
    /// ticket, so every device supports the submission API; handles that
    /// route through a dedicated I/O processor
    /// ([`IoNode`](crate::IoNode)) override it with true queued
    /// submission — that is what lets span I/O enqueue every per-device
    /// run before blocking on any of them.
    fn submit_read_blocks(&self, block: u64, mut buf: Box<[u8]>) -> crate::Ticket<Box<[u8]>> {
        let res = self.read_blocks_at(block, &mut buf).map(|()| buf);
        crate::Ticket::ready(res)
    }

    /// Submit an asynchronous write of `data` (a whole number of blocks)
    /// at `block`. The ticket yields the buffer back on success so
    /// callers can recycle it.
    ///
    /// Default is inline-synchronous; see
    /// [`submit_read_blocks`](BlockDevice::submit_read_blocks).
    fn submit_write_blocks(&self, block: u64, data: Box<[u8]>) -> crate::Ticket<Box<[u8]>> {
        let res = self.write_blocks_at(block, &data).map(|()| data);
        crate::Ticket::ready(res)
    }

    /// Durably flush any device write-behind (no-op for RAM devices).
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Traffic counters since creation.
    fn counters(&self) -> IoCounters;

    /// Inject a fail-stop failure: every subsequent operation returns
    /// [`DeviceFailed`](crate::DiskError::DeviceFailed) until [`heal`].
    ///
    /// [`heal`]: BlockDevice::heal
    fn fail(&self);

    /// Clear an injected failure. Device contents are whatever they were —
    /// recovery (rebuild from parity or a shadow) is a higher layer's job.
    fn heal(&self);

    /// Whether the device is currently failed.
    fn is_failed(&self) -> bool;

    /// A short human-readable identity for error messages.
    fn label(&self) -> String {
        "device".to_string()
    }

    /// Queue statistics when this handle routes through a dedicated I/O
    /// processor ([`IoNode`](crate::IoNode)); `None` for plain devices.
    /// Lets layers that only hold `DeviceRef`s (the volume, the service
    /// layer) aggregate queue-wait and service-time attribution without
    /// keeping the nodes themselves around.
    fn ionode_stats(&self) -> Option<crate::IoNodeStats> {
        None
    }
}

/// A shared handle to any block device.
pub type DeviceRef = Arc<dyn BlockDevice>;

/// Read `buf.len() / block_size` consecutive blocks starting at `block`.
///
/// A thin wrapper over [`BlockDevice::read_blocks_at`], kept for callers
/// holding `&dyn BlockDevice`. Performance-critical paths (span I/O,
/// rebuild) go through the trait method and get each device's vectored
/// fast path.
pub fn read_blocks(dev: &dyn BlockDevice, block: u64, buf: &mut [u8]) -> Result<()> {
    dev.read_blocks_at(block, buf)
}

/// Write `buf` (a whole number of blocks) at `block`.
///
/// A thin wrapper over [`BlockDevice::write_blocks_at`].
pub fn write_blocks(dev: &dyn BlockDevice, block: u64, buf: &[u8]) -> Result<()> {
    dev.write_blocks_at(block, buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDisk;

    #[test]
    fn multi_block_helpers_round_trip() {
        let d = MemDisk::new(16, 64);
        let data: Vec<u8> = (0..128).map(|i| i as u8).collect();
        write_blocks(&d, 3, &data).unwrap();
        let mut back = vec![0u8; 128];
        read_blocks(&d, 3, &mut back).unwrap();
        assert_eq!(back, data);
        // MemDisk services each two-block helper call as ONE vectored
        // request moving two blocks.
        assert_eq!(
            d.counters(),
            IoCounters {
                reads: 1,
                writes: 1,
                blocks_read: 2,
                blocks_written: 2,
            }
        );
        assert_eq!(d.counters().total(), 2);
        assert_eq!(d.counters().total_blocks(), 4);
    }

    /// A device that opts out of the vectored overrides, so the trait's
    /// default per-block loop stays covered.
    struct PlainDevice(MemDisk);

    impl BlockDevice for PlainDevice {
        fn block_size(&self) -> usize {
            self.0.block_size()
        }
        fn num_blocks(&self) -> u64 {
            self.0.num_blocks()
        }
        fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()> {
            self.0.read_block(block, buf)
        }
        fn write_block(&self, block: u64, data: &[u8]) -> Result<()> {
            self.0.write_block(block, data)
        }
        fn counters(&self) -> IoCounters {
            self.0.counters()
        }
        fn fail(&self) {
            self.0.fail()
        }
        fn heal(&self) {
            self.0.heal()
        }
        fn is_failed(&self) -> bool {
            self.0.is_failed()
        }
    }

    #[test]
    fn default_span_impl_loops_per_block() {
        let d = PlainDevice(MemDisk::new(16, 64));
        let data: Vec<u8> = (0..192).map(|i| i as u8).collect();
        d.write_blocks_at(2, &data).unwrap();
        let mut back = vec![0u8; 192];
        d.read_blocks_at(2, &mut back).unwrap();
        assert_eq!(back, data);
        // The default implementation issues one request per block.
        assert_eq!(
            d.counters(),
            IoCounters {
                reads: 3,
                writes: 3,
                blocks_read: 3,
                blocks_written: 3,
            }
        );
        // Errors surface from the failing block.
        let mut big = vec![0u8; 64 * 16];
        assert!(d.read_blocks_at(1, &mut big).is_err());
    }
}
