//! The [`BlockDevice`] abstraction.
//!
//! Everything above this layer (caches, file systems, parallel file
//! handles) speaks to storage through this trait, so in-memory devices,
//! file-backed devices, and redundancy wrappers (shadow pairs, parity
//! groups) compose freely.

use std::sync::Arc;

use crate::error::Result;

/// Cumulative traffic counters for one device.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Read requests completed.
    pub reads: u64,
    /// Write requests completed.
    pub writes: u64,
}

impl IoCounters {
    /// Total requests.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A random-access block storage device.
///
/// All methods take `&self`: devices are internally synchronised and shared
/// across threads behind `Arc`. Transfers are whole blocks — exactly the
/// discipline real device drivers impose — and partial-block framing is the
/// job of the buffering layer above.
pub trait BlockDevice: Send + Sync {
    /// Block size in bytes. Constant for the device's lifetime.
    fn block_size(&self) -> usize;

    /// Capacity in blocks.
    fn num_blocks(&self) -> u64;

    /// Read one block into `buf` (`buf.len()` must equal `block_size`).
    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()>;

    /// Write one block from `data` (`data.len()` must equal `block_size`).
    fn write_block(&self, block: u64, data: &[u8]) -> Result<()>;

    /// Durably flush any device write-behind (no-op for RAM devices).
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Traffic counters since creation.
    fn counters(&self) -> IoCounters;

    /// Inject a fail-stop failure: every subsequent operation returns
    /// [`DeviceFailed`](crate::DiskError::DeviceFailed) until [`heal`].
    ///
    /// [`heal`]: BlockDevice::heal
    fn fail(&self);

    /// Clear an injected failure. Device contents are whatever they were —
    /// recovery (rebuild from parity or a shadow) is a higher layer's job.
    fn heal(&self);

    /// Whether the device is currently failed.
    fn is_failed(&self) -> bool;

    /// A short human-readable identity for error messages.
    fn label(&self) -> String {
        "device".to_string()
    }
}

/// A shared handle to any block device.
pub type DeviceRef = Arc<dyn BlockDevice>;

/// Read `nblocks` consecutive blocks starting at `block` into `buf`.
///
/// A convenience used by rebuild and verification paths; performance-
/// critical paths issue their own per-block requests so they can interleave.
pub fn read_blocks(dev: &dyn BlockDevice, block: u64, buf: &mut [u8]) -> Result<()> {
    let bs = dev.block_size();
    assert_eq!(buf.len() % bs, 0, "buffer must be a whole number of blocks");
    for (i, chunk) in buf.chunks_mut(bs).enumerate() {
        dev.read_block(block + i as u64, chunk)?;
    }
    Ok(())
}

/// Write `buf` (a whole number of blocks) at `block`.
pub fn write_blocks(dev: &dyn BlockDevice, block: u64, buf: &[u8]) -> Result<()> {
    let bs = dev.block_size();
    assert_eq!(buf.len() % bs, 0, "buffer must be a whole number of blocks");
    for (i, chunk) in buf.chunks(bs).enumerate() {
        dev.write_block(block + i as u64, chunk)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDisk;

    #[test]
    fn multi_block_helpers_round_trip() {
        let d = MemDisk::new(16, 64);
        let data: Vec<u8> = (0..128).map(|i| i as u8).collect();
        write_blocks(&d, 3, &data).unwrap();
        let mut back = vec![0u8; 128];
        read_blocks(&d, 3, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(d.counters(), IoCounters { reads: 2, writes: 2 });
        assert_eq!(d.counters().total(), 4);
    }
}
