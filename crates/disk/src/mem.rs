//! In-memory block device.
//!
//! `MemDisk` is the workhorse device for tests and for the real-thread
//! experiments where the costs being measured are *software* costs (lock
//! contention in self-scheduling, buffering overhead): storage itself is a
//! memcpy, optionally padded with a calibrated busy-wait so that I/O has a
//! nonzero service time to overlap with computation.

use std::sync::atomic::Ordering;

use pario_check::{AtomicBool, AtomicU64};
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::device::{BlockDevice, IoCounters};
use crate::error::{DiskError, Result};

/// A thread-safe RAM-backed block device with failure injection.
pub struct MemDisk {
    block_size: usize,
    num_blocks: u64,
    data: RwLock<Box<[u8]>>,
    failed: AtomicBool,
    reads: AtomicU64,
    writes: AtomicU64,
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
    /// Busy-wait added to every block transfer, emulating device service
    /// time in wall-clock experiments. Zero by default.
    delay: Duration,
    name: String,
}

impl MemDisk {
    /// A zero-filled device of `num_blocks` blocks of `block_size` bytes.
    pub fn new(num_blocks: u64, block_size: usize) -> MemDisk {
        MemDisk::named("mem", num_blocks, block_size)
    }

    /// Like [`MemDisk::new`] with a label used in error messages.
    pub fn named(name: &str, num_blocks: u64, block_size: usize) -> MemDisk {
        assert!(block_size > 0, "block size must be positive");
        let bytes = (num_blocks as usize)
            .checked_mul(block_size)
            // invariant: a device larger than the address space is a config bug.
            .expect("device size overflows usize");
        MemDisk {
            block_size,
            num_blocks,
            data: RwLock::new(vec![0u8; bytes].into_boxed_slice()),
            failed: AtomicBool::new(false),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            blocks_read: AtomicU64::new(0),
            blocks_written: AtomicU64::new(0),
            delay: Duration::ZERO,
            name: name.to_string(),
        }
    }

    /// Add a service delay of `delay` to every block transfer.
    ///
    /// Delays of 100µs and above are slept (the calling thread yields the
    /// CPU, exactly as a thread blocked on a real device would — so
    /// read-ahead genuinely overlaps computation even on a single core);
    /// shorter delays are busy-waited for accuracy.
    pub fn with_delay(mut self, delay: Duration) -> MemDisk {
        self.delay = delay;
        self
    }

    /// Flip bit `bit` of block `block` in place, corrupting stored data.
    ///
    /// Models the paper's "single-bit error in a striped block"; detection
    /// and correction live in `pario-reliability`.
    pub fn corrupt_bit(&self, block: u64, bit: usize) {
        assert!(block < self.num_blocks);
        assert!(bit < self.block_size * 8);
        let mut data = self.data.write();
        let base = block as usize * self.block_size;
        data[base + bit / 8] ^= 1 << (bit % 8);
    }

    /// Overwrite the whole device with zeros (models replacing a failed
    /// drive with a blank spare before a rebuild).
    pub fn wipe(&self) {
        self.data.write().fill(0);
    }

    fn check(&self, block: u64, len: usize) -> Result<()> {
        if self.failed.load(Ordering::Acquire) {
            return Err(DiskError::DeviceFailed {
                device: self.name.clone(),
            });
        }
        if block >= self.num_blocks {
            return Err(DiskError::OutOfRange {
                block,
                capacity: self.num_blocks,
            });
        }
        if len != self.block_size {
            return Err(DiskError::BadBufferSize {
                got: len,
                expected: self.block_size,
            });
        }
        Ok(())
    }

    /// Bounds check for a vectored transfer of `len` bytes at `block`;
    /// returns the block count. Unlike [`MemDisk::check`] the length may
    /// be any whole number of blocks.
    fn check_span(&self, block: u64, len: usize) -> Result<u64> {
        if self.failed.load(Ordering::Acquire) {
            return Err(DiskError::DeviceFailed {
                device: self.name.clone(),
            });
        }
        if !len.is_multiple_of(self.block_size) {
            return Err(DiskError::BadBufferSize {
                got: len,
                expected: self.block_size,
            });
        }
        let nblocks = (len / self.block_size) as u64;
        match block.checked_add(nblocks) {
            Some(end) if end <= self.num_blocks => Ok(nblocks),
            // Report the first block outside the device.
            _ => Err(DiskError::OutOfRange {
                block: block.max(self.num_blocks),
                capacity: self.num_blocks,
            }),
        }
    }

    fn service_delay(&self) {
        if self.delay.is_zero() {
            return;
        }
        if self.delay >= Duration::from_micros(100) {
            std::thread::sleep(self.delay);
        } else {
            let end = Instant::now() + self.delay;
            while Instant::now() < end {
                std::hint::spin_loop();
            }
        }
    }
}

impl BlockDevice for MemDisk {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        self.check(block, buf.len())?;
        self.service_delay();
        let data = self.data.read();
        let base = block as usize * self.block_size;
        buf.copy_from_slice(&data[base..base + self.block_size]);
        self.reads.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        self.blocks_read.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        Ok(())
    }

    fn write_block(&self, block: u64, data_in: &[u8]) -> Result<()> {
        self.check(block, data_in.len())?;
        self.service_delay();
        let mut data = self.data.write();
        let base = block as usize * self.block_size;
        data[base..base + self.block_size].copy_from_slice(data_in);
        self.writes.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        self.blocks_written.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        Ok(())
    }

    /// Vectored read: one service delay, one lock acquisition, one
    /// contiguous copy — however many blocks the span covers.
    fn read_blocks_at(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        let nblocks = self.check_span(block, buf.len())?;
        if nblocks == 0 {
            return Ok(());
        }
        self.service_delay();
        let data = self.data.read();
        let base = block as usize * self.block_size;
        buf.copy_from_slice(&data[base..base + buf.len()]);
        self.reads.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        self.blocks_read.fetch_add(nblocks, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        Ok(())
    }

    /// Vectored write: the mirror of [`MemDisk::read_blocks_at`].
    fn write_blocks_at(&self, block: u64, data_in: &[u8]) -> Result<()> {
        let nblocks = self.check_span(block, data_in.len())?;
        if nblocks == 0 {
            return Ok(());
        }
        self.service_delay();
        let mut data = self.data.write();
        let base = block as usize * self.block_size;
        data[base..base + data_in.len()].copy_from_slice(data_in);
        self.writes.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        self.blocks_written.fetch_add(nblocks, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        Ok(())
    }

    fn counters(&self) -> IoCounters {
        IoCounters {
            reads: self.reads.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            writes: self.writes.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            blocks_read: self.blocks_read.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            blocks_written: self.blocks_written.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
        }
    }

    fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    fn heal(&self) {
        self.failed.store(false, Ordering::Release);
    }

    fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    fn label(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_round_trip() {
        let d = MemDisk::new(8, 32);
        let block = vec![0xAB; 32];
        d.write_block(5, &block).unwrap();
        let mut out = vec![0u8; 32];
        d.read_block(5, &mut out).unwrap();
        assert_eq!(out, block);
        // Unwritten blocks read as zeros.
        d.read_block(4, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn bounds_and_size_checks() {
        let d = MemDisk::new(4, 16);
        let mut buf = vec![0u8; 16];
        assert!(matches!(
            d.read_block(4, &mut buf),
            Err(DiskError::OutOfRange { .. })
        ));
        let mut small = vec![0u8; 8];
        assert!(matches!(
            d.read_block(0, &mut small),
            Err(DiskError::BadBufferSize {
                got: 8,
                expected: 16
            })
        ));
        assert!(matches!(
            d.write_block(0, &small),
            Err(DiskError::BadBufferSize { .. })
        ));
    }

    #[test]
    fn vectored_round_trip_counts_one_request() {
        let d = MemDisk::new(8, 32);
        let data: Vec<u8> = (0..96).map(|i| i as u8).collect();
        d.write_blocks_at(2, &data).unwrap();
        let mut back = vec![0u8; 96];
        d.read_blocks_at(2, &mut back).unwrap();
        assert_eq!(back, data);
        let c = d.counters();
        assert_eq!((c.reads, c.writes), (1, 1));
        assert_eq!((c.blocks_read, c.blocks_written), (3, 3));
        // The vectored and per-block views agree on contents.
        let mut one = vec![0u8; 32];
        d.read_block(3, &mut one).unwrap();
        assert_eq!(one, data[32..64]);
    }

    #[test]
    fn vectored_bounds_and_size_checks() {
        let d = MemDisk::new(4, 16);
        let mut buf = vec![0u8; 32];
        // Last block of the span out of range.
        assert!(matches!(
            d.read_blocks_at(3, &mut buf),
            Err(DiskError::OutOfRange {
                block: 4,
                capacity: 4
            })
        ));
        // Start out of range.
        assert!(matches!(
            d.write_blocks_at(5, &buf),
            Err(DiskError::OutOfRange { block: 5, .. })
        ));
        // Ragged length.
        let mut ragged = vec![0u8; 24];
        assert!(matches!(
            d.read_blocks_at(0, &mut ragged),
            Err(DiskError::BadBufferSize { got: 24, .. })
        ));
        // Empty spans are free no-ops.
        d.read_blocks_at(0, &mut []).unwrap();
        d.write_blocks_at(0, &[]).unwrap();
        assert_eq!(d.counters().total(), 0);
        // Failure still applies to vectored transfers.
        d.fail();
        assert!(matches!(
            d.read_blocks_at(0, &mut buf),
            Err(DiskError::DeviceFailed { .. })
        ));
    }

    #[test]
    fn fail_stop_and_heal() {
        let d = MemDisk::named("d7", 4, 16);
        let mut buf = vec![0u8; 16];
        d.fail();
        assert!(d.is_failed());
        match d.read_block(0, &mut buf) {
            Err(DiskError::DeviceFailed { device }) => assert_eq!(device, "d7"),
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(d.write_block(0, &buf).is_err());
        d.heal();
        assert!(!d.is_failed());
        d.read_block(0, &mut buf).unwrap();
    }

    #[test]
    fn corrupt_bit_flips_exactly_one_bit() {
        let d = MemDisk::new(2, 16);
        d.write_block(1, &[0u8; 16]).unwrap();
        d.corrupt_bit(1, 9); // byte 1, bit 1
        let mut buf = vec![0u8; 16];
        d.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[1], 0b10);
        assert!(buf.iter().enumerate().all(|(i, &b)| i == 1 || b == 0));
        d.corrupt_bit(1, 9); // flip back
        d.read_block(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn wipe_zeroes_everything() {
        let d = MemDisk::new(2, 8);
        d.write_block(0, &[1u8; 8]).unwrap();
        d.wipe();
        let mut buf = vec![9u8; 8];
        d.read_block(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn concurrent_writers_distinct_blocks() {
        let d = Arc::new(MemDisk::new(64, 128));
        crossbeam::thread::scope(|s| {
            for t in 0..8u8 {
                let d = Arc::clone(&d);
                s.spawn(move |_| {
                    for b in 0..8u64 {
                        let block = b + u64::from(t) * 8;
                        d.write_block(block, &[t + 1; 128]).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let mut buf = vec![0u8; 128];
        for t in 0..8u8 {
            for b in 0..8u64 {
                d.read_block(b + u64::from(t) * 8, &mut buf).unwrap();
                assert!(buf.iter().all(|&x| x == t + 1));
            }
        }
        assert_eq!(d.counters().writes, 64);
    }

    #[test]
    fn delay_slows_transfers() {
        let fast = MemDisk::new(4, 64);
        let slow = MemDisk::new(4, 64).with_delay(Duration::from_micros(200));
        let mut buf = vec![0u8; 64];
        let t0 = Instant::now();
        for _ in 0..10 {
            slow.read_block(0, &mut buf).unwrap();
        }
        let slow_time = t0.elapsed();
        let t0 = Instant::now();
        for _ in 0..10 {
            fast.read_block(0, &mut buf).unwrap();
        }
        let fast_time = t0.elapsed();
        assert!(slow_time >= Duration::from_micros(2000));
        assert!(slow_time > fast_time);
    }
}
