//! Deterministic fault injection for online fault-management tests.
//!
//! The paper's §5 observes that aggregate MTBF falls linearly with
//! device count — a parallel file system therefore has to treat device
//! faults as routine events on the live request path, not as an offline
//! experiment condition. [`FaultDevice`] wraps any [`BlockDevice`] and
//! injects the four fault classes that matter to the layers above, per a
//! seeded, fully deterministic schedule:
//!
//! * **transient errors** ([`DiskError::Transient`]) — the operation
//!   fails without touching the media; a retry is expected to succeed.
//!   Exercises the executor's retry/backoff loop and the volume's
//!   Suspect health transitions.
//! * **latency spikes** — the operation succeeds but takes an extra
//!   configured delay. Exercises deadlines and hedged reads.
//! * **torn writes** — a multi-block write lands only a prefix and then
//!   reports [`DiskError::Transient`]. Exercises redundancy repair: the
//!   retried or reconstructed write must make the span whole again.
//! * **fail-stop** — after a scheduled number of operations the device
//!   fails hard ([`DiskError::DeviceFailed`]) until [`heal`]ed.
//!   Exercises degraded routing and online rebuild.
//!
//! Determinism matters more than realism here: every decision is a pure
//! function of `(seed, operation index)` via a splitmix64 mix, so a
//! failing schedule replays exactly from the seed, regardless of thread
//! timing. (This also keeps the crate free of a runtime `rand`
//! dependency.)
//!
//! [`heal`]: BlockDevice::heal

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use pario_check::{AtomicBool, AtomicU64};

use crate::device::{BlockDevice, DeviceRef, IoCounters};
use crate::error::{DiskError, Result};

/// A seeded fault schedule for one [`FaultDevice`].
///
/// Rates are per-operation probabilities in `[0, 1]`; each operation on
/// the device consumes one schedule slot whose outcomes are derived
/// deterministically from `seed` and the operation index.
#[derive(Copy, Clone, Debug)]
pub struct FaultPlan {
    /// Seed for the deterministic per-operation draws.
    pub seed: u64,
    /// Probability an operation fails with [`DiskError::Transient`].
    pub transient_rate: f64,
    /// Probability an operation is delayed by [`FaultPlan::spike`].
    pub spike_rate: f64,
    /// Extra service delay applied to latency-spiked operations.
    pub spike: Duration,
    /// Probability a multi-block write is torn: a prefix of the blocks
    /// lands, then the write reports [`DiskError::Transient`].
    pub torn_write_rate: f64,
    /// Fail-stop after this many armed operations (the schedule's hard
    /// failure). Trips once; [`BlockDevice::heal`] clears it.
    pub fail_after: Option<u64>,
    /// Deterministic crash point: fail-stop at the Nth armed *write*
    /// boundary (0-based, so `Some(0)` kills the very first write).
    /// Unlike [`FaultPlan::fail_after`], only writes advance the count
    /// — reads model a host that keeps running until the moment power
    /// is lost — and the boundary clock may be shared across devices
    /// ([`FaultDevice::wrap_with_clock`]) so a multi-device volume has
    /// one global write ordering to sweep. Trips once per schedule;
    /// [`BlockDevice::heal`] models restarting on the surviving media.
    pub crash_after_writes: Option<u64>,
    /// Tear the write at the crash point: the first half of a
    /// multi-block write lands before the fail-stop (a single-block
    /// write is atomic and lands nothing). Models losing power mid
    /// transfer instead of exactly between transfers.
    pub crash_torn: bool,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0x5eed_0ffa_u64,
            transient_rate: 0.0,
            spike_rate: 0.0,
            spike: Duration::ZERO,
            torn_write_rate: 0.0,
            fail_after: None,
            crash_after_writes: None,
            crash_torn: false,
        }
    }
}

/// Cumulative injection counters for one [`FaultDevice`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Operations that consumed a schedule slot (armed operations).
    pub ops: u64,
    /// Transient errors injected.
    pub transients: u64,
    /// Latency spikes injected.
    pub spikes: u64,
    /// Torn (prefix-only) writes injected.
    pub torn_writes: u64,
    /// Operations refused because the fail-stop had tripped.
    pub failed_ops: u64,
    /// Armed write boundaries this device has observed on its crash
    /// clock (shared across devices when wrapped with one).
    pub write_boundaries: u64,
}

/// A [`BlockDevice`] wrapper that injects faults per a [`FaultPlan`].
///
/// Thread-safe and deterministic: concurrent callers are assigned
/// schedule slots by an atomic operation counter, and each slot's
/// outcome depends only on `(seed, slot)`. Injection can be toggled with
/// [`FaultDevice::set_armed`] so tests can pre-load data fault-free.
pub struct FaultDevice {
    inner: DeviceRef,
    plan: FaultPlan,
    armed: AtomicBool,
    /// Fail-stop state: `tripped` is the live failure, `consumed` keeps
    /// the schedule from re-tripping after a heal (the replacement
    /// device is a fresh one).
    tripped: AtomicBool,
    consumed: AtomicBool,
    /// One-shot latch for the crash schedule: once the crash point has
    /// fired, a healed (restarted) device does not re-crash.
    crash_consumed: AtomicBool,
    /// Write-boundary clock for [`FaultPlan::crash_after_writes`].
    /// Shared across a device array via
    /// [`FaultDevice::wrap_with_clock`] so the crash point indexes one
    /// volume-wide write ordering.
    wclock: Arc<AtomicU64>,
    op: AtomicU64,
    transients: AtomicU64,
    spikes: AtomicU64,
    torn_writes: AtomicU64,
    failed_ops: AtomicU64,
}

/// What the schedule says about one operation.
struct Outcome {
    transient: bool,
    spike: bool,
    torn: bool,
}

impl FaultDevice {
    /// Wrap `inner` with the fault schedule `plan`, armed immediately.
    pub fn new(inner: DeviceRef, plan: FaultPlan) -> FaultDevice {
        FaultDevice::with_clock(inner, plan, Arc::new(AtomicU64::new(0)))
    }

    /// [`FaultDevice::new`] with a caller-provided write-boundary clock,
    /// so several devices share one global write ordering and
    /// [`FaultPlan::crash_after_writes`] means "the Nth write anywhere
    /// in the array" — the shape a crash/remount sweep needs.
    pub fn with_clock(inner: DeviceRef, plan: FaultPlan, wclock: Arc<AtomicU64>) -> FaultDevice {
        FaultDevice {
            inner,
            plan,
            armed: AtomicBool::new(true),
            tripped: AtomicBool::new(false),
            consumed: AtomicBool::new(false),
            crash_consumed: AtomicBool::new(false),
            wclock,
            op: AtomicU64::new(0),
            transients: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            failed_ops: AtomicU64::new(0),
        }
    }

    /// Wrap and return as a shared [`DeviceRef`] plus the typed handle
    /// (for arming and counter access) — the common test arrangement.
    pub fn wrap(inner: DeviceRef, plan: FaultPlan) -> (Arc<FaultDevice>, DeviceRef) {
        let dev = Arc::new(FaultDevice::new(inner, plan));
        (Arc::clone(&dev), dev as DeviceRef)
    }

    /// A fresh write-boundary clock for [`FaultDevice::wrap_with_clock`],
    /// starting at boundary zero. Kept behind a constructor so callers
    /// never name the atomic type (which differs under the checked
    /// concurrency build).
    pub fn write_clock() -> Arc<AtomicU64> {
        Arc::new(AtomicU64::new(0))
    }

    /// [`FaultDevice::wrap`] with a shared write-boundary clock.
    pub fn wrap_with_clock(
        inner: DeviceRef,
        plan: FaultPlan,
        wclock: Arc<AtomicU64>,
    ) -> (Arc<FaultDevice>, DeviceRef) {
        let dev = Arc::new(FaultDevice::with_clock(inner, plan, wclock));
        (Arc::clone(&dev), dev as DeviceRef)
    }

    /// Enable or disable injection. While disarmed the wrapper is a pure
    /// passthrough and consumes no schedule slots.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::SeqCst);
    }

    /// Injection counters so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            ops: self.op.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            transients: self.transients.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            spikes: self.spikes.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            torn_writes: self.torn_writes.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            failed_ops: self.failed_ops.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
            write_boundaries: self.wclock.load(Ordering::Relaxed), // ordering: diagnostic snapshot; staleness is acceptable
        }
    }

    /// Write boundaries observed on this device's crash clock so far. A
    /// crash sweep first runs the workload fault-free to learn how many
    /// boundaries exist, then replays it once per boundary.
    pub fn write_boundaries(&self) -> u64 {
        self.wclock.load(Ordering::SeqCst)
    }

    /// The schedule this device runs.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Draw the schedule outcome for the next operation, handling the
    /// fail-stop trip. `Err` means the operation must not proceed.
    fn admit(&self) -> Result<Option<Outcome>> {
        if self.tripped.load(Ordering::SeqCst) || self.inner.is_failed() {
            self.failed_ops.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
            return Err(DiskError::DeviceFailed {
                device: self.label(),
            });
        }
        if !self.armed.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let slot = self.op.fetch_add(1, Ordering::Relaxed); // ordering: schedule slot needs uniqueness, not ordering
        if let Some(k) = self.plan.fail_after {
            if slot >= k && !self.consumed.swap(true, Ordering::SeqCst) {
                self.tripped.store(true, Ordering::SeqCst);
            }
            if self.tripped.load(Ordering::SeqCst) {
                self.failed_ops.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
                return Err(DiskError::DeviceFailed {
                    device: self.label(),
                });
            }
        }
        let base = splitmix64(self.plan.seed ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let outcome = Outcome {
            transient: unit(splitmix64(base ^ 1)) < self.plan.transient_rate,
            spike: unit(splitmix64(base ^ 2)) < self.plan.spike_rate,
            torn: unit(splitmix64(base ^ 3)) < self.plan.torn_write_rate,
        };
        if outcome.spike {
            self.spikes.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
            std::thread::sleep(self.plan.spike);
        }
        Ok(Some(outcome))
    }

    /// Advance the write-boundary clock and fire the deterministic
    /// crash point if this write crosses it. `Err` means the host
    /// crashed: the write did not land (beyond an optional torn
    /// prefix) and the device fail-stops until healed.
    fn crash_gate(&self, block: u64, data: &[u8]) -> Result<()> {
        if !self.armed.load(Ordering::SeqCst) || self.crash_consumed.load(Ordering::SeqCst) {
            return Ok(());
        }
        // The clock always advances on armed writes, crash point or not:
        // a fault-free run of a workload measures how many boundaries a
        // sweep has to cover.
        let w = self.wclock.fetch_add(1, Ordering::SeqCst);
        let Some(n) = self.plan.crash_after_writes else {
            return Ok(());
        };
        if w < n {
            return Ok(());
        }
        if w == n && self.plan.crash_torn {
            let bs = self.inner.block_size();
            let nblocks = data.len() / bs.max(1);
            if nblocks > 1 {
                // Half the transfer reaches the media before power dies.
                let _ = self
                    .inner
                    .write_blocks_at(block, &data[..bs * (nblocks / 2)]);
            }
        }
        self.crash_consumed.store(true, Ordering::SeqCst);
        self.tripped.store(true, Ordering::SeqCst);
        self.failed_ops.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        Err(DiskError::DeviceFailed {
            device: self.label(),
        })
    }

    fn transient(&self) -> DiskError {
        self.transients.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
        DiskError::Transient {
            device: self.label(),
        }
    }
}

impl BlockDevice for FaultDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        match self.admit()? {
            Some(o) if o.transient => Err(self.transient()),
            _ => self.inner.read_block(block, buf),
        }
    }

    fn write_block(&self, block: u64, data: &[u8]) -> Result<()> {
        self.crash_gate(block, data)?;
        match self.admit()? {
            Some(o) if o.transient => Err(self.transient()),
            _ => self.inner.write_block(block, data),
        }
    }

    fn read_blocks_at(&self, block: u64, buf: &mut [u8]) -> Result<()> {
        match self.admit()? {
            Some(o) if o.transient => Err(self.transient()),
            _ => self.inner.read_blocks_at(block, buf),
        }
    }

    fn write_blocks_at(&self, block: u64, data: &[u8]) -> Result<()> {
        self.crash_gate(block, data)?;
        let bs = self.inner.block_size();
        let nblocks = data.len() / bs.max(1);
        match self.admit()? {
            Some(o) if o.torn && nblocks > 1 => {
                // Land a prefix, then report the write as failed — the
                // torn tail is exactly what redundancy must repair.
                self.torn_writes.fetch_add(1, Ordering::Relaxed); // ordering: monotonic stats counter; read only by diagnostic snapshots
                self.inner
                    .write_blocks_at(block, &data[..bs * (nblocks / 2)])?;
                Err(self.transient())
            }
            Some(o) if o.transient => Err(self.transient()),
            _ => self.inner.write_blocks_at(block, data),
        }
    }

    fn flush(&self) -> Result<()> {
        if self.tripped.load(Ordering::SeqCst) {
            return Err(DiskError::DeviceFailed {
                device: self.label(),
            });
        }
        self.inner.flush()
    }

    fn counters(&self) -> IoCounters {
        self.inner.counters()
    }

    fn fail(&self) {
        self.tripped.store(true, Ordering::SeqCst);
    }

    fn heal(&self) {
        // The schedule's fail-stop stays consumed: a healed device is a
        // fresh replacement and does not immediately re-trip.
        self.consumed.store(true, Ordering::SeqCst);
        self.tripped.store(false, Ordering::SeqCst);
        self.inner.heal();
    }

    fn is_failed(&self) -> bool {
        self.tripped.load(Ordering::SeqCst) || self.inner.is_failed()
    }

    fn label(&self) -> String {
        format!("fault({})", self.inner.label())
    }

    fn ionode_stats(&self) -> Option<crate::IoNodeStats> {
        self.inner.ionode_stats()
    }
}

/// The splitmix64 mixer (public-domain constant set): a bijective
/// avalanche over `u64`, good enough to decorrelate schedule slots.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a mixed word onto `[0, 1)` with 53 bits of precision.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDisk;

    fn faulty(plan: FaultPlan) -> (Arc<FaultDevice>, DeviceRef) {
        FaultDevice::wrap(Arc::new(MemDisk::new(64, 64)) as DeviceRef, plan)
    }

    #[test]
    fn disarmed_is_passthrough() {
        let (h, dev) = faulty(FaultPlan {
            transient_rate: 1.0,
            ..FaultPlan::default()
        });
        h.set_armed(false);
        dev.write_block(1, &[9u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        dev.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
        assert_eq!(h.counts(), FaultCounts::default());
        assert!(dev.label().starts_with("fault("));
    }

    #[test]
    fn transients_are_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 42,
            transient_rate: 0.4,
            ..FaultPlan::default()
        };
        let run = || {
            let (h, dev) = faulty(plan);
            let mut errs = Vec::new();
            let mut buf = [0u8; 64];
            for i in 0..200u64 {
                errs.push(dev.read_block(i % 8, &mut buf).is_err());
            }
            (errs, h.counts())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b, "same seed must give the same schedule");
        assert_eq!(ca, cb);
        assert!(ca.transients > 40 && ca.transients < 160, "{ca:?}");
        // All injected errors are transient, none permanent.
        let (_, dev) = faulty(plan);
        let mut buf = [0u8; 64];
        for i in 0..50u64 {
            if let Err(e) = dev.read_block(i % 8, &mut buf) {
                assert!(e.is_transient(), "unexpected: {e}");
            }
        }
    }

    #[test]
    fn torn_write_lands_a_prefix() {
        let (h, dev) = faulty(FaultPlan {
            torn_write_rate: 1.0,
            ..FaultPlan::default()
        });
        let data = vec![7u8; 64 * 4];
        let err = dev.write_blocks_at(0, &data).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(h.counts().torn_writes, 1);
        // The prefix (2 of 4 blocks) is on media, the tail is not.
        h.set_armed(false);
        let mut buf = vec![0u8; 64 * 4];
        dev.read_blocks_at(0, &mut buf).unwrap();
        assert!(buf[..128].iter().all(|&b| b == 7));
        assert!(buf[128..].iter().all(|&b| b == 0));
        // Single-block writes are never torn.
        h.set_armed(true);
        dev.write_block(8, &[1u8; 64]).unwrap();
    }

    #[test]
    fn fail_stop_trips_on_schedule_and_heals_once() {
        let (h, dev) = faulty(FaultPlan {
            fail_after: Some(5),
            ..FaultPlan::default()
        });
        let mut buf = [0u8; 64];
        for _ in 0..5 {
            dev.read_block(0, &mut buf).unwrap();
        }
        let err = dev.read_block(0, &mut buf).unwrap_err();
        assert!(matches!(err, DiskError::DeviceFailed { .. }));
        assert!(!err.is_transient());
        assert!(dev.is_failed());
        assert!(dev.flush().is_err());
        // Heal = replace: the consumed fail-stop does not re-trip.
        dev.heal();
        for _ in 0..20 {
            dev.read_block(0, &mut buf).unwrap();
        }
        assert!(h.counts().failed_ops >= 1);
    }

    #[test]
    fn latency_spikes_are_counted() {
        let (h, dev) = faulty(FaultPlan {
            spike_rate: 1.0,
            spike: Duration::from_micros(50),
            ..FaultPlan::default()
        });
        let t0 = std::time::Instant::now();
        let mut buf = [0u8; 64];
        for _ in 0..4 {
            dev.read_block(0, &mut buf).unwrap();
        }
        assert_eq!(h.counts().spikes, 4);
        assert!(t0.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn crash_point_fires_at_nth_write_boundary() {
        let (h, dev) = faulty(FaultPlan {
            crash_after_writes: Some(2),
            ..FaultPlan::default()
        });
        dev.write_block(0, &[1u8; 64]).unwrap();
        dev.write_block(1, &[2u8; 64]).unwrap();
        let err = dev.write_block(2, &[3u8; 64]).unwrap_err();
        assert!(matches!(err, DiskError::DeviceFailed { .. }));
        assert!(dev.is_failed(), "a crash is a fail-stop");
        // Reads die with the host too.
        let mut buf = [0u8; 64];
        assert!(dev.read_block(0, &mut buf).is_err());
        // Restart on the surviving media: earlier writes landed, the
        // crashed one did not, and the consumed crash does not re-trip.
        dev.heal();
        dev.read_block(1, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
        dev.read_block(2, &mut buf).unwrap();
        assert_eq!(buf[0], 0, "the in-flight write must not land");
        dev.write_block(2, &[3u8; 64]).unwrap();
        assert!(h.counts().write_boundaries >= 3);
    }

    #[test]
    fn crash_point_optionally_tears_the_in_flight_write() {
        let (_, dev) = faulty(FaultPlan {
            crash_after_writes: Some(0),
            crash_torn: true,
            ..FaultPlan::default()
        });
        let data = vec![9u8; 64 * 4];
        assert!(dev.write_blocks_at(0, &data).is_err());
        dev.heal();
        let mut buf = vec![0u8; 64 * 4];
        dev.read_blocks_at(0, &mut buf).unwrap();
        assert!(buf[..128].iter().all(|&b| b == 9), "prefix lands");
        assert!(buf[128..].iter().all(|&b| b == 0), "tail is lost");
    }

    #[test]
    fn shared_clock_orders_writes_across_devices() {
        let clock = Arc::new(AtomicU64::new(0));
        let plan = FaultPlan {
            crash_after_writes: Some(1),
            ..FaultPlan::default()
        };
        let (_, a) = FaultDevice::wrap_with_clock(
            Arc::new(MemDisk::new(64, 64)) as DeviceRef,
            plan,
            Arc::clone(&clock),
        );
        let (hb, b) = FaultDevice::wrap_with_clock(
            Arc::new(MemDisk::new(64, 64)) as DeviceRef,
            plan,
            Arc::clone(&clock),
        );
        // Boundary 0 is device A's write; boundary 1 — the crash point —
        // is device B's, so the whole array dies there.
        a.write_block(0, &[1u8; 64]).unwrap();
        assert!(b.write_block(0, &[2u8; 64]).is_err());
        assert!(a.write_block(1, &[3u8; 64]).is_err(), "A crashed too");
        assert_eq!(hb.counts().write_boundaries, 3);
        // A fault-free plan still advances the clock, so a counting run
        // can size a sweep.
        let (hc, c) = FaultDevice::wrap_with_clock(
            Arc::new(MemDisk::new(64, 64)) as DeviceRef,
            FaultPlan::default(),
            Arc::new(AtomicU64::new(0)),
        );
        c.write_block(0, &[0u8; 64]).unwrap();
        c.write_block(1, &[0u8; 64]).unwrap();
        assert_eq!(hc.write_boundaries(), 2);
    }

    #[test]
    fn manual_fail_heal_round_trip() {
        let (_, dev) = faulty(FaultPlan::default());
        dev.fail();
        assert!(dev.is_failed());
        let mut buf = [0u8; 64];
        assert!(matches!(
            dev.read_block(0, &mut buf),
            Err(DiskError::DeviceFailed { .. })
        ));
        dev.heal();
        assert!(!dev.is_failed());
        dev.read_block(0, &mut buf).unwrap();
    }
}
