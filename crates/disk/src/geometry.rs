//! Rotating-disk geometry and timing.
//!
//! The paper's era is the late-1980s Winchester drive: tens of megabytes to
//! a few gigabytes, 3600 RPM, average seeks in the tens of milliseconds,
//! and ~1 MB/s media rates. Service time for a request decomposes into
//! *seek* (head movement across cylinders), *rotational latency* (waiting
//! for the first sector to come under the head), and *transfer* (sectors
//! passing under the head). All three are modelled here; the standard
//! `a + b·√d` seek curve captures the arm's accelerate/coast/settle
//! behaviour.

use serde::{Deserialize, Serialize};

use pario_sim::SimTime;

/// Physical description and timing parameters of a modelled disk.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiskGeometry {
    /// Number of cylinders (seek positions).
    pub cylinders: u32,
    /// Heads (= tracks per cylinder).
    pub heads: u32,
    /// Sectors per track.
    pub sectors_per_track: u32,
    /// Sector payload in bytes.
    pub sector_bytes: u32,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Seek settle time in microseconds (the `a` of `a + b·√d`).
    pub seek_settle_us: f64,
    /// Seek coefficient in microseconds per √cylinder (the `b`).
    pub seek_sqrt_us: f64,
}

impl DiskGeometry {
    /// A late-1980s Winchester drive in the class the paper cites
    /// (30,000 h MTBF): ~340 MB, 3600 RPM, ~16 ms average seek, ~1.2 MB/s
    /// media rate. Loosely modelled on the CDC Wren-series drives used in
    /// contemporary multiprocessors.
    pub fn wren_1989() -> DiskGeometry {
        DiskGeometry {
            cylinders: 1549,
            heads: 9,
            sectors_per_track: 46,
            sector_bytes: 512,
            rpm: 3600,
            seek_settle_us: 3000.0,
            seek_sqrt_us: 350.0,
        }
    }

    /// A uniform "fast" drive for experiments that want less seek
    /// domination (useful to show which effects are seek artefacts).
    pub fn fast_1990s() -> DiskGeometry {
        DiskGeometry {
            cylinders: 4096,
            heads: 16,
            sectors_per_track: 64,
            sector_bytes: 512,
            rpm: 7200,
            seek_settle_us: 1000.0,
            seek_sqrt_us: 120.0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.cylinders)
            * u64::from(self.heads)
            * u64::from(self.sectors_per_track)
            * u64::from(self.sector_bytes)
    }

    /// Total capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        u64::from(self.cylinders) * u64::from(self.heads) * u64::from(self.sectors_per_track)
    }

    /// One full revolution.
    pub fn revolution(&self) -> SimTime {
        SimTime::from_secs_f64(60.0 / f64::from(self.rpm))
    }

    /// Time for one sector to pass under the head.
    pub fn sector_time(&self) -> SimTime {
        self.revolution() / u64::from(self.sectors_per_track)
    }

    /// Sustained media transfer rate in bytes per second.
    pub fn media_rate(&self) -> f64 {
        f64::from(self.sectors_per_track) * f64::from(self.sector_bytes)
            / self.revolution().as_secs_f64()
    }

    /// Seek time across `distance` cylinders: zero for zero distance,
    /// otherwise `settle + b·√distance`.
    pub fn seek_time(&self, distance: u32) -> SimTime {
        if distance == 0 {
            return SimTime::ZERO;
        }
        let us = self.seek_settle_us + self.seek_sqrt_us * f64::from(distance).sqrt();
        SimTime::from_secs_f64(us / 1e6)
    }

    /// Average seek time over uniformly random request pairs (≈ seek over
    /// one third of the cylinders) — a sanity-check quantity, not used by
    /// the model itself.
    pub fn avg_seek(&self) -> SimTime {
        self.seek_time(self.cylinders / 3)
    }

    /// Cylinder containing absolute sector `lba`.
    pub fn cylinder_of(&self, lba: u64) -> u32 {
        (lba / (u64::from(self.heads) * u64::from(self.sectors_per_track))) as u32
    }

    /// Sector's angular position on its track, in sector units.
    pub fn sector_on_track(&self, lba: u64) -> u32 {
        (lba % u64::from(self.sectors_per_track)) as u32
    }

    /// Rotational latency from time `now` until sector `target` (angular
    /// index on track) is under the head, assuming the platter's angular
    /// position at `now` is `(now mod revolution)` from index zero.
    pub fn rotational_latency(&self, now: SimTime, target_sector: u32) -> SimTime {
        let rev = self.revolution().as_ns();
        let spt = u64::from(self.sectors_per_track);
        // Current angular position measured in nanoseconds into the
        // revolution; the target sector begins at target * rev / spt.
        let phase = now.as_ns() % rev;
        let target_ns = u64::from(target_sector) * rev / spt;
        let wait = if target_ns >= phase {
            target_ns - phase
        } else {
            rev - phase + target_ns
        };
        SimTime::from_ns(wait)
    }

    /// Media transfer time for `sectors` consecutive sectors (head and
    /// cylinder switches inside a transfer are not modelled; multi-track
    /// transfers are optimistic by a few sector times).
    pub fn transfer_time(&self, sectors: u64) -> SimTime {
        self.sector_time() * sectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wren_is_a_plausible_1989_drive() {
        let g = DiskGeometry::wren_1989();
        let mb = g.capacity_bytes() as f64 / 1e6;
        assert!((100.0..2000.0).contains(&mb), "capacity {mb} MB");
        let rate = g.media_rate() / 1e6;
        assert!((0.5..3.0).contains(&rate), "media rate {rate} MB/s");
        let avg = g.avg_seek().as_secs_f64() * 1e3;
        assert!((5.0..30.0).contains(&avg), "avg seek {avg} ms");
        assert_eq!(g.revolution(), SimTime::from_secs_f64(1.0 / 60.0));
    }

    #[test]
    fn seek_monotone_and_zero_at_home() {
        let g = DiskGeometry::wren_1989();
        assert_eq!(g.seek_time(0), SimTime::ZERO);
        let mut prev = SimTime::ZERO;
        for d in [1, 2, 10, 100, 1000, 1548] {
            let t = g.seek_time(d);
            assert!(t > prev, "seek({d}) not increasing");
            prev = t;
        }
        // Settle dominates a one-cylinder seek.
        assert!(g.seek_time(1) >= SimTime::from_us(3000));
    }

    #[test]
    fn rotational_latency_bounded_by_revolution() {
        let g = DiskGeometry::wren_1989();
        let rev = g.revolution();
        for now_ns in [0u64, 1, 12_345_678, 999_999_937] {
            for sector in [0u32, 1, 22, 45] {
                let lat = g.rotational_latency(SimTime::from_ns(now_ns), sector);
                assert!(lat < rev, "latency {lat} >= revolution {rev}");
            }
        }
        // At time zero, sector zero is directly under the head.
        assert_eq!(g.rotational_latency(SimTime::ZERO, 0), SimTime::ZERO);
    }

    #[test]
    fn rotation_wraps_around() {
        let g = DiskGeometry::wren_1989();
        let rev = g.revolution();
        // Just after sector 1 has passed, reaching sector 1 costs ~one rev.
        let spt = u64::from(g.sectors_per_track);
        let just_after = SimTime::from_ns(rev.as_ns() / spt + 1);
        let lat = g.rotational_latency(just_after, 1);
        assert!(lat > rev - rev / spt - SimTime::from_us(1));
    }

    #[test]
    fn transfer_scales_linearly() {
        let g = DiskGeometry::wren_1989();
        assert_eq!(g.transfer_time(10), g.sector_time() * 10);
        // A full track takes one revolution (integer division slop < spt).
        let track = g.transfer_time(u64::from(g.sectors_per_track));
        let diff = track.saturating_sub(g.revolution()) + g.revolution().saturating_sub(track);
        assert!(diff <= SimTime::from_us(1));
    }

    #[test]
    fn chs_mapping() {
        let g = DiskGeometry::wren_1989();
        let per_cyl = u64::from(g.heads) * u64::from(g.sectors_per_track);
        assert_eq!(g.cylinder_of(0), 0);
        assert_eq!(g.cylinder_of(per_cyl - 1), 0);
        assert_eq!(g.cylinder_of(per_cyl), 1);
        assert_eq!(g.sector_on_track(0), 0);
        assert_eq!(g.sector_on_track(u64::from(g.sectors_per_track) + 3), 3);
    }
}
