//! Composition tests: the buffering layer over dedicated I/O processors
//! (pipeline threads feeding node threads), and pipelines racing on a
//! shared device — stacking the paper's §4 mechanisms.

use std::sync::Arc;

use pario_buffer::{ReadAhead, VolumeCache, VolumeCacheConfig, WriteBehind};
use pario_disk::{BlockDevice, IoNode, MemDisk};

const BS: usize = 256;

#[test]
fn readahead_over_an_io_node() {
    let node = IoNode::spawn(Arc::new(MemDisk::new(32, BS)));
    let dev = node.device();
    for b in 0..32u64 {
        dev.write_block(b, &vec![b as u8; BS]).unwrap();
    }
    let mut ra = ReadAhead::new(node.device(), (0..32).collect(), 3);
    let mut count = 0u64;
    while let Some(res) = ra.next() {
        let (b, buf) = res.unwrap();
        assert!(buf.iter().all(|&x| x == b as u8));
        count += 1;
        ra.recycle(buf);
    }
    assert_eq!(count, 32);
    // The node serviced the writes and the prefetch reads.
    assert_eq!(node.stats().serviced, 64);
    assert_eq!(node.stats().in_flight, 0);
}

#[test]
fn writebehind_over_an_io_node_then_cache_reads() {
    let node = IoNode::spawn(Arc::new(MemDisk::new(32, BS)));
    let wb = WriteBehind::new(node.device(), 2);
    for b in 0..16u64 {
        let mut buf = wb.buffer();
        buf.fill(b as u8 + 1);
        wb.submit(b, buf);
    }
    assert_eq!(wb.finish().unwrap(), 16);
    // Read back through the volume-wide cache tier layered on the node.
    let cache = VolumeCache::new(vec![node.device()], VolumeCacheConfig::write_through(16));
    let mut got = vec![0u8; BS];
    for b in 0..16u64 {
        cache.read_block(0, b, &mut got).unwrap();
        assert!(got.iter().all(|&x| x == b as u8 + 1), "block {b}");
    }
    // Re-reads hit the cache, not the node.
    let before = node.stats().serviced;
    for b in 0..8u64 {
        cache.read_block(0, b, &mut got).unwrap();
    }
    assert_eq!(node.stats().serviced, before);
    assert_eq!(cache.stats().base.hits, 8);
}

#[test]
fn two_pipelines_race_on_one_device() {
    // A reader prefetches the lower half while a writer fills the upper
    // half; both complete and neither corrupts the other's range.
    let dev = Arc::new(MemDisk::new(64, BS));
    for b in 0..32u64 {
        dev.write_block(b, &vec![b as u8 + 1; BS]).unwrap();
    }
    let mut ra = ReadAhead::new(Arc::clone(&dev) as _, (0..32).collect(), 2);
    let wb = WriteBehind::new(Arc::clone(&dev) as _, 2);
    crossbeam::thread::scope(|s| {
        s.spawn(|_| {
            let mut n = 0u64;
            while let Some(res) = ra.next() {
                let (b, buf) = res.unwrap();
                assert!(buf.iter().all(|&x| x == b as u8 + 1));
                n += 1;
                ra.recycle(buf);
            }
            assert_eq!(n, 32);
        });
        s.spawn(|_| {
            for b in 32..64u64 {
                let mut buf = wb.buffer();
                buf.fill(b as u8 + 1);
                wb.submit(b, buf);
            }
        });
    })
    .unwrap();
    // Drain the deferred writes before inspecting the device.
    wb.finish().unwrap();
    let mut buf = vec![0u8; BS];
    for b in 0..64u64 {
        dev.read_block(b, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == b as u8 + 1), "block {b}");
    }
}
