//! Property test: the volume cache tier, under arbitrary interleavings
//! of reads, writes, updates and flushes, behaves exactly like the
//! obvious model — and never lets dirty data reach the device before it
//! should under write-back, nor later than immediately under
//! write-through.

use proptest::prelude::*;

use pario_buffer::{VolumeCache, VolumeCacheConfig, WritePolicy};
use pario_disk::{mem_array, DeviceRef};

const BS: usize = 64;
const BLOCKS: u64 = 16;

#[derive(Clone, Debug)]
enum OpKind {
    Read(u64),
    Write(u64, u8),
    Update(u64, u8),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        (0..BLOCKS).prop_map(OpKind::Read),
        (0..BLOCKS, any::<u8>()).prop_map(|(b, v)| OpKind::Write(b, v)),
        (0..BLOCKS, any::<u8>()).prop_map(|(b, v)| OpKind::Update(b, v)),
        Just(OpKind::Flush),
    ]
}

fn run_model(policy: WritePolicy, capacity: usize, ops: &[OpKind]) {
    let devs: Vec<DeviceRef> = mem_array(1, BLOCKS, BS);
    let cfg = match policy {
        WritePolicy::WriteThrough => VolumeCacheConfig::write_through(capacity),
        WritePolicy::WriteBack => VolumeCacheConfig::write_back(capacity),
    };
    let cache = VolumeCache::new(devs.clone(), cfg);
    // The logical content model (what reads must return).
    let mut logical: Vec<u8> = vec![0; BLOCKS as usize];
    let mut buf = vec![0u8; BS];
    let mut got = vec![0u8; BS];
    for op in ops {
        match *op {
            OpKind::Read(b) => {
                cache.read_block(0, b, &mut got).unwrap();
                assert!(
                    got.iter().all(|&x| x == logical[b as usize]),
                    "read {b}: cache returned stale data ({policy:?})"
                );
            }
            OpKind::Write(b, v) => {
                cache.write_block(0, b, &[v; BS]).unwrap();
                logical[b as usize] = v;
                if policy == WritePolicy::WriteThrough {
                    devs[0].read_block(b, &mut buf).unwrap();
                    assert!(buf.iter().all(|&x| x == v), "write-through lagged");
                }
            }
            OpKind::Update(b, v) => {
                cache.update(0, b, |frame| frame.fill(v)).unwrap();
                logical[b as usize] = v;
                if policy == WritePolicy::WriteThrough {
                    devs[0].read_block(b, &mut buf).unwrap();
                    assert!(buf.iter().all(|&x| x == v), "write-through update lagged");
                }
            }
            OpKind::Flush => {
                cache.flush().unwrap();
                for b in 0..BLOCKS {
                    devs[0].read_block(b, &mut buf).unwrap();
                    assert!(
                        buf.iter().all(|&x| x == logical[b as usize]),
                        "flush left block {b} stale"
                    );
                }
            }
        }
    }
    // Final flush: device converges to the logical state.
    cache.flush().unwrap();
    for b in 0..BLOCKS {
        devs[0].read_block(b, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == logical[b as usize]));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn write_back_matches_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 1usize..20,
    ) {
        run_model(WritePolicy::WriteBack, capacity, &ops);
    }

    #[test]
    fn write_through_matches_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 1usize..20,
    ) {
        run_model(WritePolicy::WriteThrough, capacity, &ops);
    }

    /// Cache statistics are coherent: hits + misses equals the reads and
    /// updates issued, and the cache never exceeds its capacity.
    #[test]
    fn stats_and_capacity(
        ops in proptest::collection::vec((0..BLOCKS, any::<bool>()), 1..100),
        capacity in 1usize..8,
    ) {
        let devs: Vec<DeviceRef> = mem_array(1, BLOCKS, BS);
        let cache = VolumeCache::new(devs, VolumeCacheConfig::write_back(capacity));
        let mut lookups = 0u64;
        let mut got = vec![0u8; BS];
        for (b, is_read) in ops {
            if is_read {
                cache.read_block(0, b, &mut got).unwrap();
            } else {
                cache.update(0, b, |f| f[0] ^= 1).unwrap();
            }
            lookups += 1;
            prop_assert!(cache.len() <= capacity);
        }
        let s = cache.stats();
        prop_assert_eq!(s.base.hits + s.base.misses, lookups);
    }
}
