//! An LRU block cache over a device array.
//!
//! The paper (§4): "For direct access methods, buffer caching techniques
//! would be helpful when there is some locality of reference, as in the PDA
//! organization." The cache is keyed by `(device, block)`, supports
//! write-through and write-back policies, and reports hit/miss statistics
//! so experiments can connect locality to observed traffic.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use parking_lot::Mutex;

use pario_disk::{DeviceRef, Result};

/// When dirty data reaches the device.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WritePolicy {
    /// Every write goes straight to the device (cache holds a clean copy).
    WriteThrough,
    /// Writes dirty the cached frame; the device is updated on eviction or
    /// [`BlockCache::flush`].
    WriteBack,
}

/// Cache traffic counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from the cache.
    pub hits: u64,
    /// Reads that went to a device.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written to a device (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit ratio over all reads (0 when no reads occurred).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    data: Box<[u8]>,
    dirty: bool,
    stamp: u64,
}

struct State {
    frames: HashMap<(usize, u64), Frame>,
    // stamp -> key, for O(log n) LRU eviction.
    order: BTreeMap<u64, (usize, u64)>,
    next_stamp: u64,
    stats: CacheStats,
}

/// A shared LRU cache of device blocks.
///
/// Superseded by the volume-wide [`VolumeCache`] tier, which adds CLOCK
/// eviction over a pooled frame budget, miss/writeback run coalescing,
/// and dirty-overflow spill. This type remains for single-file
/// experiments; [`CacheStats`] and [`WritePolicy`] are shared by both.
///
/// [`VolumeCache`]: crate::VolumeCache
#[deprecated(note = "use the volume-wide `VolumeCache` tier")]
pub struct BlockCache {
    devices: Vec<DeviceRef>,
    capacity: usize,
    policy: WritePolicy,
    state: Mutex<State>,
}

#[allow(deprecated)]
impl BlockCache {
    /// A cache of at most `capacity` frames over `devices`.
    ///
    /// All devices must share a block size.
    pub fn new(devices: Vec<DeviceRef>, capacity: usize, policy: WritePolicy) -> BlockCache {
        assert!(capacity > 0, "cache needs at least one frame");
        assert!(!devices.is_empty(), "cache needs at least one device");
        let bs = devices[0].block_size();
        assert!(
            devices.iter().all(|d| d.block_size() == bs),
            "devices must share a block size"
        );
        BlockCache {
            devices,
            capacity,
            policy,
            state: Mutex::new(State {
                frames: HashMap::new(),
                order: BTreeMap::new(),
                next_stamp: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// Block size of the underlying devices.
    pub fn block_size(&self) -> usize {
        self.devices[0].block_size()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    fn touch(state: &mut State, key: (usize, u64)) {
        let stamp = state.next_stamp;
        state.next_stamp += 1;
        if let Some(frame) = state.frames.get_mut(&key) {
            state.order.remove(&frame.stamp);
            frame.stamp = stamp;
            state.order.insert(stamp, key);
        }
    }

    fn evict_if_full(&self, state: &mut State) -> Result<()> {
        while state.frames.len() >= self.capacity {
            // invariant: the loop guard keeps frames (and order) non-empty here.
            let (&stamp, &key) = state.order.iter().next().expect("order tracks frames");
            state.order.remove(&stamp);
            // invariant: order and frames always track the same keys.
            let frame = state.frames.remove(&key).expect("frame for ordered key");
            state.stats.evictions += 1;
            if frame.dirty {
                state.stats.writebacks += 1;
                self.devices[key.0].write_block(key.1, &frame.data)?;
            }
        }
        Ok(())
    }

    fn insert(
        &self,
        state: &mut State,
        key: (usize, u64),
        data: Box<[u8]>,
        dirty: bool,
    ) -> Result<()> {
        self.evict_if_full(state)?;
        let stamp = state.next_stamp;
        state.next_stamp += 1;
        state.frames.insert(key, Frame { data, dirty, stamp });
        state.order.insert(stamp, key);
        Ok(())
    }

    /// Read block `block` of device `dev`, from cache if possible.
    pub fn read(&self, dev: usize, block: u64) -> Result<Bytes> {
        let mut state = self.state.lock();
        let key = (dev, block);
        if state.frames.contains_key(&key) {
            state.stats.hits += 1;
            Self::touch(&mut state, key);
            // invariant: just checked contains_key under the same lock.
            let frame = state.frames.get(&key).expect("just checked");
            return Ok(Bytes::copy_from_slice(&frame.data));
        }
        state.stats.misses += 1;
        let mut buf = vec![0u8; self.block_size()].into_boxed_slice();
        self.devices[dev].read_block(block, &mut buf)?;
        let out = Bytes::copy_from_slice(&buf);
        self.insert(&mut state, key, buf, false)?;
        Ok(out)
    }

    /// Write block `block` of device `dev` through the cache.
    pub fn write(&self, dev: usize, block: u64, data: &[u8]) -> Result<()> {
        assert_eq!(data.len(), self.block_size());
        let mut state = self.state.lock();
        let key = (dev, block);
        let dirty = match self.policy {
            WritePolicy::WriteThrough => {
                self.devices[dev].write_block(block, data)?;
                false
            }
            WritePolicy::WriteBack => true,
        };
        if let Some(frame) = state.frames.get_mut(&key) {
            frame.data.copy_from_slice(data);
            frame.dirty = frame.dirty || dirty;
            Self::touch(&mut state, key);
        } else {
            self.insert(&mut state, key, data.to_vec().into_boxed_slice(), dirty)?;
        }
        Ok(())
    }

    /// Read-modify-write a cached block in place.
    ///
    /// The closure sees the current contents and may mutate them; dirtiness
    /// follows the write policy. This is the primitive record-level access
    /// builds on when records are smaller than blocks.
    pub fn update(&self, dev: usize, block: u64, f: impl FnOnce(&mut [u8])) -> Result<()> {
        let mut state = self.state.lock();
        let key = (dev, block);
        if !state.frames.contains_key(&key) {
            state.stats.misses += 1;
            let mut buf = vec![0u8; self.block_size()].into_boxed_slice();
            self.devices[dev].read_block(block, &mut buf)?;
            self.insert(&mut state, key, buf, false)?;
        } else {
            state.stats.hits += 1;
        }
        Self::touch(&mut state, key);
        // invariant: inserted (or found) above under the same lock.
        let frame = state.frames.get_mut(&key).expect("inserted above");
        f(&mut frame.data);
        match self.policy {
            WritePolicy::WriteThrough => {
                self.devices[dev].write_block(block, &frame.data)?;
            }
            WritePolicy::WriteBack => frame.dirty = true,
        }
        Ok(())
    }

    /// Write every dirty frame to its device (frames stay cached, clean).
    pub fn flush(&self) -> Result<()> {
        let mut state = self.state.lock();
        // Collect first: can't write while iterating mutably over frames.
        let dirty_keys: Vec<(usize, u64)> = state
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&k, _)| k)
            .collect();
        for key in dirty_keys {
            // invariant: keys were collected from frames under the same lock.
            let frame = state.frames.get_mut(&key).expect("key from iteration");
            self.devices[key.0].write_block(key.1, &frame.data)?;
            frame.dirty = false;
            state.stats.writebacks += 1;
        }
        Ok(())
    }

    /// Drop every frame without writing anything back. Test/recovery hook.
    pub fn discard_all(&self) {
        let mut state = self.state.lock();
        state.frames.clear();
        state.order.clear();
    }

    /// Number of frames currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().frames.len()
    }

    /// True if the cache holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use pario_disk::mem_array;
    use std::sync::Arc;

    fn cache(cap: usize, policy: WritePolicy) -> (BlockCache, Vec<DeviceRef>) {
        let devs = mem_array(2, 32, 64);
        (BlockCache::new(devs.clone(), cap, policy), devs)
    }

    #[test]
    fn read_caches_and_hits() {
        let (c, devs) = cache(4, WritePolicy::WriteThrough);
        devs[0].write_block(3, &[7u8; 64]).unwrap();
        let before = devs[0].counters().reads;
        let a = c.read(0, 3).unwrap();
        let b = c.read(0, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0], 7);
        assert_eq!(devs[0].counters().reads, before + 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (c, _devs) = cache(2, WritePolicy::WriteThrough);
        c.read(0, 1).unwrap();
        c.read(0, 2).unwrap();
        c.read(0, 1).unwrap(); // 1 is now most recent
        c.read(0, 3).unwrap(); // evicts 2
        assert_eq!(c.stats().evictions, 1);
        c.read(0, 1).unwrap(); // still cached
        assert_eq!(c.stats().hits, 2);
        c.read(0, 2).unwrap(); // was evicted: miss
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn write_through_reaches_device_immediately() {
        let (c, devs) = cache(4, WritePolicy::WriteThrough);
        c.write(1, 5, &[9u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        devs[1].read_block(5, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 9));
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_back_defers_until_flush() {
        let (c, devs) = cache(4, WritePolicy::WriteBack);
        c.write(0, 5, &[9u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        devs[0].read_block(5, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == 0),
            "write must not reach device yet"
        );
        // Read-your-writes through the cache.
        assert_eq!(c.read(0, 5).unwrap()[0], 9);
        c.flush().unwrap();
        devs[0].read_block(5, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 9));
        assert_eq!(c.stats().writebacks, 1);
        // Second flush writes nothing.
        c.flush().unwrap();
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_back_eviction_writes_dirty_frame() {
        let (c, devs) = cache(1, WritePolicy::WriteBack);
        c.write(0, 1, &[4u8; 64]).unwrap();
        c.read(0, 2).unwrap(); // evicts dirty block 1
        let mut buf = vec![0u8; 64];
        devs[0].read_block(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 4));
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn update_read_modify_write() {
        let (c, devs) = cache(4, WritePolicy::WriteBack);
        devs[0].write_block(0, &[1u8; 64]).unwrap();
        c.update(0, 0, |b| b[10] = 99).unwrap();
        let got = c.read(0, 0).unwrap();
        assert_eq!(got[10], 99);
        assert_eq!(got[0], 1);
        c.flush().unwrap();
        let mut buf = vec![0u8; 64];
        devs[0].read_block(0, &mut buf).unwrap();
        assert_eq!(buf[10], 99);
    }

    #[test]
    fn discard_drops_dirty_data() {
        let (c, devs) = cache(4, WritePolicy::WriteBack);
        c.write(0, 0, &[5u8; 64]).unwrap();
        c.discard_all();
        assert!(c.is_empty());
        let mut buf = vec![0u8; 64];
        devs[0].read_block(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn concurrent_updates_are_atomic() {
        let devs = mem_array(1, 8, 64);
        let c = Arc::new(BlockCache::new(devs.clone(), 4, WritePolicy::WriteBack));
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move |_| {
                    for _ in 0..100 {
                        c.update(0, 0, |b| {
                            let v = u64::from_le_bytes(b[0..8].try_into().unwrap());
                            b[0..8].copy_from_slice(&(v + 1).to_le_bytes());
                        })
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let got = c.read(0, 0).unwrap();
        let v = u64::from_le_bytes(got[0..8].try_into().unwrap());
        assert_eq!(v, 800);
    }
}
