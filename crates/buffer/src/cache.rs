//! Shared cache policy and statistics types.
//!
//! The paper (§4): "For direct access methods, buffer caching techniques
//! would be helpful when there is some locality of reference, as in the PDA
//! organization." The caching itself lives in the volume-wide
//! [`VolumeCache`] tier; this module holds the policy knob and the
//! traffic counters it reports, so experiments can connect locality to
//! observed traffic.
//!
//! [`VolumeCache`]: crate::VolumeCache

/// When dirty data reaches the device.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WritePolicy {
    /// Every write goes straight to the device (cache holds a clean copy).
    WriteThrough,
    /// Writes dirty the cached frame; the device is updated on eviction or
    /// [`VolumeCache::flush`](crate::VolumeCache::flush).
    WriteBack,
}

/// Cache traffic counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from the cache.
    pub hits: u64,
    /// Reads that went to a device.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written to a device (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit ratio over all reads (0 when no reads occurred).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_counts_reads_only() {
        let s = CacheStats {
            hits: 1,
            misses: 1,
            evictions: 7,
            writebacks: 7,
        };
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
