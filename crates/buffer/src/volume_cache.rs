//! The volume-wide shared block cache tier.
//!
//! The paper (§4) argues buffering software is "just as important as the
//! layout of data on disks"; a per-file cache leaves hot reuse traffic
//! across a server's *many* sessions hitting the device executors on
//! every access. [`VolumeCache`] is the shared tier in front of the
//! executor bank that every file of a volume goes through:
//!
//! * **CLOCK eviction** over a fixed frame budget drawn from a
//!   [`BufferPool`] at construction (the pool's free-list lock is ranked
//!   *below* the fs locks, so the budget is drained up front and frames
//!   never touch the pool while the ranked cache lock is held).
//! * **Read-through miss coalescing**: adjacent misses in one request
//!   become one vectored `submit_read_blocks` ticket per device, and
//!   tickets across devices are all in flight before any is waited on
//!   ([`VolumeCache::submit_read`] / [`CacheReadTicket::wait`]).
//! * **Write-behind coalescing**: under [`WritePolicy::WriteBack`],
//!   dirty neighbors are merged into contiguous runs before executor
//!   submit, both at eviction and at [`VolumeCache::flush`].
//! * **Disk spill**: with a scratch device configured, evicting a dirty
//!   frame spills it to scratch instead of waiting out a write to its
//!   (possibly slow) home device, so unbounded writers are never
//!   blocked behind the home devices ([`VolumeCacheConfig::spill`]).
//! * **Invalidation** hooks ([`VolumeCache::invalidate_range`],
//!   [`VolumeCache::drop_device`]) let lock release points and device
//!   health transitions keep cached state coherent with the media.
//!
//! The internal mutex is ranked [`LockLevel::VolumeCache`] (75): above
//! the file RMW/stripe locks (lookups happen inside those critical
//! sections) and below the health board (health transitions drop frames
//! only after the board mutex is released).
//!
//! Error semantics are chosen so the cache never *masks* media state:
//! a failed write-through invalidates every frame the write covered
//! (a torn write leaves the media holding a prefix — subsequent reads
//! must see exactly that), and a failed read-fill simply skips frame
//! installation.

use std::collections::{HashMap, HashSet};

use pario_check::{LockLevel, Mutex};
use pario_disk::{DeviceRef, DiskError, Result, Ticket};

use crate::cache::{CacheStats, WritePolicy};
use crate::pool::{BufferPool, PoolBuf};

/// Shape of a [`VolumeCache`].
pub struct VolumeCacheConfig {
    /// Frame budget: block-sized buffers drawn from a [`BufferPool`] at
    /// construction.
    pub frames: usize,
    /// When dirty data reaches the home devices. `WriteThrough`
    /// preserves the uncached path's durability and fault visibility
    /// exactly; `WriteBack` absorbs writes and coalesces them on
    /// eviction/flush.
    pub policy: WritePolicy,
    /// Scratch device for the dirty-overflow spill path (write-back
    /// only). `None` falls back to coalesced write-back at eviction.
    pub spill: Option<DeviceRef>,
}

impl VolumeCacheConfig {
    /// A write-through cache of `frames` frames and no spill device.
    pub fn write_through(frames: usize) -> VolumeCacheConfig {
        VolumeCacheConfig {
            frames,
            policy: WritePolicy::WriteThrough,
            spill: None,
        }
    }

    /// A write-back cache of `frames` frames and no spill device.
    pub fn write_back(frames: usize) -> VolumeCacheConfig {
        VolumeCacheConfig {
            frames,
            policy: WritePolicy::WriteBack,
            spill: None,
        }
    }

    /// Attach a scratch device for dirty-frame spill.
    pub fn with_spill(mut self, scratch: DeviceRef) -> VolumeCacheConfig {
        self.spill = Some(scratch);
        self
    }
}

/// Traffic counters of a [`VolumeCache`]. Extends the shared
/// [`CacheStats`] counters with coalescing and spill activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct VolumeCacheStats {
    /// The shared hit/miss/eviction/writeback counters.
    pub base: CacheStats,
    /// Misses absorbed into a neighbor's vectored read (blocks beyond
    /// the first of each coalesced miss run).
    pub coalesced_reads: u64,
    /// Dirty blocks merged into a neighbor's vectored writeback (blocks
    /// beyond the first of each contiguous dirty run).
    pub coalesced_writes: u64,
    /// Dirty frames overflowed to the scratch device.
    pub spills: u64,
    /// Reads served from spilled scratch blocks.
    pub spill_loads: u64,
    /// Frames dropped by invalidation (lock-driven or health-driven).
    pub invalidations: u64,
}

impl VolumeCacheStats {
    /// Hit ratio over all reads (0 when no reads occurred).
    pub fn hit_ratio(&self) -> f64 {
        self.base.hit_ratio()
    }
}

struct Slot {
    key: Option<(usize, u64)>,
    dirty: bool,
    referenced: bool,
}

struct CacheState {
    /// The frame buffers, drawn from the pool at construction. Entry `i`
    /// backs `slots[i]`.
    bufs: Vec<PoolBuf>,
    slots: Vec<Slot>,
    /// `(device, absolute block)` -> slot index.
    map: HashMap<(usize, u64), usize>,
    /// Slots never used yet (startup only; eviction recycles in place).
    free: Vec<usize>,
    /// CLOCK hand.
    hand: usize,
    /// Dirty blocks overflowed to the scratch device:
    /// `(device, block)` -> scratch block. A key is in at most one of
    /// `map` and `spilled`.
    spilled: HashMap<(usize, u64), u64>,
    /// Unused scratch blocks.
    spill_free: Vec<u64>,
    /// Miss keys with an executor fetch in flight -> outstanding reader
    /// count. A write or invalidation of such a key lands in `stale`:
    /// the fetched bytes predate the mutation and must not be installed
    /// when the ticket is waited.
    inflight: HashMap<(usize, u64), u32>,
    /// In-flight keys mutated since their fetch was submitted.
    stale: HashSet<(usize, u64)>,
    stats: VolumeCacheStats,
}

/// A volume-wide shared block cache in front of the executor bank.
pub struct VolumeCache {
    devices: Vec<DeviceRef>,
    scratch: Option<DeviceRef>,
    policy: WritePolicy,
    block_size: usize,
    /// Kept alive so the drained frame budget returns to a live pool on
    /// drop, and so callers can see the budget via [`VolumeCache::pool`].
    pool: BufferPool,
    frames: Mutex<CacheState>,
}

/// A pending miss run: (byte offset into `out`, start block, block
/// count, executor ticket).
type PendingRun = (usize, u64, u64, Ticket<Box<[u8]>>);

/// An in-flight cached read: hits were copied at submit time, miss runs
/// hold executor tickets. Wait with [`CacheReadTicket::wait`].
#[must_use = "a cached read completes only when waited"]
pub struct CacheReadTicket {
    dev: usize,
    pending: Vec<PendingRun>,
    out: Box<[u8]>,
    err: Option<DiskError>,
}

/// An in-flight cached write (write-through submits one vectored device
/// write; write-back completes at submit time).
#[must_use = "a cached write completes only when waited"]
pub struct CacheWriteTicket {
    dev: usize,
    block: u64,
    count: u64,
    pending: Option<Ticket<Box<[u8]>>>,
}

impl VolumeCache {
    /// A cache over `devices` (normally a volume's executor handles).
    ///
    /// The frame budget is drawn from a fresh [`BufferPool`] of
    /// `cfg.frames` block-sized buffers, all acquired here — the pool's
    /// lock sits below the fs locks in the hierarchy, so the cache must
    /// never touch it while its own ranked lock is held.
    pub fn new(devices: Vec<DeviceRef>, cfg: VolumeCacheConfig) -> VolumeCache {
        assert!(cfg.frames > 0, "cache needs at least one frame");
        assert!(!devices.is_empty(), "cache needs at least one device");
        let bs = devices[0].block_size();
        assert!(
            devices.iter().all(|d| d.block_size() == bs),
            "devices must share a block size"
        );
        if let Some(s) = &cfg.spill {
            assert_eq!(s.block_size(), bs, "scratch device block size");
        }
        let pool = BufferPool::new(cfg.frames, bs);
        let bufs: Vec<PoolBuf> = (0..cfg.frames).map(|_| pool.acquire()).collect();
        let slots = (0..cfg.frames)
            .map(|_| Slot {
                key: None,
                dirty: false,
                referenced: false,
            })
            .collect();
        let spill_free = match &cfg.spill {
            Some(s) => (0..s.num_blocks()).rev().collect(),
            None => Vec::new(),
        };
        VolumeCache {
            devices,
            scratch: cfg.spill,
            policy: cfg.policy,
            block_size: bs,
            pool,
            frames: Mutex::new_named(
                CacheState {
                    bufs,
                    slots,
                    map: HashMap::new(),
                    free: (0..cfg.frames).rev().collect(),
                    hand: 0,
                    spilled: HashMap::new(),
                    spill_free,
                    inflight: HashMap::new(),
                    stale: HashSet::new(),
                    stats: VolumeCacheStats::default(),
                },
                LockLevel::VolumeCache,
            ),
        }
    }

    /// Block size of the underlying devices.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The write policy the cache runs.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// The pool the frame budget was drawn from (fully drained while the
    /// cache lives).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Frame budget (total frames).
    pub fn frame_budget(&self) -> usize {
        self.pool.capacity()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> VolumeCacheStats {
        self.frames.lock().stats
    }

    /// Number of resident frames (spilled blocks not included).
    pub fn len(&self) -> usize {
        self.frames.lock().map.len()
    }

    /// True when no frames are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of blocks currently spilled to scratch.
    pub fn spilled_blocks(&self) -> usize {
        self.frames.lock().spilled.len()
    }

    // ------------------------------------------------------------------
    // Internal frame machinery (all called with the state lock held)
    // ------------------------------------------------------------------

    /// Write the contiguous dirty run around `slot`'s key back to its
    /// home device as one vectored request, marking the run clean.
    fn writeback_run(&self, st: &mut CacheState, idx: usize) -> Result<()> {
        // invariant: callers only pass occupied slots.
        let (dev, block) = st.slots[idx].key.expect("occupied slot");
        // Grow the run over contiguous dirty resident neighbors.
        let mut lo = block;
        while lo > 0 {
            match st.map.get(&(dev, lo - 1)) {
                Some(&i) if st.slots[i].dirty => lo -= 1,
                _ => break,
            }
        }
        let mut hi = block;
        while let Some(&i) = st.map.get(&(dev, hi + 1)) {
            if !st.slots[i].dirty {
                break;
            }
            hi += 1;
        }
        let n = (hi - lo + 1) as usize;
        let mut data = vec![0u8; n * self.block_size];
        for j in 0..n {
            // invariant: the scan above saw every key in the run.
            let i = *st.map.get(&(dev, lo + j as u64)).expect("scanned key");
            data[j * self.block_size..(j + 1) * self.block_size].copy_from_slice(&st.bufs[i]);
        }
        self.devices[dev]
            .submit_write_blocks(lo, data.into_boxed_slice())
            .wait()?;
        for j in 0..n {
            // invariant: keys unchanged while the state lock is held.
            let i = *st.map.get(&(dev, lo + j as u64)).expect("scanned key");
            st.slots[i].dirty = false;
        }
        st.stats.base.writebacks += n as u64;
        st.stats.coalesced_writes += n as u64 - 1;
        Ok(())
    }

    /// Make `slot` clean so it can be recycled: spill to scratch when a
    /// slot is free there, else write the surrounding dirty run home.
    fn clean_slot(&self, st: &mut CacheState, idx: usize) -> Result<()> {
        if !st.slots[idx].dirty {
            return Ok(());
        }
        if let Some(scratch) = &self.scratch {
            if let Some(sslot) = st.spill_free.pop() {
                // invariant: callers only pass occupied slots.
                let key = st.slots[idx].key.expect("occupied slot");
                if let Err(e) = scratch.write_block(sslot, &st.bufs[idx]) {
                    st.spill_free.push(sslot);
                    return Err(e);
                }
                st.spilled.insert(key, sslot);
                st.slots[idx].dirty = false;
                st.stats.spills += 1;
                return Ok(());
            }
        }
        self.writeback_run(st, idx)
    }

    /// Take a recyclable slot: a never-used one, else a CLOCK victim
    /// (dirty victims are spilled or written back first). The returned
    /// slot is unmapped and clean.
    fn take_slot(&self, st: &mut CacheState) -> Result<usize> {
        if let Some(idx) = st.free.pop() {
            return Ok(idx);
        }
        // Two sweeps suffice: the first clears every reference bit.
        for _ in 0..2 * st.slots.len() {
            let idx = st.hand;
            st.hand = (st.hand + 1) % st.slots.len();
            if st.slots[idx].referenced {
                st.slots[idx].referenced = false;
                continue;
            }
            self.clean_slot(st, idx)?;
            // invariant: non-free slots are always mapped.
            let key = st.slots[idx].key.take().expect("occupied slot");
            st.map.remove(&key);
            st.slots[idx].dirty = false;
            st.stats.base.evictions += 1;
            return Ok(idx);
        }
        unreachable!("CLOCK finds a victim within two sweeps");
    }

    /// Poison any in-flight fetch of `key`: the caller is about to make
    /// its bytes stale (a write, an update, or an invalidation after a
    /// raw media write), so the late install must be skipped.
    fn mark_stale_if_inflight(st: &mut CacheState, key: (usize, u64)) {
        if st.inflight.contains_key(&key) {
            st.stale.insert(key);
        }
    }

    /// Drop one in-flight reference to `key` and report whether its
    /// fetched bytes are still fresh (never mutated since submit).
    fn retire_inflight(st: &mut CacheState, key: (usize, u64)) -> bool {
        let fresh = !st.stale.contains(&key);
        if let Some(c) = st.inflight.get_mut(&key) {
            *c -= 1;
            if *c == 0 {
                st.inflight.remove(&key);
                st.stale.remove(&key);
            }
        }
        fresh
    }

    /// Install `data` as a frame for `key`. `dirty` marks write-behind
    /// data not yet on the home device. The reference bit starts clear:
    /// only a second touch earns a frame protection from the sweep, so
    /// one-shot streaming data is recycled first.
    fn install(
        &self,
        st: &mut CacheState,
        key: (usize, u64),
        data: &[u8],
        dirty: bool,
    ) -> Result<()> {
        let idx = self.take_slot(st)?;
        st.bufs[idx].copy_from_slice(data);
        st.slots[idx] = Slot {
            key: Some(key),
            dirty,
            referenced: false,
        };
        st.map.insert(key, idx);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Start a cached read of `count` blocks of device `dev` beginning
    /// at absolute block `block`. Hits (and spilled blocks) are copied
    /// immediately; runs of adjacent misses are coalesced into one
    /// vectored executor ticket each, all submitted before this returns
    /// — so a caller reading runs on several devices keeps full
    /// cross-device parallelism by submitting every run before waiting
    /// any ([`CacheReadTicket::wait`]).
    pub fn submit_read(&self, dev: usize, block: u64, count: usize) -> CacheReadTicket {
        let bs = self.block_size;
        let mut out = vec![0u8; count * bs].into_boxed_slice();
        let mut pending = Vec::new();
        let mut err = None;
        let mut st = self.frames.lock();
        let mut i = 0usize;
        while i < count {
            let b = block + i as u64;
            if let Some(&idx) = st.map.get(&(dev, b)) {
                st.slots[idx].referenced = true;
                out[i * bs..(i + 1) * bs].copy_from_slice(&st.bufs[idx]);
                st.stats.base.hits += 1;
                i += 1;
            } else if let Some(&sslot) = st.spilled.get(&(dev, b)) {
                // The newest copy lives on scratch (it was dirty when
                // spilled); serve it from there.
                // invariant: spilled entries exist only with a scratch device.
                let scratch = self.scratch.as_ref().expect("spill implies scratch");
                if let Err(e) = scratch.read_block(sslot, &mut out[i * bs..(i + 1) * bs]) {
                    err.get_or_insert(e);
                }
                st.stats.base.hits += 1;
                st.stats.spill_loads += 1;
                i += 1;
            } else {
                // Coalesce the whole run of adjacent misses into one
                // vectored read.
                let start = i;
                while i < count {
                    let key = (dev, block + i as u64);
                    if st.map.contains_key(&key) || st.spilled.contains_key(&key) {
                        break;
                    }
                    i += 1;
                }
                let n = i - start;
                st.stats.base.misses += n as u64;
                st.stats.coalesced_reads += n as u64 - 1;
                for j in start..i {
                    *st.inflight.entry((dev, block + j as u64)).or_insert(0) += 1;
                }
                let t = self.devices[dev]
                    .submit_read_blocks(block + start as u64, vec![0u8; n * bs].into_boxed_slice());
                pending.push((start * bs, block + start as u64, n as u64, t));
            }
        }
        drop(st);
        CacheReadTicket {
            dev,
            pending,
            out,
            err,
        }
    }

    /// Read blocks synchronously through the cache (`out` must be a
    /// whole number of blocks).
    pub fn read_blocks(&self, dev: usize, block: u64, out: &mut [u8]) -> Result<()> {
        debug_assert_eq!(out.len() % self.block_size, 0);
        let data = self
            .submit_read(dev, block, out.len() / self.block_size)
            .wait(self)?;
        out.copy_from_slice(&data);
        Ok(())
    }

    /// Read one block synchronously through the cache.
    pub fn read_block(&self, dev: usize, block: u64, out: &mut [u8]) -> Result<()> {
        self.read_blocks(dev, block, out)
    }

    /// Copy `(dev, block)` into `out` only if it is resident (frame or
    /// spilled) — never touches the home device. Used by hedged reads,
    /// which otherwise race raw device tickets and must not miss newer
    /// write-behind data.
    pub fn try_cached(&self, dev: usize, block: u64, out: &mut [u8]) -> bool {
        let mut st = self.frames.lock();
        if let Some(&idx) = st.map.get(&(dev, block)) {
            st.slots[idx].referenced = true;
            out.copy_from_slice(&st.bufs[idx]);
            st.stats.base.hits += 1;
            return true;
        }
        if let Some(&sslot) = st.spilled.get(&(dev, block)) {
            // invariant: spilled entries exist only with a scratch device.
            let scratch = self.scratch.as_ref().expect("spill implies scratch");
            if scratch.read_block(sslot, out).is_ok() {
                st.stats.base.hits += 1;
                st.stats.spill_loads += 1;
                return true;
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Start a cached write of whole blocks. Write-back absorbs the data
    /// into dirty frames (spilling or writing back victims) and is
    /// complete when this returns; write-through updates resident frames
    /// and submits one vectored device write whose outcome
    /// [`CacheWriteTicket::wait`] reports — on error every covered frame
    /// is invalidated, so reads see exactly what the media holds (a torn
    /// write is never masked by the cache).
    pub fn submit_write(&self, dev: usize, block: u64, data: &[u8]) -> Result<CacheWriteTicket> {
        let bs = self.block_size;
        debug_assert_eq!(data.len() % bs, 0);
        let count = data.len() / bs;
        let mut st = self.frames.lock();
        match self.policy {
            WritePolicy::WriteBack => {
                for j in 0..count {
                    let key = (dev, block + j as u64);
                    let chunk = &data[j * bs..(j + 1) * bs];
                    Self::mark_stale_if_inflight(&mut st, key);
                    if let Some(&idx) = st.map.get(&key) {
                        st.bufs[idx].copy_from_slice(chunk);
                        st.slots[idx].dirty = true;
                        st.slots[idx].referenced = true;
                    } else if let Some(&sslot) = st.spilled.get(&key) {
                        // Overwrite the spilled copy in place.
                        // invariant: spilled entries exist only with a scratch device.
                        let scratch = self.scratch.as_ref().expect("spill implies scratch");
                        scratch.write_block(sslot, chunk)?;
                    } else {
                        self.install(&mut st, key, chunk, true)?;
                    }
                }
                Ok(CacheWriteTicket {
                    dev,
                    block,
                    count: count as u64,
                    pending: None,
                })
            }
            WritePolicy::WriteThrough => {
                // Update resident frames; deliberately no insert on miss
                // (large streaming writes must not flush the whole
                // cache), and no new dirty state ever.
                for j in 0..count {
                    let key = (dev, block + j as u64);
                    let chunk = &data[j * bs..(j + 1) * bs];
                    Self::mark_stale_if_inflight(&mut st, key);
                    if let Some(&idx) = st.map.get(&key) {
                        st.bufs[idx].copy_from_slice(chunk);
                        st.slots[idx].referenced = true;
                    }
                }
                let t =
                    self.devices[dev].submit_write_blocks(block, data.to_vec().into_boxed_slice());
                drop(st);
                Ok(CacheWriteTicket {
                    dev,
                    block,
                    count: count as u64,
                    pending: Some(t),
                })
            }
        }
    }

    /// Write blocks synchronously through the cache.
    pub fn write_blocks(&self, dev: usize, block: u64, data: &[u8]) -> Result<()> {
        self.submit_write(dev, block, data)?.wait(self)
    }

    /// Write one block synchronously through the cache.
    pub fn write_block(&self, dev: usize, block: u64, data: &[u8]) -> Result<()> {
        self.write_blocks(dev, block, data)
    }

    /// Read-modify-write one cached block in place, the primitive
    /// sub-block record access builds on.
    pub fn update(&self, dev: usize, block: u64, f: impl FnOnce(&mut [u8])) -> Result<()> {
        let key = (dev, block);
        let mut st = self.frames.lock();
        Self::mark_stale_if_inflight(&mut st, key);
        if let Some(&sslot) = st.spilled.get(&key) {
            // The newest copy is on scratch: update it there in place.
            // invariant: spilled entries exist only with a scratch device.
            let scratch = self.scratch.as_ref().expect("spill implies scratch");
            let mut buf = vec![0u8; self.block_size];
            scratch.read_block(sslot, &mut buf)?;
            f(&mut buf);
            st.stats.base.hits += 1;
            st.stats.spill_loads += 1;
            return scratch.write_block(sslot, &buf);
        }
        if !st.map.contains_key(&key) {
            st.stats.base.misses += 1;
            let mut buf = vec![0u8; self.block_size];
            self.devices[dev].read_block(block, &mut buf)?;
            self.install(&mut st, key, &buf, false)?;
        } else {
            st.stats.base.hits += 1;
        }
        // invariant: installed (or found) above under the same lock.
        let idx = *st.map.get(&key).expect("installed above");
        st.slots[idx].referenced = true;
        // Split-borrow dance: take the frame data out of st to mutate it
        // while the device write can still observe errors.
        f(&mut st.bufs[idx]);
        match self.policy {
            WritePolicy::WriteBack => {
                st.slots[idx].dirty = true;
                Ok(())
            }
            WritePolicy::WriteThrough => {
                let r = self.devices[dev].write_block(block, &st.bufs[idx]);
                if r.is_err() {
                    // Never mask media state: drop the frame on error.
                    st.map.remove(&key);
                    st.slots[idx].key = None;
                    st.slots[idx].dirty = false;
                    st.free.push(idx);
                    st.stats.invalidations += 1;
                }
                r
            }
        }
    }

    // ------------------------------------------------------------------
    // Flush and invalidation
    // ------------------------------------------------------------------

    /// Write every dirty frame and spilled block matching `keep` home,
    /// merging adjacent blocks into vectored runs submitted across all
    /// devices before any is waited on.
    fn flush_filtered(&self, keep: impl Fn(usize, u64) -> bool) -> Result<()> {
        let bs = self.block_size;
        let mut st = self.frames.lock();
        // Gather per device: sorted (block, bytes, origin).
        let mut by_dev: HashMap<usize, Vec<(u64, Vec<u8>, Origin)>> = HashMap::new();
        for (&(dev, block), &idx) in &st.map {
            if st.slots[idx].dirty && keep(dev, block) {
                by_dev.entry(dev).or_default().push((
                    block,
                    st.bufs[idx].to_vec(),
                    Origin::Frame(idx),
                ));
            }
        }
        for (&(dev, block), &sslot) in &st.spilled {
            if keep(dev, block) {
                // invariant: spilled entries exist only with a scratch device.
                let scratch = self.scratch.as_ref().expect("spill implies scratch");
                let mut buf = vec![0u8; bs];
                scratch.read_block(sslot, &mut buf)?;
                by_dev
                    .entry(dev)
                    .or_default()
                    .push((block, buf, Origin::Spill(sslot)));
            }
        }
        // Merge adjacent blocks into runs and submit everything.
        type WritebackRun = (usize, Vec<(u64, Origin)>, Ticket<Box<[u8]>>);
        let mut inflight: Vec<WritebackRun> = Vec::new();
        for (dev, mut items) in by_dev {
            items.sort_by_key(|(b, _, _)| *b);
            let mut i = 0usize;
            while i < items.len() {
                let start = i;
                while i + 1 < items.len() && items[i + 1].0 == items[i].0 + 1 {
                    i += 1;
                }
                i += 1;
                let run = &items[start..i];
                let mut data = Vec::with_capacity(run.len() * bs);
                let mut members = Vec::with_capacity(run.len());
                for (b, bytes, origin) in run {
                    data.extend_from_slice(bytes);
                    members.push((*b, *origin));
                }
                let t = self.devices[dev].submit_write_blocks(run[0].0, data.into_boxed_slice());
                inflight.push((dev, members, t));
            }
        }
        let mut first_err: Option<DiskError> = None;
        for (dev, members, t) in inflight {
            match t.wait() {
                Ok(_) => {
                    let blocks = members.len() as u64;
                    for (block, origin) in members {
                        match origin {
                            Origin::Frame(idx) => st.slots[idx].dirty = false,
                            Origin::Spill(sslot) => {
                                st.spilled.remove(&(dev, block));
                                st.spill_free.push(sslot);
                            }
                        }
                    }
                    st.stats.base.writebacks += blocks;
                    st.stats.coalesced_writes += blocks - 1;
                }
                Err(e) => {
                    // Keep the run dirty/spilled; the data is not lost.
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Write all dirty state (frames and spilled blocks) to the home
    /// devices, coalesced into vectored runs.
    pub fn flush(&self) -> Result<()> {
        self.flush_filtered(|_, _| true)
    }

    /// Flush only device `dev`'s dirty state.
    pub fn flush_device(&self, dev: usize) -> Result<()> {
        self.flush_filtered(|d, _| d == dev)
    }

    /// Flush dirty state covering `[block, block + count)` of device
    /// `dev` — the hook a byte-range lock release drives so data written
    /// under the lock is durable before the next holder proceeds.
    pub fn flush_range(&self, dev: usize, block: u64, count: u64) -> Result<()> {
        self.flush_filtered(|d, b| d == dev && b >= block && b < block + count)
    }

    /// Drop resident and spilled state covering `[block, block + count)`
    /// of device `dev` *without* writing anything back — for callers
    /// that know the media is authoritative (fresh zeroed extents) or
    /// gone (health transitions).
    pub fn invalidate_range(&self, dev: usize, block: u64, count: u64) {
        let mut st = self.frames.lock();
        Self::invalidate_locked(&mut st, |d, b| d == dev && b >= block && b < block + count);
    }

    /// Drop every resident and spilled block of device `dev` — the
    /// health-transition hook: a Failed device's blocks must error (or
    /// reconstruct) rather than serve from cache, and a Rebuilding
    /// device's frames predate the resync sweep.
    pub fn drop_device(&self, dev: usize) {
        let mut st = self.frames.lock();
        Self::invalidate_locked(&mut st, |d, _| d == dev);
    }

    fn invalidate_locked(st: &mut CacheState, drop: impl Fn(usize, u64) -> bool) {
        // Poison matching in-flight fetches too: invalidation means the
        // media changed (or died) underneath, so bytes fetched before it
        // must not come back as clean frames.
        let doomed_inflight: Vec<(usize, u64)> = st
            .inflight
            .keys()
            .filter(|&&(d, b)| drop(d, b))
            .copied()
            .collect();
        for key in doomed_inflight {
            st.stale.insert(key);
        }
        let doomed: Vec<(usize, u64)> = st
            .map
            .keys()
            .filter(|&&(d, b)| drop(d, b))
            .copied()
            .collect();
        for key in doomed {
            // invariant: keys were collected from the map under this lock.
            let idx = st.map.remove(&key).expect("collected key");
            st.slots[idx].key = None;
            st.slots[idx].dirty = false;
            st.slots[idx].referenced = false;
            st.free.push(idx);
            st.stats.invalidations += 1;
        }
        let doomed_spill: Vec<(usize, u64)> = st
            .spilled
            .keys()
            .filter(|&&(d, b)| drop(d, b))
            .copied()
            .collect();
        for key in doomed_spill {
            // invariant: keys were collected from the spill map under this lock.
            let sslot = st.spilled.remove(&key).expect("collected key");
            st.spill_free.push(sslot);
            st.stats.invalidations += 1;
        }
    }
}

/// Where a dirty block's bytes came from during a flush.
#[derive(Copy, Clone)]
enum Origin {
    Frame(usize),
    Spill(u64),
}

impl CacheReadTicket {
    /// Complete the read: wait every miss run's executor ticket, install
    /// the fetched blocks as clean frames (skipping keys a racing writer
    /// made resident — their copy is newer — and keys a write or
    /// invalidation poisoned while the fetch was in flight — the fetched
    /// bytes predate the mutation), and return the assembled bytes.
    /// Install failures (an eviction writeback error) do not fail the
    /// read; the affected blocks are simply not cached.
    pub fn wait(mut self, cache: &VolumeCache) -> Result<Box<[u8]>> {
        let bs = cache.block_size;
        let mut filled: Vec<(u64, u64, Box<[u8]>)> = Vec::new();
        let mut failed: Vec<(u64, u64)> = Vec::new();
        let mut err = self.err.take();
        for (off, start, n, t) in self.pending {
            match t.wait() {
                Ok(data) => {
                    self.out[off..off + data.len()].copy_from_slice(&data);
                    filled.push((start, n, data));
                }
                Err(e) => {
                    failed.push((start, n));
                    err.get_or_insert(e);
                }
            }
        }
        let mut st = cache.frames.lock();
        let mut install_failed = false;
        for (start, n, data) in filled {
            for j in 0..n {
                let key = (self.dev, start + j);
                let fresh = VolumeCache::retire_inflight(&mut st, key);
                if !fresh
                    || install_failed
                    || st.map.contains_key(&key)
                    || st.spilled.contains_key(&key)
                {
                    continue;
                }
                let chunk = &data[j as usize * bs..(j as usize + 1) * bs];
                if cache.install(&mut st, key, chunk, false).is_err() {
                    install_failed = true;
                }
            }
        }
        // Failed runs still held in-flight references.
        for (start, n) in failed {
            for j in 0..n {
                VolumeCache::retire_inflight(&mut st, (self.dev, start + j));
            }
        }
        drop(st);
        match err {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }
}

impl CacheWriteTicket {
    /// Complete the write. A failed write-through invalidates every
    /// covered frame first: the media's (possibly torn) contents are
    /// what subsequent reads must see.
    pub fn wait(self, cache: &VolumeCache) -> Result<()> {
        let Some(t) = self.pending else {
            return Ok(());
        };
        match t.wait() {
            Ok(_) => Ok(()),
            Err(e) => {
                cache.invalidate_range(self.dev, self.block, self.count);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_disk::mem_array;
    use std::sync::Arc;

    const BS: usize = 64;

    fn devs(n: usize) -> Vec<DeviceRef> {
        mem_array(n, 64, BS)
    }

    fn cache(frames: usize, policy: WritePolicy) -> (VolumeCache, Vec<DeviceRef>) {
        let d = devs(2);
        let cfg = VolumeCacheConfig {
            frames,
            policy,
            spill: None,
        };
        (VolumeCache::new(d.clone(), cfg), d)
    }

    #[test]
    fn read_through_caches_and_hits() {
        let (c, d) = cache(8, WritePolicy::WriteThrough);
        d[0].write_block(3, &[7u8; BS]).unwrap();
        let before = d[0].counters().reads;
        let mut buf = [0u8; BS];
        c.read_block(0, 3, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
        c.read_block(0, 3, &mut buf).unwrap();
        assert_eq!(d[0].counters().reads, before + 1, "second read is a hit");
        let s = c.stats();
        assert_eq!((s.base.hits, s.base.misses), (1, 1));
    }

    #[test]
    fn adjacent_misses_coalesce_into_one_request() {
        let (c, d) = cache(16, WritePolicy::WriteThrough);
        for b in 0..8u64 {
            d[0].write_block(b, &[b as u8; BS]).unwrap();
        }
        let before = d[0].counters();
        let mut out = vec![0u8; 8 * BS];
        c.read_blocks(0, 0, &mut out).unwrap();
        for b in 0..8 {
            assert_eq!(out[b * BS], b as u8);
        }
        let after = d[0].counters();
        assert_eq!(after.reads - before.reads, 1, "one vectored request");
        assert_eq!(after.blocks_read - before.blocks_read, 8);
        assert_eq!(c.stats().coalesced_reads, 7);
    }

    #[test]
    fn misses_between_hits_split_into_runs() {
        let (c, d) = cache(16, WritePolicy::WriteThrough);
        let mut buf = [0u8; BS];
        c.read_block(0, 3, &mut buf).unwrap(); // make block 3 a hit
        let before = d[0].counters().reads;
        let mut out = vec![0u8; 6 * BS];
        c.read_blocks(0, 1, &mut out).unwrap(); // blocks 1..7: 3 resident
        assert_eq!(
            d[0].counters().reads - before,
            2,
            "runs [1,2] and [4,5,6] each fetch vectored"
        );
    }

    #[test]
    fn write_back_defers_and_flush_coalesces() {
        let (c, d) = cache(8, WritePolicy::WriteBack);
        for b in 0..4u64 {
            c.write_block(0, b, &[b as u8 + 1; BS]).unwrap();
        }
        let mut buf = vec![0u8; BS];
        d[0].read_block(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0), "nothing on media yet");
        let before = d[0].counters();
        c.flush().unwrap();
        let after = d[0].counters();
        assert_eq!(after.writes - before.writes, 1, "one coalesced writeback");
        assert_eq!(after.blocks_written - before.blocks_written, 4);
        d[0].read_block(2, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 3));
        let s = c.stats();
        assert_eq!(s.base.writebacks, 4);
        assert_eq!(s.coalesced_writes, 3);
        // Second flush writes nothing.
        c.flush().unwrap();
        assert_eq!(c.stats().base.writebacks, 4);
    }

    #[test]
    fn eviction_writes_dirty_neighbors_as_one_run() {
        let d = devs(1);
        let c = VolumeCache::new(
            d.clone(),
            VolumeCacheConfig {
                frames: 4,
                policy: WritePolicy::WriteBack,
                spill: None,
            },
        );
        for b in 0..4u64 {
            c.write_block(0, b, &[9u8; BS]).unwrap();
        }
        let before = d[0].counters();
        // Fifth distinct block forces an eviction; the victim's whole
        // dirty neighborhood goes home as one vectored write.
        c.write_block(0, 10, &[1u8; BS]).unwrap();
        let after = d[0].counters();
        assert_eq!(after.writes - before.writes, 1);
        assert_eq!(after.blocks_written - before.blocks_written, 4);
        assert!(c.stats().coalesced_writes >= 3);
    }

    #[test]
    fn spill_absorbs_dirty_overflow_without_home_writes() {
        let d = devs(1);
        let scratch = pario_disk::MemDisk::named("scratch", 64, BS);
        let scratch: DeviceRef = Arc::new(scratch);
        let c = VolumeCache::new(
            d.clone(),
            VolumeCacheConfig {
                frames: 4,
                policy: WritePolicy::WriteBack,
                spill: Some(Arc::clone(&scratch)),
            },
        );
        let before = d[0].counters().writes;
        for b in 0..16u64 {
            c.write_block(0, b, &[b as u8 + 1; BS]).unwrap();
        }
        assert_eq!(
            d[0].counters().writes - before,
            0,
            "spill keeps the home device untouched"
        );
        let s = c.stats();
        assert_eq!(s.spills, 12, "12 dirty frames overflowed");
        assert_eq!(c.spilled_blocks(), 12);
        // Reads see the newest data wherever it lives.
        let mut buf = [0u8; BS];
        for b in 0..16u64 {
            c.read_block(0, b, &mut buf).unwrap();
            assert_eq!(buf[0], b as u8 + 1, "block {b}");
        }
        assert!(c.stats().spill_loads > 0);
        // Flush drains everything home and frees the scratch slots.
        c.flush().unwrap();
        assert_eq!(c.spilled_blocks(), 0);
        for b in 0..16u64 {
            d[0].read_block(b, &mut buf).unwrap();
            assert_eq!(buf[0], b as u8 + 1, "block {b} on media");
        }
    }

    #[test]
    fn write_through_error_invalidates_frames() {
        use pario_disk::{FaultDevice, FaultPlan};
        let inner: DeviceRef = Arc::new(pario_disk::MemDisk::new(64, BS));
        let (handle, dev) = FaultDevice::wrap(
            Arc::clone(&inner),
            FaultPlan {
                torn_write_rate: 1.0,
                ..FaultPlan::default()
            },
        );
        let c = VolumeCache::new(vec![Arc::clone(&dev)], VolumeCacheConfig::write_through(8));
        // Warm both blocks so frames exist.
        let mut buf = [0u8; BS];
        c.read_block(0, 0, &mut buf).unwrap();
        c.read_block(0, 1, &mut buf).unwrap();
        assert_eq!(c.len(), 2);
        // A torn 2-block write errors; the cache must not keep the
        // intended bytes around.
        assert!(c.write_blocks(0, 0, &[5u8; 2 * BS]).is_err());
        assert_eq!(handle.counts().torn_writes, 1);
        // Reads now reflect media exactly: block 0 landed, block 1 did not.
        c.read_block(0, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 5, "prefix landed");
        c.read_block(0, 1, &mut buf).unwrap();
        assert_eq!(buf[0], 0, "torn tail never landed");
        let mut media = [0u8; BS];
        inner.read_block(1, &mut media).unwrap();
        assert_eq!(buf, media, "cache agrees with media");
    }

    #[test]
    fn invalidate_range_and_drop_device() {
        let (c, _d) = cache(8, WritePolicy::WriteBack);
        c.write_block(0, 0, &[1u8; BS]).unwrap();
        c.write_block(0, 1, &[2u8; BS]).unwrap();
        c.write_block(1, 0, &[3u8; BS]).unwrap();
        c.invalidate_range(0, 1, 1);
        assert_eq!(c.len(), 2);
        c.drop_device(0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().invalidations, 2);
        let mut buf = [0u8; BS];
        c.read_block(1, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 3, "other device untouched");
    }

    #[test]
    fn update_read_modify_write_round_trips() {
        let (c, d) = cache(4, WritePolicy::WriteBack);
        d[0].write_block(0, &[1u8; BS]).unwrap();
        c.update(0, 0, |b| b[10] = 99).unwrap();
        let mut buf = [0u8; BS];
        c.read_block(0, 0, &mut buf).unwrap();
        assert_eq!((buf[0], buf[10]), (1, 99));
        c.flush().unwrap();
        d[0].read_block(0, &mut buf).unwrap();
        assert_eq!(buf[10], 99);
    }

    #[test]
    fn frame_budget_is_drawn_from_the_pool() {
        let (c, _d) = cache(6, WritePolicy::WriteThrough);
        assert_eq!(c.frame_budget(), 6);
        assert_eq!(c.pool().capacity(), 6);
        assert_eq!(c.pool().available(), 0, "budget fully drained");
    }

    #[test]
    fn concurrent_updates_are_atomic() {
        let d = devs(1);
        let c = Arc::new(VolumeCache::new(d, VolumeCacheConfig::write_back(4)));
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move |_| {
                    for _ in 0..100 {
                        c.update(0, 0, |b| {
                            let v = u64::from_le_bytes(b[0..8].try_into().unwrap());
                            b[0..8].copy_from_slice(&(v + 1).to_le_bytes());
                        })
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let mut buf = [0u8; BS];
        c.read_block(0, 0, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf[0..8].try_into().unwrap()), 800);
    }

    #[test]
    fn inflight_read_never_installs_stale_bytes() {
        // The executor-device race, deterministically: a miss fetch is
        // submitted, the block is mutated before the ticket is waited,
        // and the late install must be skipped — a hit afterwards has
        // to serve the *new* bytes, never the fetched old ones.
        let (c, d) = cache(8, WritePolicy::WriteThrough);
        d[0].write_block(0, &[1u8; BS]).unwrap();
        let t = c.submit_read(0, 0, 1);
        c.write_block(0, 0, &[2u8; BS]).unwrap();
        // The read was ordered before the write; old bytes are a legal
        // return value. They just must not become a clean frame.
        let got = t.wait(&c).unwrap();
        assert_eq!(got[0], 1, "fetch predates the write");
        let mut buf = [0u8; BS];
        c.read_block(0, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 2, "stale install must not mask the write");

        // Same shape against invalidation after a raw media write.
        let t = c.submit_read(0, 5, 1);
        d[0].write_block(5, &[9u8; BS]).unwrap();
        c.invalidate_range(0, 5, 1);
        t.wait(&c).unwrap();
        c.read_block(0, 5, &mut buf).unwrap();
        assert_eq!(buf[0], 9, "invalidation poisons the in-flight fetch");
        assert!(c.frames.lock().inflight.is_empty(), "refs fully retired");
    }

    #[test]
    fn clock_eviction_keeps_recently_referenced_frames() {
        let d = devs(1);
        let c = VolumeCache::new(d, VolumeCacheConfig::write_through(2));
        let mut buf = [0u8; BS];
        c.read_block(0, 1, &mut buf).unwrap();
        c.read_block(0, 2, &mut buf).unwrap();
        c.read_block(0, 1, &mut buf).unwrap(); // re-reference 1
        c.read_block(0, 3, &mut buf).unwrap(); // evicts one of {1,2}
        c.read_block(0, 1, &mut buf).unwrap();
        let s = c.stats();
        assert!(s.base.evictions >= 1);
        assert!(s.base.hits >= 2, "referenced frame survived: {s:?}");
    }
}
