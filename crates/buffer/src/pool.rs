//! A fixed pool of reusable block buffers.
//!
//! The paper observes that "buffering overheads can be a significant factor
//! in limiting speedups"; one avoidable overhead is allocating a fresh
//! buffer per I/O call. A [`BufferPool`] holds a fixed set of block-sized
//! buffers handed out as RAII guards; `acquire` blocks when the pool is
//! drained, which also provides natural back-pressure for pipelines.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use pario_check::{Condvar, LockLevel, Mutex};

struct Inner {
    free: Mutex<Vec<Box<[u8]>>>,
    available: Condvar,
    buf_size: usize,
    capacity: usize,
}

/// A shared, fixed-capacity pool of `buf_size`-byte buffers.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<Inner>,
}

/// A pooled buffer; returns itself to the pool on drop.
#[must_use = "the buffer returns to the pool when this handle drops"]
pub struct PoolBuf {
    data: Option<Box<[u8]>>,
    inner: Arc<Inner>,
}

impl BufferPool {
    /// A pool of `capacity` zeroed buffers of `buf_size` bytes each.
    pub fn new(capacity: usize, buf_size: usize) -> BufferPool {
        assert!(capacity > 0 && buf_size > 0);
        let free = (0..capacity)
            .map(|_| vec![0u8; buf_size].into_boxed_slice())
            .collect();
        BufferPool {
            inner: Arc::new(Inner {
                free: Mutex::new_named(free, LockLevel::BufferPool),
                available: Condvar::new(),
                buf_size,
                capacity,
            }),
        }
    }

    /// Buffer size in bytes.
    pub fn buf_size(&self) -> usize {
        self.inner.buf_size
    }

    /// Total buffers owned by the pool.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Buffers currently available without blocking.
    pub fn available(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Take a buffer, blocking until one is free.
    ///
    /// Buffer contents are whatever the previous user left; callers fill
    /// before reading.
    pub fn acquire(&self) -> PoolBuf {
        let mut free = self.inner.free.lock();
        while free.is_empty() {
            self.inner.available.wait(&mut free);
        }
        PoolBuf {
            data: free.pop(),
            inner: Arc::clone(&self.inner),
        }
    }

    /// Take a buffer if one is free right now.
    pub fn try_acquire(&self) -> Option<PoolBuf> {
        let mut free = self.inner.free.lock();
        free.pop().map(|b| PoolBuf {
            data: Some(b),
            inner: Arc::clone(&self.inner),
        })
    }
}

impl Deref for PoolBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        // invariant: data is Some until Drop takes it.
        self.data.as_ref().expect("buffer present until drop")
    }
}

impl DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        // invariant: data is Some until Drop takes it.
        self.data.as_mut().expect("buffer present until drop")
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let Some(b) = self.data.take() {
            self.inner.free.lock().push(b);
            self.inner.available.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn acquire_release_cycle() {
        let pool = BufferPool::new(2, 64);
        assert_eq!(pool.available(), 2);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(a.len(), 64);
        assert_eq!(pool.available(), 0);
        assert!(pool.try_acquire().is_none());
        drop(a);
        assert_eq!(pool.available(), 1);
        drop(b);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn buffers_are_writable() {
        let pool = BufferPool::new(1, 16);
        let mut b = pool.acquire();
        b[0] = 0xFF;
        b[15] = 0x01;
        assert_eq!(b[0], 0xFF);
        drop(b);
        // Reuse sees prior contents (pool does not re-zero).
        let b = pool.acquire();
        assert_eq!(b[0], 0xFF);
    }

    #[test]
    fn blocked_acquire_wakes_on_release() {
        let pool = BufferPool::new(1, 8);
        let held = pool.acquire();
        let p2 = pool.clone();
        let waiter = std::thread::spawn(move || {
            let b = p2.acquire();
            b.len()
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "waiter should block on empty pool");
        drop(held);
        assert_eq!(waiter.join().unwrap(), 8);
    }
}
