//! Read-ahead and write-behind pipelines on dedicated I/O threads.
//!
//! For the sequential organizations "the order of accesses is predictable,
//! [so] reading ahead and deferred writing can be used to overlap I/O
//! operations with computation" (§4). Each pipeline owns a dedicated I/O
//! thread (the paper's "dedicated I/O processors") and a fixed ring of
//! `nbufs` buffers; `nbufs == 1` degenerates to strictly synchronous
//! single buffering, `nbufs == 2` is classic double buffering, and larger
//! values absorb burstier compute phases — exactly the knob experiment E8
//! sweeps.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};

use pario_disk::{DeviceRef, DiskError, Result};

/// Prefetches a fixed sequence of blocks from one device.
pub struct ReadAhead {
    full_rx: Receiver<Result<(u64, Box<[u8]>)>>,
    empty_tx: Option<Sender<Box<[u8]>>>,
    io_thread: Option<JoinHandle<()>>,
}

impl ReadAhead {
    /// Start prefetching `blocks` (in order) from `device` using `nbufs`
    /// buffers.
    pub fn new(device: DeviceRef, blocks: Vec<u64>, nbufs: usize) -> ReadAhead {
        assert!(nbufs >= 1, "need at least one buffer");
        let bs = device.block_size();
        let (empty_tx, empty_rx) = bounded::<Box<[u8]>>(nbufs);
        let (full_tx, full_rx) = bounded::<Result<(u64, Box<[u8]>)>>(nbufs);
        for _ in 0..nbufs {
            empty_tx.send(vec![0u8; bs].into_boxed_slice()).unwrap();
        }
        let io_thread = std::thread::Builder::new()
            .name("pario-readahead".into())
            .spawn(move || {
                for b in blocks {
                    // Stop if the consumer hung up.
                    let Ok(mut buf) = empty_rx.recv() else { return };
                    let res = device.read_block(b, &mut buf).map(|()| (b, buf));
                    let failed = res.is_err();
                    if full_tx.send(res).is_err() || failed {
                        return;
                    }
                }
            })
            .expect("spawn read-ahead thread");
        ReadAhead {
            full_rx,
            empty_tx: Some(empty_tx),
            io_thread: Some(io_thread),
        }
    }

    /// The next prefetched block, in sequence order: `(block, data)`.
    ///
    /// Returns `None` when the sequence is exhausted. The caller must hand
    /// the buffer back via [`recycle`](ReadAhead::recycle) (or drop the
    /// whole pipeline) — the pipeline stalls once all buffers are held.
    #[allow(clippy::should_implement_trait)] // deliberate: fallible, non-Iterator
    pub fn next(&mut self) -> Option<Result<(u64, Box<[u8]>)>> {
        self.full_rx.recv().ok()
    }

    /// Return a consumed buffer to the prefetcher.
    pub fn recycle(&self, buf: Box<[u8]>) {
        if let Some(tx) = &self.empty_tx {
            // Ignore a hung-up I/O thread (sequence finished).
            let _ = tx.send(buf);
        }
    }
}

impl Drop for ReadAhead {
    fn drop(&mut self) {
        // Unblock the I/O thread waiting for empty buffers, then join.
        self.empty_tx.take();
        if let Some(h) = self.io_thread.take() {
            // Drain anything in flight so the thread's sends don't block.
            while self.full_rx.try_recv().is_ok() {}
            let _ = h.join();
        }
    }
}

/// Defers writes to a dedicated flusher thread.
pub struct WriteBehind {
    submit_tx: Option<Sender<(u64, Box<[u8]>)>>,
    empty_rx: Receiver<Box<[u8]>>,
    io_thread: Option<JoinHandle<Result<u64>>>,
}

impl WriteBehind {
    /// Start a write-behind pipeline to `device` with `nbufs` buffers.
    pub fn new(device: DeviceRef, nbufs: usize) -> WriteBehind {
        assert!(nbufs >= 1, "need at least one buffer");
        let bs = device.block_size();
        let (empty_tx, empty_rx) = bounded::<Box<[u8]>>(nbufs);
        let (submit_tx, submit_rx) = bounded::<(u64, Box<[u8]>)>(nbufs);
        for _ in 0..nbufs {
            empty_tx.send(vec![0u8; bs].into_boxed_slice()).unwrap();
        }
        let io_thread = std::thread::Builder::new()
            .name("pario-writebehind".into())
            .spawn(move || -> Result<u64> {
                let mut written = 0;
                while let Ok((block, buf)) = submit_rx.recv() {
                    device.write_block(block, &buf)?;
                    written += 1;
                    // Consumer may have hung up; recycling is best-effort.
                    let _ = empty_tx.send(buf);
                }
                Ok(written)
            })
            .expect("spawn write-behind thread");
        WriteBehind {
            submit_tx: Some(submit_tx),
            empty_rx,
            io_thread: Some(io_thread),
        }
    }

    /// Take an empty buffer to fill (blocks while all buffers are in
    /// flight — the producer is throttled to the device's pace).
    pub fn buffer(&self) -> Box<[u8]> {
        self.empty_rx
            .recv()
            .expect("write-behind thread alive while handle held")
    }

    /// Queue `buf` for writing at `block`.
    pub fn submit(&self, block: u64, buf: Box<[u8]>) {
        self.submit_tx
            .as_ref()
            .expect("not finished")
            .send((block, buf))
            .expect("write-behind thread alive while handle held");
    }

    /// Wait for all deferred writes to hit the device; returns the count.
    pub fn finish(mut self) -> Result<u64> {
        self.submit_tx.take();
        // Unblock the flusher's buffer recycling before joining.
        while self.empty_rx.try_recv().is_ok() {}
        let handle = self.io_thread.take().expect("finish called once");
        handle
            .join()
            .map_err(|_| DiskError::Io("write-behind thread panicked".into()))?
    }
}

impl Drop for WriteBehind {
    fn drop(&mut self) {
        self.submit_tx.take();
        if let Some(h) = self.io_thread.take() {
            while self.empty_rx.try_recv().is_ok() {}
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_disk::{mem_array, BlockDevice, MemDisk};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn readahead_delivers_in_order() {
        let devs = mem_array(1, 16, 32);
        for b in 0..16u64 {
            devs[0].write_block(b, &[b as u8; 32]).unwrap();
        }
        let blocks: Vec<u64> = (0..16).rev().collect();
        let mut ra = ReadAhead::new(devs[0].clone(), blocks.clone(), 3);
        let mut seen = Vec::new();
        while let Some(res) = ra.next() {
            let (b, buf) = res.unwrap();
            assert!(buf.iter().all(|&x| x == b as u8));
            seen.push(b);
            ra.recycle(buf);
        }
        assert_eq!(seen, blocks);
    }

    #[test]
    fn readahead_propagates_device_failure() {
        let dev = Arc::new(MemDisk::new(8, 32));
        dev.fail();
        let mut ra = ReadAhead::new(dev, vec![0, 1], 2);
        assert!(ra.next().unwrap().is_err());
        assert!(ra.next().is_none(), "pipeline stops after an error");
    }

    #[test]
    fn readahead_drop_midstream_does_not_hang() {
        let devs = mem_array(1, 64, 32);
        let mut ra = ReadAhead::new(devs[0].clone(), (0..64).collect(), 2);
        let (_, buf) = ra.next().unwrap().unwrap();
        ra.recycle(buf);
        drop(ra); // must join cleanly with 62 blocks unread
    }

    #[test]
    fn writebehind_persists_all_blocks() {
        let devs = mem_array(1, 16, 32);
        let wb = WriteBehind::new(devs[0].clone(), 2);
        for b in 0..10u64 {
            let mut buf = wb.buffer();
            buf.fill(b as u8 + 1);
            wb.submit(b, buf);
        }
        assert_eq!(wb.finish().unwrap(), 10);
        let mut buf = vec![0u8; 32];
        for b in 0..10u64 {
            devs[0].read_block(b, &mut buf).unwrap();
            assert!(buf.iter().all(|&x| x == b as u8 + 1), "block {b}");
        }
    }

    #[test]
    fn writebehind_reports_device_failure() {
        let mem = Arc::new(MemDisk::new(8, 32));
        mem.fail();
        let wb = WriteBehind::new(mem.clone() as DeviceRef, 2);
        let buf = wb.buffer();
        wb.submit(0, buf);
        assert!(wb.finish().is_err());
    }

    #[test]
    fn double_buffering_overlaps_io_with_compute() {
        // Device service 2ms/block (slept — the I/O thread yields, as a
        // thread blocked on a real device would), compute 2ms/block
        // (spun), 12 blocks. Single buffering serialises (~48ms); double
        // buffering overlaps (~26ms). Works even on one core because the
        // sleeping I/O thread does not occupy the CPU.
        let compute = Duration::from_millis(2);
        let run = |nbufs: usize| {
            let dev =
                Arc::new(MemDisk::new(12, 1024).with_delay(Duration::from_millis(2))) as DeviceRef;
            let mut ra = ReadAhead::new(dev, (0..12).collect(), nbufs);
            let t0 = Instant::now();
            let mut sum = 0u64;
            while let Some(res) = ra.next() {
                let (_, buf) = res.unwrap();
                let end = Instant::now() + compute;
                while Instant::now() < end {
                    std::hint::spin_loop();
                }
                sum += u64::from(buf[0]);
                ra.recycle(buf);
            }
            let _ = sum;
            t0.elapsed()
        };
        let single = run(1);
        let double = run(2);
        assert!(
            double < single * 8 / 10,
            "double buffering {double:?} not clearly faster than single {single:?}"
        );
    }
}
