//! Read-ahead and write-behind pipelines over the I/O executor.
//!
//! For the sequential organizations "the order of accesses is predictable,
//! [so] reading ahead and deferred writing can be used to overlap I/O
//! operations with computation" (§4). Each pipeline keeps a fixed ring of
//! `nbufs` buffers in flight as asynchronous submissions to the device's
//! [`IoNode`] worker (the paper's "dedicated I/O processors"); `nbufs == 1`
//! degenerates to strictly synchronous single buffering, `nbufs == 2` is
//! classic double buffering, and larger values absorb burstier compute
//! phases — exactly the knob experiment E8 sweeps.
//!
//! A device already fronted by an I/O node (e.g. a volume's executor
//! handle) is used as-is, so pipelines share the volume's worker and its
//! scheduling policy; a plain device is wrapped in a private node.

use std::collections::VecDeque;

use parking_lot::Mutex;

use pario_disk::{DeviceRef, DiskError, IoNode, Result, Ticket};

/// Route `device` through an I/O node: reuse an existing executor handle,
/// or front a plain device with a private worker.
fn executor(device: DeviceRef) -> DeviceRef {
    if device.ionode_stats().is_some() {
        device
    } else {
        IoNode::spawn(device).device()
    }
}

/// Prefetches a fixed sequence of blocks from one device.
pub struct ReadAhead {
    dev: DeviceRef,
    /// Blocks not yet submitted, in delivery order.
    blocks: VecDeque<u64>,
    /// Submitted but not yet delivered, in delivery order.
    window: VecDeque<(u64, Ticket<Box<[u8]>>)>,
    /// Idle buffers, each one volume block.
    free: Mutex<Vec<Box<[u8]>>>,
    failed: bool,
}

impl ReadAhead {
    /// Start prefetching `blocks` (in order) from `device` using `nbufs`
    /// buffers.
    pub fn new(device: DeviceRef, blocks: Vec<u64>, nbufs: usize) -> ReadAhead {
        assert!(nbufs >= 1, "need at least one buffer");
        let bs = device.block_size();
        let mut ra = ReadAhead {
            dev: executor(device),
            blocks: blocks.into(),
            window: VecDeque::with_capacity(nbufs),
            free: Mutex::new(
                (0..nbufs)
                    .map(|_| vec![0u8; bs].into_boxed_slice())
                    .collect(),
            ),
            failed: false,
        };
        ra.fill();
        ra
    }

    /// Submit reads for as many upcoming blocks as there are idle buffers.
    fn fill(&mut self) {
        if self.failed {
            return;
        }
        let mut free = self.free.lock();
        while let Some(&b) = self.blocks.front() {
            let Some(buf) = free.pop() else { break };
            self.blocks.pop_front();
            self.window
                .push_back((b, self.dev.submit_read_blocks(b, buf)));
        }
    }

    /// The next prefetched block, in sequence order: `(block, data)`.
    ///
    /// Returns `None` when the sequence is exhausted, or after an error has
    /// been delivered. The caller must hand the buffer back via
    /// [`recycle`](ReadAhead::recycle) (or drop the whole pipeline) — the
    /// pipeline stalls once all buffers are held.
    #[allow(clippy::should_implement_trait)] // deliberate: fallible, non-Iterator
    pub fn next(&mut self) -> Option<Result<(u64, Box<[u8]>)>> {
        // Top up the window first so the worker stays busy while the
        // caller computes on the block we are about to deliver.
        self.fill();
        let (b, t) = self.window.pop_front()?;
        match t.wait() {
            Ok(buf) => Some(Ok((b, buf))),
            Err(e) => {
                // Abandon the rest of the sequence; in-flight tickets are
                // dropped and the worker completes them unobserved.
                self.failed = true;
                self.blocks.clear();
                self.window.clear();
                Some(Err(e))
            }
        }
    }

    /// Return a consumed buffer to the prefetcher.
    pub fn recycle(&self, buf: Box<[u8]>) {
        self.free.lock().push(buf);
    }
}

struct WbState {
    /// Idle buffers, each one volume block.
    free: Vec<Box<[u8]>>,
    /// Submitted writes not yet confirmed, oldest first.
    inflight: VecDeque<Ticket<Box<[u8]>>>,
    written: u64,
    first_err: Option<DiskError>,
}

impl WbState {
    fn reap(&mut self, t: Ticket<Box<[u8]>>) -> Option<Box<[u8]>> {
        match t.wait() {
            Ok(buf) => {
                self.written += 1;
                Some(buf)
            }
            Err(e) => {
                if self.first_err.is_none() {
                    self.first_err = Some(e);
                }
                None
            }
        }
    }
}

/// Defers writes as asynchronous submissions to the device's I/O node.
pub struct WriteBehind {
    dev: DeviceRef,
    block_size: usize,
    state: Mutex<WbState>,
}

impl WriteBehind {
    /// Start a write-behind pipeline to `device` with `nbufs` buffers.
    pub fn new(device: DeviceRef, nbufs: usize) -> WriteBehind {
        assert!(nbufs >= 1, "need at least one buffer");
        let bs = device.block_size();
        WriteBehind {
            dev: executor(device),
            block_size: bs,
            state: Mutex::new(WbState {
                free: (0..nbufs)
                    .map(|_| vec![0u8; bs].into_boxed_slice())
                    .collect(),
                inflight: VecDeque::with_capacity(nbufs),
                written: 0,
                first_err: None,
            }),
        }
    }

    /// Take an empty buffer to fill (waits for the oldest in-flight write
    /// while all buffers are busy — the producer is throttled to the
    /// device's pace).
    pub fn buffer(&self) -> Box<[u8]> {
        let mut st = self.state.lock();
        if let Some(buf) = st.free.pop() {
            return buf;
        }
        let t = st
            .inflight
            .pop_front()
            // invariant: API contract — callers submit before requesting another.
            .expect("no idle buffers and nothing in flight — submit before requesting another");
        // A failed write surrenders its buffer to the error path; mint a
        // replacement so the ring keeps its size.
        st.reap(t)
            .unwrap_or_else(|| vec![0u8; self.block_size].into_boxed_slice())
    }

    /// Queue `buf` for writing at `block`.
    pub fn submit(&self, block: u64, buf: Box<[u8]>) {
        let t = self.dev.submit_write_blocks(block, buf);
        self.state.lock().inflight.push_back(t);
    }

    /// Wait for all deferred writes to hit the device; returns the count.
    pub fn finish(mut self) -> Result<u64> {
        let st = self.state.get_mut();
        while let Some(t) = st.inflight.pop_front() {
            st.reap(t);
        }
        match st.first_err.take() {
            Some(e) => Err(e),
            None => Ok(st.written),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pario_disk::{mem_array, BlockDevice, MemDisk};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn readahead_delivers_in_order() {
        let devs = mem_array(1, 16, 32);
        for b in 0..16u64 {
            devs[0].write_block(b, &[b as u8; 32]).unwrap();
        }
        let blocks: Vec<u64> = (0..16).rev().collect();
        let mut ra = ReadAhead::new(devs[0].clone(), blocks.clone(), 3);
        let mut seen = Vec::new();
        while let Some(res) = ra.next() {
            let (b, buf) = res.unwrap();
            assert!(buf.iter().all(|&x| x == b as u8));
            seen.push(b);
            ra.recycle(buf);
        }
        assert_eq!(seen, blocks);
    }

    #[test]
    fn readahead_propagates_device_failure() {
        let dev = Arc::new(MemDisk::new(8, 32));
        dev.fail();
        let mut ra = ReadAhead::new(dev, vec![0, 1], 2);
        assert!(ra.next().unwrap().is_err());
        assert!(ra.next().is_none(), "pipeline stops after an error");
    }

    #[test]
    fn readahead_drop_midstream_does_not_hang() {
        let devs = mem_array(1, 64, 32);
        let mut ra = ReadAhead::new(devs[0].clone(), (0..64).collect(), 2);
        let (_, buf) = ra.next().unwrap().unwrap();
        ra.recycle(buf);
        drop(ra); // the worker completes in-flight reads unobserved
    }

    #[test]
    fn writebehind_persists_all_blocks() {
        let devs = mem_array(1, 16, 32);
        let wb = WriteBehind::new(devs[0].clone(), 2);
        for b in 0..10u64 {
            let mut buf = wb.buffer();
            buf.fill(b as u8 + 1);
            wb.submit(b, buf);
        }
        assert_eq!(wb.finish().unwrap(), 10);
        let mut buf = vec![0u8; 32];
        for b in 0..10u64 {
            devs[0].read_block(b, &mut buf).unwrap();
            assert!(buf.iter().all(|&x| x == b as u8 + 1), "block {b}");
        }
    }

    #[test]
    fn writebehind_reports_device_failure() {
        let mem = Arc::new(MemDisk::new(8, 32));
        mem.fail();
        let wb = WriteBehind::new(mem.clone() as DeviceRef, 2);
        let buf = wb.buffer();
        wb.submit(0, buf);
        assert!(wb.finish().is_err());
    }

    #[test]
    fn writebehind_throttles_but_keeps_ring_size_after_error() {
        // Every write fails; the producer must still be able to obtain a
        // buffer per iteration, and finish reports the first error.
        let mem = Arc::new(MemDisk::new(8, 32));
        mem.fail();
        let wb = WriteBehind::new(mem.clone() as DeviceRef, 2);
        for b in 0..6u64 {
            let buf = wb.buffer();
            wb.submit(b, buf);
        }
        assert!(wb.finish().is_err());
    }

    #[test]
    fn double_buffering_overlaps_io_with_compute() {
        // Device service 2ms/block (slept — the I/O worker yields, as a
        // thread blocked on a real device would), compute 2ms/block
        // (spun), 12 blocks. Single buffering serialises (~48ms); double
        // buffering overlaps (~26ms). Works even on one core because the
        // sleeping I/O worker does not occupy the CPU.
        let compute = Duration::from_millis(2);
        let run = |nbufs: usize| {
            let dev =
                Arc::new(MemDisk::new(12, 1024).with_delay(Duration::from_millis(2))) as DeviceRef;
            let mut ra = ReadAhead::new(dev, (0..12).collect(), nbufs);
            let t0 = Instant::now();
            let mut sum = 0u64;
            while let Some(res) = ra.next() {
                let (_, buf) = res.unwrap();
                let end = Instant::now() + compute;
                while Instant::now() < end {
                    std::hint::spin_loop();
                }
                sum += u64::from(buf[0]);
                ra.recycle(buf);
            }
            let _ = sum;
            t0.elapsed()
        };
        let single = run(1);
        let double = run(2);
        assert!(
            double < single * 8 / 10,
            "double buffering {double:?} not clearly faster than single {single:?}"
        );
    }
}
