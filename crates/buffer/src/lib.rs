//! # pario-buffer — buffering for parallel files
//!
//! "Just as important as the layout of data on disks is the development of
//! appropriate buffering techniques and I/O software" (Crockett 1989, §4).
//! This crate is that software layer:
//!
//! * [`BufferPool`] — a fixed pool of reusable block buffers with RAII
//!   guards and back-pressure.
//! * [`VolumeCache`] — the volume-wide shared block cache tier in front
//!   of the executor bank: CLOCK eviction over a fixed frame budget,
//!   read-through miss coalescing, write-behind run coalescing, and a
//!   scratch-device spill path for dirty overflow.
//! * [`CacheStats`] / [`WritePolicy`] — the cache traffic counters and
//!   the write-through/write-back policy knob [`VolumeCache`] reports
//!   and takes.
//! * [`ReadAhead`] / [`WriteBehind`] — multiple-buffering pipelines
//!   submitting to per-device I/O-executor workers, overlapping
//!   predictable sequential I/O with computation; the buffer count is
//!   the single/double/multi-buffering knob experiment E8 sweeps.
//!
//! ```
//! use pario_buffer::ReadAhead;
//! use pario_disk::{mem_array, BlockDevice};
//!
//! let dev = mem_array(1, 16, 512).pop().unwrap();
//! dev.write_block(3, &[9u8; 512]).unwrap();
//! // Prefetch blocks 0..8 with double buffering.
//! let mut ra = ReadAhead::new(dev, (0..8).collect(), 2);
//! let mut sum = 0u32;
//! while let Some(res) = ra.next() {
//!     let (block, buf) = res.unwrap();
//!     sum += u32::from(buf[0]);
//!     assert!(block < 8);
//!     ra.recycle(buf);
//! }
//! assert_eq!(sum, 9);
//! ```

#![warn(missing_docs)]

mod cache;
mod pipeline;
mod pool;
mod volume_cache;

pub use cache::{CacheStats, WritePolicy};
pub use pipeline::{ReadAhead, WriteBehind};
pub use pool::{BufferPool, PoolBuf};
pub use volume_cache::{
    CacheReadTicket, CacheWriteTicket, VolumeCache, VolumeCacheConfig, VolumeCacheStats,
};
