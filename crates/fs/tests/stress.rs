//! Stress and property tests for the volume layer: concurrent growth,
//! allocator churn, and metadata round trips under arbitrary file
//! populations.

use proptest::prelude::*;

use pario_disk::mem_array;
use pario_fs::{FileSpec, Volume, VolumeConfig};
use pario_layout::LayoutSpec;

const BS: usize = 256;

fn vol() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 4096,
        block_size: BS,
    })
    .unwrap()
}

#[test]
fn concurrent_growth_of_one_file() {
    // Threads write ever-further records; growth (allocation) races with
    // reads and other writers without tearing.
    let v = vol();
    let f = v
        .create_file(FileSpec::new(
            "grow",
            BS,
            1,
            LayoutSpec::Striped {
                devices: 4,
                unit: 2,
            },
        ))
        .unwrap();
    crossbeam::thread::scope(|s| {
        for t in 0..6u64 {
            let f = f.clone();
            s.spawn(move |_| {
                for k in 0..50u64 {
                    let i = t + k * 6;
                    f.write_record(i, &vec![(i % 250) as u8 + 1; BS]).unwrap();
                }
            });
        }
    })
    .unwrap();
    assert_eq!(f.len_records(), 300);
    let mut buf = vec![0u8; BS];
    for i in 0..300u64 {
        f.read_record(i, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == (i % 250) as u8 + 1),
            "record {i} torn"
        );
    }
}

#[test]
fn concurrent_file_creation_and_removal() {
    let v = vol();
    let baseline: u64 = v.free_blocks().iter().sum();
    crossbeam::thread::scope(|s| {
        for t in 0..4 {
            let v = v.clone();
            s.spawn(move |_| {
                for round in 0..10 {
                    let name = format!("f-{t}-{round}");
                    let f = v
                        .create_file(
                            FileSpec::new(
                                &name,
                                BS,
                                1,
                                LayoutSpec::Striped {
                                    devices: 4,
                                    unit: 1,
                                },
                            )
                            .initial_records(32),
                        )
                        .unwrap();
                    f.write_record(0, &vec![t as u8 + 1; BS]).unwrap();
                    if round % 2 == 0 {
                        v.remove(&name).unwrap();
                    }
                }
            });
        }
    })
    .unwrap();
    // 4 threads x 5 surviving files each.
    assert_eq!(v.list().len(), 20);
    // All blocks released by removals are reusable: exactly the 20
    // surviving files' blocks are out of the free pool.
    let used: u64 = 20 * 32;
    let total_free: u64 = v.free_blocks().iter().sum();
    assert_eq!(total_free, baseline - used, "leaked blocks");
}

#[test]
fn concurrent_spans_match_serial_reference() {
    // Eight threads each own a disjoint, block-aligned byte region of a
    // striped file and hammer it with unaligned span writes interleaved
    // with read-backs — all through the volume executor's async submit
    // path. Afterwards the parallel and serial read paths must agree
    // with the per-thread models on every byte.
    const THREADS: usize = 8;
    const REGION: usize = 6 * BS;
    let v = vol();
    let f = v
        .create_file(FileSpec::new(
            "spans",
            BS,
            1,
            LayoutSpec::Striped {
                devices: 4,
                unit: 1,
            },
        ))
        .unwrap();
    // Allocate the whole surface up front so growth does not race.
    f.write_span((THREADS * REGION - 1) as u64, &[0]).unwrap();
    let models = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let f = f.clone();
                s.spawn(move |_| {
                    let base = (t * REGION) as u64;
                    let mut model = vec![0u8; REGION];
                    for k in 0..60usize {
                        let len = 1 + (k * 91 + t * 13) % (2 * BS);
                        let off = (k * 137 + t * 29) % (REGION - len);
                        let byte = (t * 60 + k) as u8;
                        let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add(i as u8)).collect();
                        f.write_span(base + off as u64, &data).unwrap();
                        model[off..off + len].copy_from_slice(&data);
                        if k % 5 == 0 {
                            let mut got = vec![0u8; REGION];
                            f.read_span(base, &mut got).unwrap();
                            assert_eq!(got, model, "thread {t} round {k}");
                        }
                    }
                    model
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    })
    .unwrap();
    let expect: Vec<u8> = models.concat();
    let mut par = vec![0u8; THREADS * REGION];
    f.read_span(0, &mut par).unwrap();
    assert_eq!(par, expect, "parallel read path");
    let serial = f.clone().with_span_parallel(false);
    let mut ser = vec![0u8; THREADS * REGION];
    serial.read_span(0, &mut ser).unwrap();
    assert_eq!(ser, expect, "serial read path");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary populations of files survive a persistence round trip
    /// with identical metadata and content samples.
    #[test]
    fn persistence_round_trip_arbitrary_population(
        files in proptest::collection::vec(
            (1u64..40, 1u64..3, 0u8..3), 1..8
        ),
    ) {
        let devs = mem_array(3, 4096, BS);
        let expected: Vec<(String, u64)> = {
            let v = Volume::new(devs.clone()).unwrap();
            let mut expected = Vec::new();
            for (i, &(records, unit, kind)) in files.iter().enumerate() {
                let name = format!("file{i}");
                let layout = match kind {
                    0 => LayoutSpec::Striped { devices: 3, unit },
                    1 => LayoutSpec::Parity { data_devices: 2, rotated: true },
                    _ => LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                        devices: 1,
                        unit,
                    })),
                };
                let f = v.create_file(FileSpec::new(&name, BS, 1, layout)).unwrap();
                for r in 0..records {
                    f.write_record(r, &vec![(r + i as u64) as u8; BS]).unwrap();
                }
                expected.push((name, records));
            }
            v.sync_meta().unwrap();
            expected
        };
        let v2 = Volume::mount(devs).unwrap();
        prop_assert_eq!(v2.list().len(), expected.len());
        let mut buf = vec![0u8; BS];
        for (i, (name, records)) in expected.iter().enumerate() {
            let f = v2.open(name).unwrap();
            prop_assert_eq!(f.len_records(), *records);
            for r in 0..*records {
                f.read_record(r, &mut buf).unwrap();
                prop_assert!(
                    buf.iter().all(|&b| b == (r + i as u64) as u8),
                    "{} record {}", name, r
                );
            }
        }
    }

    /// Interleaved create/remove cycles never leak or double-allocate.
    #[test]
    fn allocator_churn(ops in proptest::collection::vec((0u8..2, 1u64..60), 1..40)) {
        let v = vol();
        let baseline: u64 = v.free_blocks().iter().sum();
        let mut live: Vec<(String, u64)> = Vec::new();
        let mut counter = 0;
        for (op, records) in ops {
            if op == 0 || live.is_empty() {
                let name = format!("n{counter}");
                counter += 1;
                if v.create_file(
                    FileSpec::new(&name, BS, 1, LayoutSpec::Striped { devices: 4, unit: 1 })
                        .initial_records(records),
                )
                .is_ok()
                {
                    live.push((name, records));
                }
            } else {
                let (name, _) = live.swap_remove(0);
                v.remove(&name).unwrap();
            }
        }
        let used: u64 = live.iter().map(|(_, r)| *r).sum();
        let free: u64 = v.free_blocks().iter().sum();
        prop_assert_eq!(free, baseline - used);
        // And every surviving file still reads (its blocks were never
        // handed to anyone else).
        let mut buf = vec![0u8; BS];
        for (name, records) in &live {
            let f = v.open(name).unwrap();
            f.read_span(0, &mut buf).unwrap();
            prop_assert!(*records == 0 || f.nblocks() >= 1);
        }
    }
}
