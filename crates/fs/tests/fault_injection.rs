//! Property test: the degraded-read fallback chain is correct under
//! injected faults. One device of a redundant layout runs an arbitrary
//! seeded fault schedule — transient errors, latency spikes, an optional
//! mid-workload fail-stop — and every span read must still return the
//! exact preloaded bytes, through executor retries, hedged reads, mirror
//! reroutes, and parity reconstruction.

use std::time::Duration;

use proptest::prelude::*;

use pario_disk::{mem_array, FaultDevice, FaultPlan};
use pario_fs::{FileSpec, HealthState, Volume};
use pario_layout::LayoutSpec;

const BS: usize = 256;
const CAP_BYTES: u64 = 32 * BS as u64;

fn layout_strategy() -> impl Strategy<Value = LayoutSpec> {
    prop_oneof![
        (2usize..=3, any::<bool>()).prop_map(|(data_devices, rotated)| LayoutSpec::Parity {
            data_devices,
            rotated
        }),
        (1usize..=2, 1u64..=3).prop_map(|(devices, unit)| LayoutSpec::Shadowed(Box::new(
            LayoutSpec::Striped { devices, unit }
        ))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn span_reads_survive_any_single_device_schedule(
        spec in layout_strategy(),
        seed in any::<u64>(),
        transient_rate in 0.0f64..0.5,
        spike_rate in 0.0f64..0.1,
        fail_after in (any::<bool>(), 0u64..40).prop_map(|(some, k)| some.then_some(k)),
        target_pick in 0usize..64,
        writes in proptest::collection::vec((0u64..CAP_BYTES, 1usize..1200, any::<u8>()), 1..6),
        reads in proptest::collection::vec((0u64..CAP_BYTES, 1usize..1200), 2..8),
    ) {
        // Wrap one layout slot's device in the fault schedule; the
        // default device map is the identity, so slot == device index.
        let target = target_pick % spec.devices_required();
        let mut devices = mem_array(6, 512, BS);
        let (fault, wrapped) = FaultDevice::wrap(devices[target].clone(), FaultPlan {
            seed,
            transient_rate,
            spike_rate,
            spike: Duration::from_micros(10),
            // Reads are never torn, but leave the knob live anyway.
            torn_write_rate: 0.2,
            fail_after,
            crash_after_writes: None,
            crash_torn: false,
        });
        devices[target] = wrapped;
        // Preload fault-free: the schedule applies to the read workload.
        fault.set_armed(false);
        let v = Volume::new(devices).unwrap();
        let f = v.create_file(FileSpec::new("f", 64, 4, spec)).unwrap();
        let serial = f.clone().with_span_parallel(false);

        let mut model: Vec<u8> = Vec::new();
        for &(off, len, tag) in &writes {
            let len = len.min((CAP_BYTES - off) as usize);
            let data: Vec<u8> = (0..len).map(|i| tag.wrapping_add(i as u8)).collect();
            f.write_span(off, &data).unwrap();
            let end = off as usize + len;
            if end > model.len() {
                model.resize(end, 0);
            }
            model[off as usize..end].copy_from_slice(&data);
        }

        fault.set_armed(true);
        for &(off, len) in &reads {
            let off = (off as usize).min(model.len().saturating_sub(1));
            let len = len.min(model.len() - off);
            let mut a = vec![0u8; len];
            f.read_span(off as u64, &mut a).unwrap();
            prop_assert_eq!(
                &a[..],
                &model[off..off + len],
                "parallel read at {}+{} (fault device {}, health {})",
                off, len, target, v.device_health(target)
            );
            let mut b = vec![0u8; len];
            serial.read_span(off as u64, &mut b).unwrap();
            prop_assert_eq!(
                &b[..],
                &model[off..off + len],
                "serial read at {}+{} (fault device {}, health {})",
                off, len, target, v.device_health(target)
            );
        }

        // The health board only ever walks legal edges, and a tripped
        // fail-stop is reflected as Failed once the workload touched it.
        let snap = v.health_snapshot();
        for h in &snap {
            for w in h.transitions.windows(2) {
                prop_assert!(
                    pario_fs::legal_transition(w[0], w[1]),
                    "illegal health transition {} -> {}", w[0], w[1]
                );
            }
        }
        if fault.counts().failed_ops > 0 {
            prop_assert_eq!(snap[target].state, HealthState::Failed);
        }
    }
}
