//! Property test: the coalesced (and parallel) span I/O path is
//! byte-identical to a simple in-memory reference across every layout
//! variant, at arbitrary unaligned offsets and lengths — including
//! degraded reads with one device failed mid-file for redundant layouts.

use proptest::prelude::*;

use pario_fs::{FileSpec, Volume, VolumeConfig};
use pario_layout::LayoutSpec;

const BS: usize = 256;
/// Keep every span inside the partitioned variant's fixed 32-block file.
const CAP_BYTES: u64 = 32 * BS as u64;

fn layout_strategy() -> impl Strategy<Value = LayoutSpec> {
    prop_oneof![
        (1usize..=4, 1u64..=4).prop_map(|(devices, unit)| LayoutSpec::Striped { devices, unit }),
        (2usize..=3, any::<bool>()).prop_map(|(data_devices, rotated)| LayoutSpec::Parity {
            data_devices,
            rotated
        }),
        (1usize..=2, 1u64..=3).prop_map(|(devices, unit)| LayoutSpec::Shadowed(Box::new(
            LayoutSpec::Striped { devices, unit }
        ))),
        (1usize..=2).prop_map(|devices| LayoutSpec::Partitioned {
            bounds: vec![0, 16, 32],
            devices
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coalesced_spans_match_reference(
        spec in layout_strategy(),
        writes in proptest::collection::vec((0u64..CAP_BYTES, 1usize..1200, any::<u8>()), 1..8),
        reads in proptest::collection::vec((0u64..CAP_BYTES, 1usize..1200), 1..8),
        fail_pick in 0usize..64,
    ) {
        let v = Volume::create_in_memory(VolumeConfig {
            devices: 6,
            device_blocks: 512,
            block_size: BS,
        })
        .unwrap();
        let mut fspec = FileSpec::new("f", 64, 4, spec.clone());
        if matches!(spec, LayoutSpec::Partitioned { .. }) {
            fspec = fspec.fixed_capacity(CAP_BYTES / 64);
        }
        let f = v.create_file(fspec).unwrap();
        let serial = f.clone().with_span_parallel(false);

        let mut model: Vec<u8> = Vec::new();
        for &(off, len, seed) in &writes {
            let len = len.min((CAP_BYTES - off) as usize);
            let data: Vec<u8> = (0..len).map(|i| seed.wrapping_add(i as u8)).collect();
            f.write_span(off, &data).unwrap();
            let end = off as usize + len;
            if end > model.len() {
                model.resize(end, 0);
            }
            model[off as usize..end].copy_from_slice(&data);
        }

        let clamp = |model: &[u8], off: u64, len: usize| {
            let off = (off as usize).min(model.len().saturating_sub(1));
            let len = len.min(model.len() - off);
            (off, len)
        };
        for &(off, len) in &reads {
            let (off, len) = clamp(&model, off, len);
            let mut a = vec![0u8; len];
            f.read_span(off as u64, &mut a).unwrap();
            prop_assert_eq!(&a[..], &model[off..off + len], "parallel read at {}+{}", off, len);
            let mut b = vec![0u8; len];
            serial.read_span(off as u64, &mut b).unwrap();
            prop_assert_eq!(&b[..], &model[off..off + len], "serial read at {}+{}", off, len);
        }

        // One failed device mid-file: redundant layouts must still serve
        // every span through mirror runs or parity reconstruction.
        if matches!(spec, LayoutSpec::Parity { .. } | LayoutSpec::Shadowed(_)) {
            let slot = fail_pick % f.layout().devices();
            v.device(f.meta_snapshot().device_map[slot]).fail();
            for &(off, len) in &reads {
                let (off, len) = clamp(&model, off, len);
                let mut a = vec![0u8; len];
                f.read_span(off as u64, &mut a).unwrap();
                prop_assert_eq!(
                    &a[..],
                    &model[off..off + len],
                    "degraded read at {}+{} with slot {} failed",
                    off,
                    len,
                    slot
                );
            }
        }

        // Degraded shadow *writes*: with one copy of every pair down,
        // writes must land on the surviving mirror — through the parallel
        // dual-submit path and the serial reference alike — and reads
        // must return the fresh bytes.
        if matches!(spec, LayoutSpec::Shadowed(_)) {
            for (k, &(off, len, seed)) in writes.iter().enumerate() {
                let len = len.min((CAP_BYTES - off) as usize);
                let data: Vec<u8> = (0..len)
                    .map(|i| seed.wrapping_add(i as u8).wrapping_add(113))
                    .collect();
                let g = if k % 2 == 0 { &f } else { &serial };
                g.write_span(off, &data).unwrap();
                let end = off as usize + len;
                if end > model.len() {
                    model.resize(end, 0);
                }
                model[off as usize..end].copy_from_slice(&data);
            }
            for &(off, len) in &reads {
                let (off, len) = clamp(&model, off, len);
                let mut a = vec![0u8; len];
                f.read_span(off as u64, &mut a).unwrap();
                prop_assert_eq!(
                    &a[..],
                    &model[off..off + len],
                    "read-after-degraded-write at {}+{}",
                    off,
                    len
                );
            }
        }
    }
}
