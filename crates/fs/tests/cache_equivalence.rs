//! Property tests: the volume cache tier is semantically invisible.
//! Concurrent multi-threaded writers and readers through a cached
//! volume must produce bytes — both through span reads and on the raw
//! media after a flush — identical to the same workload on an uncached
//! volume, under every policy (write-through, write-back, write-back
//! with spill). A separate torn-write schedule pins the fault
//! invariant: after a failed write-through, the cache agrees with the
//! media, torn prefix included.

use proptest::prelude::*;

use pario_disk::{mem_array, FaultDevice, FaultPlan};
use pario_fs::{resolve, FileSpec, Volume, VolumeCacheConfig, VolumeConfig};
use pario_layout::LayoutSpec;

const BS: usize = 256;
const THREADS: u64 = 4;
/// Each writer thread owns a disjoint region so the concurrent outcome
/// is deterministic and comparable against the sequential reference.
const REGION: u64 = 8 * BS as u64;
const CAP_BYTES: u64 = THREADS * REGION;

fn new_volume() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 512,
        block_size: BS,
    })
    .unwrap()
}

fn cache_config(pick: usize, frames: usize) -> VolumeCacheConfig {
    match pick % 3 {
        0 => VolumeCacheConfig::write_through(frames),
        1 => VolumeCacheConfig::write_back(frames),
        _ => VolumeCacheConfig::write_back(frames).with_spill(mem_array(1, 1024, BS).remove(0)),
    }
}

/// The file's physical blocks as `(device, abs_block)` in logical order.
fn phys_blocks(f: &pario_fs::RawFile) -> Vec<(usize, u64)> {
    let layout = f.layout();
    let meta = f.meta_snapshot();
    let nblocks = CAP_BYTES / BS as u64;
    (0..nblocks)
        .map(|l| {
            let p = layout.map(l);
            let dev = meta.device_map[p.device];
            (dev, resolve(&meta.extents[p.device], p.block))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent writers in disjoint regions plus concurrent readers,
    /// on a cached and an uncached volume: span reads agree with the
    /// sequential reference on both, and after a flush the cached
    /// volume's media is block-for-block identical to the uncached one.
    #[test]
    fn cached_volume_matches_uncached(
        pick in 0usize..3,
        frames in 2usize..24,
        per_thread in proptest::collection::vec(
            proptest::collection::vec((0u64..REGION, 1usize..900, any::<u8>()), 1..6),
            THREADS as usize..=THREADS as usize,
        ),
        reads in proptest::collection::vec((0u64..CAP_BYTES, 1usize..1200), 1..8),
    ) {
        let spec = || {
            FileSpec::new(
                "f",
                64,
                4,
                LayoutSpec::Striped { devices: 4, unit: 2 },
            )
            .initial_records(CAP_BYTES / 64)
        };
        let cached_vol = new_volume().enable_cache(cache_config(pick, frames)).unwrap();
        let cached = cached_vol.create_file(spec()).unwrap();
        let plain_vol = new_volume();
        let plain = plain_vol.create_file(spec()).unwrap();

        // Concurrent writers (and racing readers) on the cached volume.
        crossbeam::thread::scope(|s| {
            for (t, writes) in per_thread.iter().enumerate() {
                let f = cached.clone();
                s.spawn(move |_| {
                    let base = t as u64 * REGION;
                    for &(off, len, tag) in writes {
                        let off = base + off;
                        let len = len.min((base + REGION - off) as usize);
                        let data: Vec<u8> =
                            (0..len).map(|i| tag.wrapping_add(i as u8)).collect();
                        f.write_span(off, &data).unwrap();
                    }
                });
            }
            let f = cached.clone();
            let reads = &reads;
            s.spawn(move |_| {
                let mut buf = vec![0u8; 1200];
                for &(off, len) in reads {
                    let len = len.min((CAP_BYTES - off) as usize);
                    // Unsynchronised racing read: bytes are unspecified,
                    // it just must not fail or deadlock.
                    f.read_span(off, &mut buf[..len]).unwrap();
                }
            });
        })
        .unwrap();

        // Same writes, sequentially, on the uncached reference.
        for (t, writes) in per_thread.iter().enumerate() {
            let base = t as u64 * REGION;
            for &(off, len, tag) in writes {
                let off = base + off;
                let len = len.min((base + REGION - off) as usize);
                let data: Vec<u8> = (0..len).map(|i| tag.wrapping_add(i as u8)).collect();
                plain.write_span(off, &data).unwrap();
            }
        }

        // Span reads agree while dirty frames are still resident.
        for &(off, len) in &reads {
            let len = len.min((CAP_BYTES - off) as usize);
            let mut a = vec![0u8; len];
            cached.read_span(off, &mut a).unwrap();
            let mut b = vec![0u8; len];
            plain.read_span(off, &mut b).unwrap();
            prop_assert_eq!(&a[..], &b[..], "cached read diverged at {}+{}", off, len);
        }

        // After a flush the media itself must be identical.
        cached_vol.flush_cache().unwrap();
        let pb_cached = phys_blocks(&cached);
        let pb_plain = phys_blocks(&plain);
        prop_assert_eq!(&pb_cached, &pb_plain, "allocation diverged");
        for (l, &(dev, abs)) in pb_cached.iter().enumerate() {
            let mut a = vec![0u8; BS];
            cached_vol.device(dev).read_block(abs, &mut a).unwrap();
            let mut b = vec![0u8; BS];
            plain_vol.device(dev).read_block(abs, &mut b).unwrap();
            prop_assert_eq!(&a, &b, "media diverged at logical block {}", l);
        }
    }

    /// Write-through under a torn-write schedule: when a span write
    /// fails mid-transfer, every later cached read of the file returns
    /// exactly what is on the media — the cache may not resurrect the
    /// untorn bytes it briefly held in frames.
    #[test]
    fn torn_write_through_leaves_cache_agreeing_with_media(
        seed in any::<u64>(),
        torn_rate in 0.3f64..1.0,
        writes in proptest::collection::vec((0u64..CAP_BYTES, 1usize..1500, any::<u8>()), 2..8),
    ) {
        let mut devices = mem_array(4, 512, BS);
        let (fault, wrapped) = FaultDevice::wrap(
            devices[1].clone(),
            FaultPlan {
                seed,
                transient_rate: 0.0,
                spike_rate: 0.0,
                spike: std::time::Duration::ZERO,
                torn_write_rate: torn_rate,
                fail_after: None,
                ..FaultPlan::default()
            },
        );
        devices[1] = wrapped;
        fault.set_armed(false);
        let v = Volume::new(devices)
            .unwrap()
            .enable_cache(VolumeCacheConfig::write_through(16))
            .unwrap();
        let f = v
            .create_file(
                FileSpec::new("f", 64, 4, LayoutSpec::Striped { devices: 4, unit: 1 })
                    .initial_records(CAP_BYTES / 64),
            )
            .unwrap();

        fault.set_armed(true);
        for &(off, len, tag) in &writes {
            let len = len.min((CAP_BYTES - off) as usize);
            let data: Vec<u8> = (0..len).map(|i| tag.wrapping_add(i as u8)).collect();
            // Torn writes surface as errors; both outcomes are legal,
            // the invariant below is what matters.
            let _ = f.write_span(off, &data);
        }
        fault.set_armed(false);

        for (l, &(dev, abs)) in phys_blocks(&f).iter().enumerate() {
            let mut media = vec![0u8; BS];
            v.device(dev).read_block(abs, &mut media).unwrap();
            let mut through_cache = vec![0u8; BS];
            f.read_span(l as u64 * BS as u64, &mut through_cache).unwrap();
            prop_assert_eq!(
                &through_cache,
                &media,
                "cache disagrees with media at logical block {} (torn_writes={})",
                l,
                fault.counts().torn_writes
            );
        }
    }
}

/// Write-back with spill: producers overflowing the frame budget keep
/// completing without a single home-device writeback — overflow goes to
/// the scratch device — and a final flush lands every byte.
#[test]
fn spill_keeps_writers_unblocked_past_frame_budget() {
    let scratch = mem_array(1, 1024, BS).remove(0);
    let v = new_volume()
        .enable_cache(VolumeCacheConfig::write_back(4).with_spill(scratch))
        .unwrap();
    let f = v
        .create_file(
            FileSpec::new(
                "f",
                64,
                4,
                LayoutSpec::Striped {
                    devices: 4,
                    unit: 1,
                },
            )
            .initial_records(CAP_BYTES / 64),
        )
        .unwrap();

    let nblocks = CAP_BYTES / BS as u64;
    crossbeam::thread::scope(|s| {
        for t in 0..4u64 {
            let f = f.clone();
            s.spawn(move |_| {
                for b in (t..nblocks).step_by(4) {
                    f.write_span(b * BS as u64, &vec![b as u8 + 1; BS]).unwrap();
                }
            });
        }
    })
    .unwrap();

    let stats = v.cache_stats().unwrap();
    assert!(
        stats.spills > 0,
        "frame budget 4 with {nblocks} dirty blocks must spill: {stats:?}"
    );
    assert_eq!(
        stats.base.writebacks, 0,
        "spill must absorb overflow instead of home writebacks: {stats:?}"
    );

    v.flush_cache().unwrap();
    let mut out = vec![0u8; BS];
    for b in 0..nblocks {
        f.read_span(b * BS as u64, &mut out).unwrap();
        assert!(
            out.iter().all(|&x| x == b as u8 + 1),
            "block {b} lost through the spill path"
        );
    }
}
