//! `RawFile`: block- and record-level access to one file.
//!
//! This is the layer every internal view is built on. It owns three jobs:
//!
//! 1. **Address translation** — logical block → layout → device slot →
//!    extent → absolute device block.
//! 2. **Redundancy maintenance** — parity read-modify-write cycles and
//!    degraded reconstruction for parity layouts; dual writes and failover
//!    reads for shadowed layouts.
//! 3. **Byte/record framing** — records are fixed-size spans of the
//!    logical byte stream and may straddle volume blocks; `read_span` /
//!    `write_span` handle the block arithmetic once, for everyone above.

use std::sync::atomic::Ordering;

use pario_check::AtomicU64;
use std::sync::Arc;

use pario_buffer::{CacheReadTicket, CacheWriteTicket, VolumeCache};
use pario_disk::{DeviceRef, DiskError, Ticket};
use pario_layout::{runs, Layout, LayoutSpec, ParityPlacement, ParityStriped, PhysBlock, Run};

use crate::alloc::resolve;
use crate::error::{FsError, Result};
use crate::health::HealthState;
use crate::meta::FileMeta;
use crate::volume::{FileState, Volume};

/// How the file's layout protects (or doesn't) against device failure.
#[derive(Clone, Debug)]
enum Redundancy {
    /// No redundancy: a failed device loses its blocks.
    None,
    /// One parity block per stripe; any single failed device is
    /// reconstructible.
    Parity(ParityStriped),
    /// Every primary device has a shadow at `device + primaries`.
    Shadow {
        /// Number of primary devices.
        primaries: usize,
    },
}

/// An open file: cheap to clone and share across threads.
#[derive(Clone)]
pub struct RawFile {
    vol: Volume,
    state: Arc<FileState>,
    layout: Arc<dyn Layout>,
    redundancy: Redundancy,
    record_size: usize,
    records_per_block: usize,
    name: String,
    id: u64,
    /// Whether span transfers submit to the volume's I/O executor
    /// asynchronously (`true`) or wait out each request at submission
    /// (`false`, the serial reference path for experiments).
    span_parallel: bool,
}

fn xor_into(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Whether a read error is recoverable through redundancy: fail-stop,
/// detected corruption, and transient faults that survived executor
/// retries all leave a live copy elsewhere.
fn recoverable(e: &DiskError) -> bool {
    e.is_transient()
        || matches!(
            e,
            DiskError::DeviceFailed { .. } | DiskError::Corruption { .. }
        )
}

/// RAII token for the rebuild quiesce protocol (see
/// [`RawFile::enter_io`]): either an entry in the file's unlocked-I/O
/// counter or, while a mapped device is Rebuilding, the stripe lock
/// itself.
struct IoPhase<'a> {
    counted: Option<&'a AtomicU64>,
    _stripe: Option<pario_check::MutexGuard<'a, ()>>,
}

impl Drop for IoPhase<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.counted {
            c.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Layout runs on one device whose device-local blocks are contiguous,
/// merged into a single transfer. The runs may be scattered through the
/// logical span (striping interleaves them), so each keeps its own
/// window (`B`) into the span buffer; multi-part transfers go through a
/// staging buffer.
struct MergedRun<B> {
    device: usize,
    dblock: u64,
    count: u64,
    parts: Vec<(Run, B)>,
}

/// One in-flight segment transfer of a merged run: a raw executor
/// ticket on uncached volumes, a cache ticket when the volume cache tier
/// fronts the executor, or an already-completed outcome (serial mode and
/// cache-absorbed write-back writes).
enum RunTicket {
    Dev(Ticket<Box<[u8]>>),
    CacheRead(CacheReadTicket),
    CacheWrite(CacheWriteTicket),
    Done(pario_disk::Result<()>),
}

impl RunTicket {
    /// Complete a read segment; `cache` is the volume's tier (present
    /// whenever `CacheRead` tickets exist).
    fn wait_read(self, cache: Option<&Arc<VolumeCache>>) -> pario_disk::Result<Box<[u8]>> {
        match self {
            RunTicket::Dev(t) => t.wait(),
            RunTicket::CacheRead(ct) => {
                // invariant: cache tickets are only created with a cache.
                ct.wait(cache.expect("cache ticket implies cache"))
            }
            RunTicket::CacheWrite(_) | RunTicket::Done(_) => {
                unreachable!("write ticket waited as a read")
            }
        }
    }

    /// Complete a write segment.
    fn wait_write(self, cache: Option<&Arc<VolumeCache>>) -> pario_disk::Result<()> {
        match self {
            RunTicket::Dev(t) => t.wait().map(|_| ()),
            RunTicket::CacheWrite(wt) => {
                // invariant: cache tickets are only created with a cache.
                wt.wait(cache.expect("cache ticket implies cache"))
            }
            RunTicket::Done(r) => r,
            RunTicket::CacheRead(_) => unreachable!("read ticket waited as a write"),
        }
    }
}

/// Group `pieces` by device, merging runs that continue the previous
/// run's device-local block range. Striped layouts collapse a whole
/// span into ONE merged run per device; partitioned layouts were one
/// run already; parity data blocks on one device sit at consecutive
/// stripe rows and merge the same way.
fn merge_runs<B>(pieces: Vec<(Run, B)>, ndev: usize) -> Vec<Vec<MergedRun<B>>> {
    let mut groups: Vec<Vec<MergedRun<B>>> = (0..ndev).map(|_| Vec::new()).collect();
    for (r, b) in pieces {
        match groups[r.device].last_mut() {
            Some(m) if m.dblock + m.count == r.dblock => {
                m.count += r.count;
                m.parts.push((r, b));
            }
            _ => groups[r.device].push(MergedRun {
                device: r.device,
                dblock: r.dblock,
                count: r.count,
                parts: vec![(r, b)],
            }),
        }
    }
    groups
}

impl RawFile {
    pub(crate) fn from_state(vol: Volume, state: Arc<FileState>) -> Result<RawFile> {
        let (layout_spec, record_size, records_per_block, name, id) = {
            let meta = state.meta.read();
            (
                meta.layout.clone(),
                meta.record_size,
                meta.records_per_block,
                meta.name.clone(),
                meta.id,
            )
        };
        let layout: Arc<dyn Layout> = Arc::from(layout_spec.build());
        let redundancy = match &layout_spec {
            LayoutSpec::Parity {
                data_devices,
                rotated,
            } => Redundancy::Parity(ParityStriped::new(
                *data_devices,
                if *rotated {
                    ParityPlacement::Rotated
                } else {
                    ParityPlacement::Dedicated
                },
            )),
            LayoutSpec::Shadowed(inner) => Redundancy::Shadow {
                primaries: inner.devices_required(),
            },
            _ => Redundancy::None,
        };
        Ok(RawFile {
            vol,
            state,
            layout,
            redundancy,
            record_size,
            records_per_block,
            name,
            id,
            span_parallel: true,
        })
    }

    /// Disable (or re-enable) asynchronous submission on this handle,
    /// keeping span coalescing: with it off, every executor request is
    /// waited out before the next is submitted, so devices are serviced
    /// one at a time. For experiments that isolate request-count savings
    /// from parallelism, and as the reference path in equivalence tests.
    pub fn with_span_parallel(mut self, on: bool) -> RawFile {
        self.span_parallel = on;
        self
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// File name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unique id within the volume.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The organization tag recorded at creation.
    pub fn org(&self) -> String {
        self.state.meta.read().org.clone()
    }

    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Records per logical file block (the paper's block grain).
    pub fn records_per_block(&self) -> usize {
        self.records_per_block
    }

    /// Bytes per logical file block.
    pub fn file_block_bytes(&self) -> usize {
        self.record_size * self.records_per_block
    }

    /// Volume block size in bytes.
    pub fn block_size(&self) -> usize {
        self.vol.block_size()
    }

    /// Current length in records.
    pub fn len_records(&self) -> u64 {
        self.state.meta.read().len_records
    }

    /// Allocated logical blocks.
    pub fn nblocks(&self) -> u64 {
        self.state.meta.read().nblocks
    }

    /// Records the file can hold without (or within fixed) growth.
    pub fn capacity_records(&self) -> u64 {
        let meta = self.state.meta.read();
        let by_alloc = meta.nblocks * self.block_size() as u64 / self.record_size as u64;
        match meta.fixed_capacity_records {
            // A fixed capacity is the hard ceiling even when the eager
            // allocation rounds up to more whole blocks than it needs.
            Some(cap) => cap,
            None => by_alloc,
        }
    }

    /// True if the file was created with a hard capacity.
    pub fn is_fixed(&self) -> bool {
        self.state.meta.read().fixed_capacity_records.is_some()
    }

    /// The placement mapping.
    pub fn layout(&self) -> &dyn Layout {
        &*self.layout
    }

    /// The volume this file lives on.
    pub fn volume(&self) -> &Volume {
        &self.vol
    }

    /// A copy of the durable metadata.
    pub fn meta_snapshot(&self) -> FileMeta {
        self.state.meta.read().clone()
    }

    // ------------------------------------------------------------------
    // Length and capacity
    // ------------------------------------------------------------------

    /// Guarantee room for `records` records (no-op if already allocated).
    pub fn ensure_capacity_records(&self, records: u64) -> Result<()> {
        if let Some(cap) = self.state.meta.read().fixed_capacity_records {
            if records > cap {
                return Err(FsError::CapacityExceeded {
                    requested: records,
                    capacity: cap,
                });
            }
        }
        let lblocks = (records * self.record_size as u64).div_ceil(self.block_size() as u64);
        self.vol.grow_file(&self.state, lblocks)
    }

    /// Set the length in records, growing the allocation if needed.
    pub fn set_len_records(&self, records: u64) -> Result<()> {
        self.ensure_capacity_records(records)?;
        self.state.meta.write().len_records = records;
        Ok(())
    }

    /// Raise the length to at least `records` (never shrinks).
    pub fn extend_len_records(&self, records: u64) {
        let mut meta = self.state.meta.write();
        if records > meta.len_records {
            meta.len_records = records;
        }
    }

    // ------------------------------------------------------------------
    // Physical access
    // ------------------------------------------------------------------

    fn locate(&self, p: PhysBlock) -> (DeviceRef, u64, usize) {
        let meta = self.state.meta.read();
        let dev = meta.device_map[p.device];
        let abs = resolve(&meta.extents[p.device], p.block);
        (self.vol.io_device(dev), abs, dev)
    }

    /// Volume device backing layout slot `slot`.
    fn slot_vdev(&self, slot: usize) -> usize {
        self.state.meta.read().device_map[slot]
    }

    /// Health state of the device backing layout slot `slot`.
    fn slot_state(&self, slot: usize) -> HealthState {
        self.vol.health().state(self.slot_vdev(slot))
    }

    /// Whether I/O must route around layout slot `slot`: its device is
    /// Failed (errors) or Rebuilding (readable but stale).
    fn slot_down(&self, slot: usize) -> bool {
        self.slot_state(slot).is_down()
    }

    fn any_mapped_rebuilding(&self) -> bool {
        let meta = self.state.meta.read();
        meta.device_map
            .iter()
            .any(|&d| self.vol.health().state(d) == HealthState::Rebuilding)
    }

    /// Enter the unlocked-I/O window: increments the current
    /// generation's in-flight counter *before* the caller samples device
    /// health, while [`RawFile::quiesce_io`] flips health first and
    /// bumps the generation second — Dekker's protocol, so a rebuild
    /// can wait out every I/O that might have seen the old state.
    fn enter_io(&self) -> IoPhase<'_> {
        let g = self.state.io_gen.load(Ordering::SeqCst);
        let counter = &self.state.io_active[(g & 1) as usize];
        counter.fetch_add(1, Ordering::SeqCst);
        IoPhase {
            counted: Some(counter),
            _stripe: None,
        }
    }

    /// Write-side entry for shadowed layouts: the counted window
    /// normally, but while any mapped device is Rebuilding the write
    /// takes the stripe lock instead — resync copies its bursts under
    /// the same lock, so a live write can never interleave with the
    /// resync copy of its own block.
    fn enter_shadow_write(&self) -> IoPhase<'_> {
        let phase = self.enter_io();
        if self.any_mapped_rebuilding() {
            drop(phase);
            IoPhase {
                counted: None,
                _stripe: Some(self.state.stripe_lock.lock()),
            }
        } else {
            phase
        }
    }

    /// Wait until every unlocked I/O that began before this call has
    /// drained. Recovery tooling calls this after flipping a device to
    /// Rebuilding so no straggler that sampled the old health state is
    /// still touching the device. I/O that enters afterwards routes by
    /// the new state (degraded reads, stripe-locked shadow writes) and
    /// counts against the next generation, so the wait terminates even
    /// under continuous foreground traffic.
    pub fn quiesce_io(&self) {
        let g = self.state.io_gen.fetch_add(1, Ordering::SeqCst);
        let old = &self.state.io_active[(g & 1) as usize];
        while old.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }

    /// Feed an I/O error to the health board — unless it is a *stale*
    /// fail-stop report. A `DeviceFailed` raised before a repair
    /// (`heal`) can complete after the rebuild has already flipped the
    /// device to Rebuilding; fail-stop is synchronously re-checkable,
    /// so drop the report when the media no longer says it is failed.
    /// Genuine mid-rebuild failures still land: `is_failed()` is true.
    fn note_io_error(&self, vdev: usize, e: &DiskError) {
        if matches!(e, DiskError::DeviceFailed { .. }) && !self.vol.device(vdev).is_failed() {
            return;
        }
        self.vol.health().note_error(vdev, e);
    }

    fn try_read_phys(&self, p: PhysBlock, buf: &mut [u8]) -> Result<()> {
        let (dev, abs, vdev) = self.locate(p);
        // With the volume cache attached, single-block reads fill and
        // serve frames; the health feedback below runs with the cache
        // lock already released (75 < 80 in the hierarchy).
        let res = match self.vol.cache() {
            Some(c) => c.read_block(vdev, abs, buf),
            None => dev.read_block(abs, buf),
        };
        match res {
            Ok(()) => {
                self.vol.health().note_ok(vdev);
                Ok(())
            }
            Err(e) => {
                self.note_io_error(vdev, &e);
                Err(FsError::Disk(e))
            }
        }
    }

    fn try_write_phys(&self, p: PhysBlock, data: &[u8]) -> Result<()> {
        let (dev, abs, vdev) = self.locate(p);
        let res = match self.vol.cache() {
            Some(c) => c.write_block(vdev, abs, data),
            None => dev.write_block(abs, data),
        };
        match res {
            Ok(()) => {
                self.vol.health().note_ok(vdev);
                Ok(())
            }
            Err(e) => {
                self.note_io_error(vdev, &e);
                Err(FsError::Disk(e))
            }
        }
    }

    fn check_lblock(&self, l: u64) -> Result<()> {
        let nblocks = self.nblocks();
        if l >= nblocks {
            return Err(FsError::OutOfBounds {
                record: l,
                len: nblocks,
            });
        }
        Ok(())
    }

    /// Read logical block `l` (must be allocated). Routing is
    /// health-driven: a block on a Failed or Rebuilding device goes
    /// straight to redundancy (reads of Rebuilding media would be
    /// stale), a Suspect shadowed primary is hedged against its mirror,
    /// and any recoverable error — fail-stop, detected corruption, or a
    /// transient that survived executor retries — falls back to the
    /// degraded path transparently.
    pub fn read_lblock(&self, l: u64, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.block_size());
        self.check_lblock(l)?;
        let p = self.layout.map(l);
        let fast = {
            let _io = self.enter_io();
            self.read_lblock_fast(p, buf)
        };
        match fast {
            Some(r) => r,
            None => self.read_degraded(l, p, buf),
        }
    }

    /// The routed fast path, inside the unlocked-I/O window. `None`
    /// means "recover through redundancy". A Rebuilding device is
    /// skipped unconditionally (its media reads stale); a Failed device
    /// is still probed — fail-stop errors come back instantly and fall
    /// to recovery, while a device healed behind the board's back (raw
    /// `heal()` without a rebuild) keeps serving.
    fn read_lblock_fast(&self, p: PhysBlock, buf: &mut [u8]) -> Option<Result<()>> {
        if self.slot_state(p.device) == HealthState::Rebuilding {
            return None;
        }
        if let Redundancy::Shadow { primaries } = &self.redundancy {
            let m = PhysBlock {
                device: p.device + primaries,
                block: p.block,
            };
            if self.slot_state(p.device) == HealthState::Suspect && !self.slot_down(m.device) {
                // Hedge: race the mirror rather than waiting out a
                // possibly-spiking primary.
                return match self.hedged_read(p, m, buf) {
                    Ok(()) => Some(Ok(())),
                    Err(_) => None,
                };
            }
        }
        match self.try_read_phys(p, buf) {
            Err(FsError::Disk(ref e)) if recoverable(e) => None,
            other => Some(other),
        }
    }

    /// Race the two copies of a shadowed block; first success wins,
    /// and a single failed copy is absorbed by the other.
    fn hedged_read(&self, p: PhysBlock, m: PhysBlock, buf: &mut [u8]) -> Result<()> {
        let (d1, a1, v1) = self.locate(p);
        let (d2, a2, v2) = self.locate(m);
        // Peek the cache tier before racing raw media: under write-back
        // a resident (or spilled) frame may be newer than either copy on
        // disk, and a hit costs no device traffic at all.
        if let Some(c) = self.vol.cache() {
            if c.try_cached(v1, a1, buf) || c.try_cached(v2, a2, buf) {
                return Ok(());
            }
        }
        let t1 = d1.submit_read_blocks(a1, vec![0u8; buf.len()].into_boxed_slice());
        let t2 = d2.submit_read_blocks(a2, vec![0u8; buf.len()].into_boxed_slice());
        let data = Ticket::race(t1, t2).map_err(FsError::from)?;
        buf.copy_from_slice(&data);
        Ok(())
    }

    /// Read the physical block at layout slot `slot`, device-local index
    /// `dblock` — **recovery tooling only**: bypasses redundancy logic.
    pub fn read_device_block(&self, slot: usize, dblock: u64, buf: &mut [u8]) -> Result<()> {
        self.try_read_phys(
            PhysBlock {
                device: slot,
                block: dblock,
            },
            buf,
        )
    }

    /// Write the physical block at layout slot `slot`, device-local index
    /// `dblock` — **recovery tooling only**: bypasses parity maintenance
    /// and shadow duplication entirely. Rebuilt data must be durable on
    /// media whatever the cache policy, so this writes the device
    /// directly and drops any frame that covered the block.
    pub fn write_device_block(&self, slot: usize, dblock: u64, data: &[u8]) -> Result<()> {
        let (dev, abs, vdev) = self.locate(PhysBlock {
            device: slot,
            block: dblock,
        });
        let res = dev.write_block(abs, data);
        if let Some(c) = self.vol.cache() {
            c.invalidate_range(vdev, abs, 1);
        }
        match res {
            Ok(()) => {
                self.vol.health().note_ok(vdev);
                Ok(())
            }
            Err(e) => {
                self.note_io_error(vdev, &e);
                Err(FsError::Disk(e))
            }
        }
    }

    /// Map the logical byte span `[offset, offset + len)` to contiguous
    /// physical `(device, first block, count)` runs. Used by the cache
    /// flush hooks below.
    fn span_phys_runs(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        if len == 0 || self.nblocks() == 0 {
            return Vec::new();
        }
        let bs = self.block_size() as u64;
        let first = offset / bs;
        let last = ((offset + len - 1) / bs).min(self.nblocks() - 1);
        if first > last {
            return Vec::new();
        }
        let meta = self.state.meta.read();
        let mut locs: Vec<(usize, u64)> = (first..=last)
            .map(|l| {
                let p = self.layout.map(l);
                (
                    meta.device_map[p.device],
                    resolve(&meta.extents[p.device], p.block),
                )
            })
            .collect();
        drop(meta);
        locs.sort_unstable();
        locs.dedup();
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < locs.len() {
            let (dev, start) = locs[i];
            let mut n = 1u64;
            while i + (n as usize) < locs.len() && locs[i + n as usize] == (dev, start + n) {
                n += 1;
            }
            out.push((dev, start, n));
            i += n as usize;
        }
        out
    }

    /// Write cached dirty state covering the byte span `[offset,
    /// offset + len)` to the home devices — the hook a byte-range lock
    /// release drives, so data written under a GDA range lock is durable
    /// before the next holder proceeds, exactly as on uncached volumes.
    /// No-op without a cache (write-through never holds dirty data
    /// beyond the write itself).
    pub fn flush_span(&self, offset: u64, len: u64) -> Result<()> {
        let Some(c) = self.vol.cache() else {
            return Ok(());
        };
        for (dev, start, n) in self.span_phys_runs(offset, len) {
            c.flush_range(dev, start, n)?;
        }
        Ok(())
    }

    /// Drop cached frames covering the byte span without writing them
    /// back — for callers that know the media is authoritative.
    pub fn invalidate_span(&self, offset: u64, len: u64) {
        let Some(c) = self.vol.cache() else {
            return;
        };
        for (dev, start, n) in self.span_phys_runs(offset, len) {
            c.invalidate_range(dev, start, n);
        }
    }

    /// Blocks allocated on layout slot `slot`.
    pub fn device_blocks(&self, slot: usize) -> u64 {
        crate::alloc::extents_len(&self.state.meta.read().extents[slot])
    }

    /// Take the file's stripe lock for a multi-step recovery operation
    /// (quiesces parity read-modify-write cycles).
    pub fn lock_stripes(&self) -> pario_check::MutexGuard<'_, ()> {
        self.state.stripe_lock.lock()
    }

    fn read_degraded(&self, l: u64, p: PhysBlock, buf: &mut [u8]) -> Result<()> {
        match &self.redundancy {
            Redundancy::Shadow { primaries } => {
                let m = PhysBlock {
                    device: p.device + primaries,
                    block: p.block,
                };
                // A Rebuilding mirror is writable but stale: reading it
                // would silently return old data.
                if self.slot_state(m.device) == HealthState::Rebuilding {
                    return Err(FsError::Disk(DiskError::DeviceFailed {
                        device: format!("device slot {} (rebuilding)", m.device),
                    }));
                }
                self.try_read_phys(m, buf)
            }
            Redundancy::Parity(ps) => {
                let _g = self.state.stripe_lock.lock();
                self.reconstruct_block(ps, l, buf)
            }
            Redundancy::None => Err(FsError::Disk(DiskError::DeviceFailed {
                device: format!("device slot {}", p.device),
            })),
        }
    }

    /// XOR-reconstruct logical block `l` from its stripe peers and parity.
    /// Caller holds the stripe lock.
    fn reconstruct_block(&self, ps: &ParityStriped, l: u64, out: &mut [u8]) -> Result<()> {
        let total = self.nblocks();
        let s = ps.stripe_of(l);
        let bs = self.block_size();
        let mut scratch = vec![0u8; bs];
        self.try_read_phys(ps.parity_location(s), &mut scratch)?;
        out.copy_from_slice(&scratch);
        for (b, loc) in ps.stripe_data(s, total) {
            if b == l {
                continue;
            }
            self.try_read_phys(loc, &mut scratch)?;
            xor_into(out, &scratch);
        }
        Ok(())
    }

    /// Write logical block `l`, growing the file to cover it. Parity is
    /// maintained read-modify-write; shadows receive a second copy.
    pub fn write_lblock(&self, l: u64, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), self.block_size());
        if l >= self.nblocks() {
            let records = ((l + 1) * self.block_size() as u64).div_ceil(self.record_size as u64);
            self.ensure_capacity_records(records)?;
        }
        match &self.redundancy.clone() {
            Redundancy::None => self.try_write_phys(self.layout.map(l), data),
            Redundancy::Shadow { primaries } => {
                let _w = self.enter_shadow_write();
                self.shadow_write_block(l, *primaries, data)
            }
            Redundancy::Parity(ps) => self.parity_write(ps, l, data),
        }
    }

    /// Dual-write one shadowed block. The caller holds a write-phase
    /// token ([`RawFile::enter_shadow_write`]).
    fn shadow_write_block(&self, l: u64, primaries: usize, data: &[u8]) -> Result<()> {
        let p = self.layout.map(l);
        let m = PhysBlock {
            device: p.device + primaries,
            block: p.block,
        };
        let r1 = self.try_write_phys(p, data);
        let r2 = self.try_write_phys(m, data);
        match (&r1, &r2) {
            (Err(_), Err(_)) => r1,
            // One live copy suffices; the pair is degraded, not lost.
            _ => Ok(()),
        }
    }

    fn parity_write(&self, ps: &ParityStriped, l: u64, data: &[u8]) -> Result<()> {
        let _g = self.state.stripe_lock.lock();
        let bs = self.block_size();
        let s = ps.stripe_of(l);
        let dloc = self.layout.map(l);
        let ploc = ps.parity_location(s);
        // Health-driven branch: a Rebuilding device's media reads stale
        // values, so read-modify-write through it is wrong — reconstruct
        // the stripe's parity from live peers instead. (Failed devices
        // are left to the error-driven branches below: probing them
        // errors instantly, and a device healed behind the board's back
        // keeps serving.)
        if self.slot_state(dloc.device) == HealthState::Rebuilding
            || self.slot_state(ploc.device) == HealthState::Rebuilding
        {
            return self.parity_reconstruct_write(ps, l, s, dloc, ploc, data);
        }
        let mut old = vec![0u8; bs];
        let old_read = match self.try_read_phys(dloc, &mut old) {
            // Corrupt old data would poison the parity RMW; reconstruct
            // the true old value from the stripe first (the subsequent
            // data write heals the corruption as a side effect).
            Err(FsError::Disk(DiskError::Corruption { .. })) => {
                self.reconstruct_block(ps, l, &mut old)
            }
            other => other,
        };
        match old_read {
            Ok(()) => {
                let mut parity = vec![0u8; bs];
                match self.try_read_phys(ploc, &mut parity) {
                    Ok(()) => {
                        // new parity = old parity ^ old data ^ new data
                        xor_into(&mut parity, &old);
                        xor_into(&mut parity, data);
                        self.try_write_phys(dloc, data)?;
                        match self.try_write_phys(ploc, &parity) {
                            // Parity device died between read and write:
                            // the data write stands, the stripe is simply
                            // unprotected until rebuild.
                            Err(FsError::Disk(DiskError::DeviceFailed { .. })) => Ok(()),
                            other => other,
                        }
                    }
                    Err(FsError::Disk(DiskError::DeviceFailed { .. })) => {
                        // Parity device down: write data unprotected.
                        self.try_write_phys(dloc, data)
                    }
                    Err(e) => Err(e),
                }
            }
            Err(FsError::Disk(DiskError::DeviceFailed { .. })) => {
                // Data device down: fold the new data into parity so a
                // rebuild recreates it. parity = new ^ XOR(peers).
                let mut parity = data.to_vec();
                let total = self.nblocks();
                let mut scratch = vec![0u8; bs];
                for (b, loc) in ps.stripe_data(s, total) {
                    if b == l {
                        continue;
                    }
                    self.try_read_phys(loc, &mut scratch)?;
                    xor_into(&mut parity, &scratch);
                }
                self.try_write_phys(ploc, &parity)
            }
            Err(e) => Err(e),
        }
    }

    /// Full-stripe reconstruct-write for a degraded stripe (caller
    /// holds the stripe lock): `parity = new data ^ XOR(live peers)`.
    /// Both the data copy and the parity copy are written where media
    /// accepts them — a Rebuilding device takes writes (the sweep then
    /// recomputes a consistent value), a Failed device errors — and one
    /// durable representation of the new data is enough.
    fn parity_reconstruct_write(
        &self,
        ps: &ParityStriped,
        l: u64,
        s: u64,
        dloc: PhysBlock,
        ploc: PhysBlock,
        data: &[u8],
    ) -> Result<()> {
        let bs = self.block_size();
        let total = self.nblocks();
        let mut parity = data.to_vec();
        let mut scratch = vec![0u8; bs];
        for (b, loc) in ps.stripe_data(s, total) {
            if b == l {
                continue;
            }
            self.try_read_phys(loc, &mut scratch)?;
            xor_into(&mut parity, &scratch);
        }
        let r_data = self.try_write_phys(dloc, data);
        let r_parity = self.try_write_phys(ploc, &parity);
        match (r_data, r_parity) {
            (Err(e), Err(_)) => Err(e),
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Coalesced span machinery
    // ------------------------------------------------------------------

    /// Split the device-local range `[dblock, dblock + count)` of layout
    /// slot `slot` at extent boundaries, resolving each piece to an
    /// absolute block on the device's I/O-executor handle (so segment
    /// transfers can be submitted asynchronously).
    fn run_segments(&self, slot: usize, dblock: u64, count: u64) -> Vec<(DeviceRef, u64, u64)> {
        let meta = self.state.meta.read();
        let dev = self.vol.io_device(meta.device_map[slot]);
        let mut out = Vec::new();
        let mut local = dblock;
        let mut remaining = count;
        for e in &meta.extents[slot] {
            if remaining == 0 {
                break;
            }
            if local >= e.len {
                local -= e.len;
                continue;
            }
            let take = (e.len - local).min(remaining);
            out.push((Arc::clone(&dev), e.start + local, take));
            remaining -= take;
            local = 0;
        }
        assert_eq!(remaining, 0, "run extends past allocated extents");
        out
    }

    /// Submit the read of one merged run: one ticket per extent segment,
    /// all enqueued before returning. On cached volumes each segment
    /// goes through the tier — hits are copied immediately and adjacent
    /// misses coalesce into one vectored executor request, submitted
    /// (not waited) here so cross-device fan-out is preserved. With
    /// `span_parallel` off, each request is waited out at submission —
    /// the serial reference path.
    fn submit_read_run(&self, slot: usize, dblock: u64, count: u64) -> Vec<RunTicket> {
        let bs = self.block_size();
        let segs = self.run_segments(slot, dblock, count);
        let mut out = Vec::with_capacity(segs.len());
        if let Some(c) = self.vol.cache() {
            let vdev = self.slot_vdev(slot);
            for (_dev, abs, n) in segs {
                let ct = c.submit_read(vdev, abs, n as usize);
                out.push(if self.span_parallel {
                    RunTicket::CacheRead(ct)
                } else {
                    RunTicket::Dev(Ticket::ready(ct.wait(c)))
                });
            }
            return out;
        }
        for (dev, abs, n) in segs {
            let t = dev.submit_read_blocks(abs, vec![0u8; n as usize * bs].into_boxed_slice());
            out.push(RunTicket::Dev(if self.span_parallel {
                t
            } else {
                Ticket::ready(t.wait())
            }));
        }
        out
    }

    /// Submit the write of one merged run (`data` is the run's gathered
    /// bytes), one ticket per extent segment. On cached volumes each
    /// segment goes through the tier: write-back absorbs it into dirty
    /// frames (spilling overflow to scratch), write-through submits the
    /// vectored device write and completes it at wait. Serial when
    /// `span_parallel` is off, as in [`RawFile::submit_read_run`].
    fn submit_write_run(&self, slot: usize, dblock: u64, data: Vec<u8>) -> Vec<RunTicket> {
        let bs = self.block_size();
        let segs = self.run_segments(slot, dblock, (data.len() / bs) as u64);
        let mut out = Vec::with_capacity(segs.len());
        if let Some(c) = self.vol.cache() {
            let vdev = self.slot_vdev(slot);
            let mut pos = 0usize;
            for (_dev, abs, n) in segs {
                let bytes = n as usize * bs;
                let chunk = &data[pos..pos + bytes];
                pos += bytes;
                out.push(match c.submit_write(vdev, abs, chunk) {
                    Ok(wt) if self.span_parallel => RunTicket::CacheWrite(wt),
                    Ok(wt) => RunTicket::Done(wt.wait(c)),
                    Err(e) => RunTicket::Done(Err(e)),
                });
            }
            return out;
        }
        let mut segs = segs.into_iter();
        let mut pos = 0usize;
        // The common case is one segment per run (extents merge at grow
        // time); hand the gathered buffer over without another copy.
        if segs.len() == 1 {
            // invariant: just checked segs.len() == 1.
            let (dev, abs, _) = segs.next().unwrap();
            let t = dev.submit_write_blocks(abs, data.into_boxed_slice());
            out.push(RunTicket::Dev(if self.span_parallel {
                t
            } else {
                Ticket::ready(t.wait())
            }));
            return out;
        }
        for (dev, abs, n) in segs {
            let bytes = n as usize * bs;
            let t =
                dev.submit_write_blocks(abs, data[pos..pos + bytes].to_vec().into_boxed_slice());
            pos += bytes;
            out.push(RunTicket::Dev(if self.span_parallel {
                t
            } else {
                Ticket::ready(t.wait())
            }));
        }
        out
    }

    /// Wait out one run's read tickets against layout slot `slot`.
    /// Segment buffers come back in device order; a recoverable error
    /// anywhere in the run — fail-stop, detected corruption, or a
    /// transient that survived executor retries — reports the run as
    /// degraded; any other error is final. The run's outcome feeds the
    /// health board either way.
    fn wait_read_run(
        &self,
        slot: usize,
        tickets: Vec<RunTicket>,
    ) -> Result<Option<Vec<Box<[u8]>>>> {
        let cache = self.vol.cache();
        let mut bufs = Vec::with_capacity(tickets.len());
        let mut soft: Option<DiskError> = None;
        let mut hard: Option<DiskError> = None;
        // Always wait every ticket so nothing completes behind our back.
        for t in tickets {
            match t.wait_read(cache) {
                Ok(b) => bufs.push(b),
                Err(e) if recoverable(&e) => {
                    soft.get_or_insert(e);
                }
                Err(e) => {
                    hard.get_or_insert(e);
                }
            }
        }
        let vdev = self.slot_vdev(slot);
        match hard.as_ref().or(soft.as_ref()) {
            Some(e) => self.note_io_error(vdev, e),
            None => self.vol.health().note_ok(vdev),
        }
        match (hard, soft) {
            (Some(e), _) => Err(e.into()),
            (None, Some(_)) => Ok(None),
            (None, None) => Ok(Some(bufs)),
        }
    }

    /// Wait out one run's write tickets against layout slot `slot`,
    /// reporting the first error (and feeding the health board).
    fn wait_write_run(&self, slot: usize, tickets: Vec<RunTicket>) -> Result<()> {
        let cache = self.vol.cache();
        let mut first: Option<DiskError> = None;
        for t in tickets {
            if let Err(e) = t.wait_write(cache) {
                first.get_or_insert(e);
            }
        }
        let vdev = self.slot_vdev(slot);
        match &first {
            Some(e) => self.note_io_error(vdev, e),
            None => self.vol.health().note_ok(vdev),
        }
        match first {
            None => Ok(()),
            Some(e) => Err(e.into()),
        }
    }

    /// Scatter a completed run's segment buffers into its span windows.
    /// Parts are in device-block order and contiguous, so the segments
    /// concatenate exactly onto the parts.
    fn scatter_run(m: MergedRun<&mut [u8]>, bufs: Vec<Box<[u8]>>) {
        let staging: Box<[u8]> = if bufs.len() == 1 {
            // invariant: just checked bufs.len() == 1.
            bufs.into_iter().next().expect("one segment")
        } else {
            let mut s: Vec<u8> = Vec::with_capacity(bufs.iter().map(|b| b.len()).sum());
            for b in bufs {
                s.extend_from_slice(&b);
            }
            s.into_boxed_slice()
        };
        let mut pos = 0usize;
        for (_, win) in m.parts {
            win.copy_from_slice(&staging[pos..pos + win.len()]);
            pos += win.len();
        }
    }

    /// Per-block last-resort read of a degraded run: parity
    /// reconstruction and half-dead mirror pairs go through
    /// [`RawFile::read_lblock`], which fails only where no copy of a
    /// block survives.
    fn read_run_per_block(&self, m: MergedRun<&mut [u8]>) -> Result<()> {
        let bs = self.block_size();
        for (r, win) in m.parts {
            for (i, chunk) in win.chunks_mut(bs).enumerate() {
                self.read_lblock(r.lblock + i as u64, chunk)?;
            }
        }
        Ok(())
    }

    /// Tile `buf` into per-run windows matching `runs(layout, first, n)`.
    /// Runs come back in logical order, so the windows partition the
    /// buffer exactly.
    fn run_windows<'b>(&self, first: u64, buf: &'b mut [u8]) -> Vec<(Run, &'b mut [u8])> {
        let bs = self.block_size();
        let count = (buf.len() / bs) as u64;
        let run_list = runs(&*self.layout, first, count);
        let mut pieces = Vec::with_capacity(run_list.len());
        let mut rest = buf;
        for r in run_list {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.count as usize * bs);
            pieces.push((r, head));
            rest = tail;
        }
        pieces
    }

    /// Read whole logical blocks `[first, first + buf.len()/bs)` via
    /// merged per-device runs, all submitted to the I/O executor before
    /// any is waited on — every device works concurrently and no thread
    /// is spawned, whatever the span size or layout.
    ///
    /// Routing is health-driven: a run on a down device skips its
    /// primary outright (Failed media errors, Rebuilding media is
    /// stale) — shadowed runs reroute to a live mirror, the rest fall
    /// to recovery. A Suspect shadowed primary is hedged: the mirror
    /// transfer is pre-submitted as an immediately-available fallback.
    /// Degraded runs then recover in waves: shadowed layouts race *all*
    /// failed runs' mirror transfers concurrently, then anything still
    /// failing (parity reconstruction, half-dead mirror pairs) goes
    /// per-block.
    fn read_blocks_coalesced(&self, first: u64, buf: &mut [u8]) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let pieces = self.run_windows(first, buf);
        let groups = merge_runs(pieces, self.layout.devices());
        let mirror = match &self.redundancy {
            Redundancy::Shadow { primaries } => Some(*primaries),
            _ => None,
        };
        let mut mirror_wave: Vec<MergedRun<&mut [u8]>> = Vec::new();
        let mut perblock: Vec<MergedRun<&mut [u8]>> = Vec::new();
        {
            let _io = self.enter_io();
            // Phase 1: route and submit every run's segment transfers.
            let mut inflight = Vec::new();
            for m in groups.into_iter().flatten() {
                let down = self.slot_down(m.device);
                let live_mirror = mirror.filter(|p| !self.slot_down(m.device + p));
                match (down, live_mirror) {
                    (true, Some(p)) => {
                        let t = self.submit_read_run(m.device + p, m.dblock, m.count);
                        inflight.push((m, Some(p), t, None));
                    }
                    (true, None) => perblock.push(m),
                    (false, Some(p)) if self.slot_state(m.device) == HealthState::Suspect => {
                        let hedge = self.submit_read_run(m.device + p, m.dblock, m.count);
                        let t = self.submit_read_run(m.device, m.dblock, m.count);
                        inflight.push((m, None, t, Some((p, hedge))));
                    }
                    _ => {
                        let t = self.submit_read_run(m.device, m.dblock, m.count);
                        inflight.push((m, None, t, None));
                    }
                }
            }
            // Phase 2: complete; sort failures by which copies were
            // already tried.
            for (m, rerouted, tickets, hedge) in inflight {
                let slot = m.device + rerouted.unwrap_or(0);
                match self.wait_read_run(slot, tickets)? {
                    Some(bufs) => Self::scatter_run(m, bufs),
                    None => match hedge {
                        Some((p, h)) => match self.wait_read_run(m.device + p, h)? {
                            Some(bufs) => Self::scatter_run(m, bufs),
                            None => perblock.push(m),
                        },
                        None if rerouted.is_some() => perblock.push(m),
                        None if mirror.is_some() => mirror_wave.push(m),
                        None => perblock.push(m),
                    },
                }
            }
        }
        // Recovery wave (outside the unlocked-I/O window): every failed
        // run races its mirror concurrently.
        if let Some(p) = mirror {
            let resubmitted: Vec<_> = mirror_wave
                .drain(..)
                .map(|m| {
                    let t = self.submit_read_run(m.device + p, m.dblock, m.count);
                    (m, t)
                })
                .collect();
            for (m, tickets) in resubmitted {
                match self.wait_read_run(m.device + p, tickets)? {
                    Some(bufs) => Self::scatter_run(m, bufs),
                    None => perblock.push(m),
                }
            }
        }
        for m in perblock {
            self.read_run_per_block(m)?;
        }
        Ok(())
    }

    /// Write whole logical blocks starting at `first` via merged
    /// per-device runs, all submitted to the I/O executor before any is
    /// waited on. Shadowed layouts submit each run to BOTH mirrors
    /// concurrently — one live copy suffices, and a run whose two copies
    /// both fail retries per block so the span only fails where both
    /// copies of a block are dead. Parity never comes here (its
    /// read-modify-write stays per-block under the stripe lock).
    fn write_blocks_coalesced(&self, first: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let bs = self.block_size();
        let count = (data.len() / bs) as u64;
        let run_list = runs(&*self.layout, first, count);
        let mut pieces = Vec::with_capacity(run_list.len());
        let mut rest = data;
        for r in run_list {
            let (head, tail) = rest.split_at(r.count as usize * bs);
            pieces.push((r, head));
            rest = tail;
        }
        let groups = merge_runs(pieces, self.layout.devices());
        let mirror = match &self.redundancy {
            Redundancy::Shadow { primaries } => Some(*primaries),
            _ => None,
        };
        // Shadowed spans hold a write-phase token: counted normally,
        // stripe-locked while a mapped device is Rebuilding so the
        // resync sweep can't interleave (see `enter_shadow_write`).
        let _w = mirror.map(|_| self.enter_shadow_write());
        // Phase 1: gather each run and submit (primary and, for
        // shadowed layouts, the mirror — concurrently).
        let mut inflight = Vec::new();
        for m in groups.into_iter().flatten() {
            let mut gathered: Vec<u8> = Vec::with_capacity(m.count as usize * bs);
            for (_, b) in &m.parts {
                gathered.extend_from_slice(b);
            }
            let second =
                mirror.map(|p| self.submit_write_run(m.device + p, m.dblock, gathered.clone()));
            let primary = self.submit_write_run(m.device, m.dblock, gathered);
            inflight.push((m, primary, second));
        }
        // Phase 2: complete.
        for (m, primary, second) in inflight {
            match second {
                None => self.wait_write_run(m.device, primary)?,
                Some(second) => {
                    let r1 = self.wait_write_run(m.device, primary);
                    // invariant: `second` exists only when mirror is Some.
                    let p = mirror.expect("shadowed run");
                    let r2 = self.wait_write_run(m.device + p, second);
                    if r1.is_err() && r2.is_err() {
                        for (r, part) in &m.parts {
                            for (i, chunk) in part.chunks(bs).enumerate() {
                                self.shadow_write_block(r.lblock + i as u64, p, chunk)?;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Read-modify-write the sub-block range of logical block `l`
    /// starting `within` bytes in.
    fn rmw_partial(&self, l: u64, within: usize, bytes: &[u8]) -> Result<()> {
        // Concurrent sub-block writers sharing a block must not
        // interleave their read/write pairs, or one loses the other's
        // bytes (self-scheduled record writers hit this constantly).
        //
        // The lock is elided under `--cfg pario_check_demo`: that build
        // reintroduces the historical lost-update race on purpose so the
        // model checker's regression test can demonstrate finding it.
        #[cfg(not(all(pario_check, pario_check_demo)))]
        let _g = self.state.rmw_lock.lock();
        let mut scratch = vec![0u8; self.block_size()];
        self.read_lblock(l, &mut scratch)?;
        scratch[within..within + bytes.len()].copy_from_slice(bytes);
        self.write_lblock(l, &scratch)
    }

    // ------------------------------------------------------------------
    // Byte spans and records
    // ------------------------------------------------------------------

    /// Read `out.len()` bytes of the logical byte stream at `offset`.
    /// The span must lie within the allocated capacity.
    ///
    /// Whole-block spans are translated into maximal per-device runs
    /// (one vectored device request each); partial head/tail blocks go
    /// through the single-block path.
    pub fn read_span(&self, offset: u64, out: &mut [u8]) -> Result<()> {
        let bs = self.block_size() as u64;
        let end = offset + out.len() as u64;
        let nblocks = self.nblocks();
        if end > nblocks * bs {
            return Err(FsError::OutOfBounds {
                record: end.div_ceil(bs),
                len: nblocks,
            });
        }
        if out.is_empty() {
            return Ok(());
        }
        let core_start = offset.next_multiple_of(bs).min(end);
        let core_end = (end / bs * bs).max(core_start);
        if offset < core_start {
            let within = (offset % bs) as usize;
            let take = (core_start - offset) as usize;
            let mut scratch = vec![0u8; bs as usize];
            self.read_lblock(offset / bs, &mut scratch)?;
            out[..take].copy_from_slice(&scratch[within..within + take]);
        }
        if core_end > core_start {
            let head = (core_start - offset) as usize;
            let core = (core_end - core_start) as usize;
            self.read_blocks_coalesced(core_start / bs, &mut out[head..head + core])?;
        }
        if end > core_end {
            let take = (end - core_end) as usize;
            let mut scratch = vec![0u8; bs as usize];
            self.read_lblock(core_end / bs, &mut scratch)?;
            let at = out.len() - take;
            out[at..].copy_from_slice(&scratch[..take]);
        }
        Ok(())
    }

    /// Write `data` into the logical byte stream at `offset`, growing the
    /// allocation to cover it. Partial blocks are read-modify-written.
    ///
    /// Whole-block spans are translated into maximal per-device runs;
    /// parity files keep the per-block read-modify-write cycle (the
    /// stripe lock serializes it anyway, so there is nothing to fan out).
    pub fn write_span(&self, offset: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let bs = self.block_size() as u64;
        let end = offset + data.len() as u64;
        let records = end.div_ceil(self.record_size as u64);
        self.ensure_capacity_records(records)?;
        if matches!(self.redundancy, Redundancy::Parity(_)) {
            return self.write_span_per_block(offset, data);
        }
        let core_start = offset.next_multiple_of(bs).min(end);
        let core_end = (end / bs * bs).max(core_start);
        if offset < core_start {
            let take = (core_start - offset) as usize;
            self.rmw_partial(offset / bs, (offset % bs) as usize, &data[..take])?;
        }
        if core_end > core_start {
            let head = (core_start - offset) as usize;
            let core = (core_end - core_start) as usize;
            self.write_blocks_coalesced(core_start / bs, &data[head..head + core])?;
        }
        if end > core_end {
            let take = (end - core_end) as usize;
            self.rmw_partial(core_end / bs, 0, &data[data.len() - take..])?;
        }
        Ok(())
    }

    /// The pre-coalescing span write: one logical block at a time.
    /// Parity files use this so every full-block write runs the
    /// read-modify-write cycle under the stripe lock unchanged.
    fn write_span_per_block(&self, offset: u64, data: &[u8]) -> Result<()> {
        let bs = self.block_size() as u64;
        let mut scratch = vec![0u8; bs as usize];
        let mut pos = 0usize;
        while pos < data.len() {
            let byte = offset + pos as u64;
            let l = byte / bs;
            let within = (byte % bs) as usize;
            let take = ((bs as usize) - within).min(data.len() - pos);
            if within == 0 && take == bs as usize {
                self.write_lblock(l, &data[pos..pos + take])?;
            } else {
                let _g = self.state.rmw_lock.lock();
                self.read_lblock(l, &mut scratch)?;
                scratch[within..within + take].copy_from_slice(&data[pos..pos + take]);
                self.write_lblock(l, &scratch)?;
            }
            pos += take;
        }
        Ok(())
    }

    /// Read record `r` (must be below the file length).
    pub fn read_record(&self, r: u64, out: &mut [u8]) -> Result<()> {
        assert_eq!(out.len(), self.record_size, "record buffer size");
        let len = self.len_records();
        if r >= len {
            return Err(FsError::OutOfBounds { record: r, len });
        }
        self.read_span(r * self.record_size as u64, out)
    }

    /// Write record `r`, extending the file length to cover it.
    pub fn write_record(&self, r: u64, data: &[u8]) -> Result<()> {
        assert_eq!(data.len(), self.record_size, "record buffer size");
        self.write_span(r * self.record_size as u64, data)?;
        self.extend_len_records(r + 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::{FileSpec, Volume, VolumeConfig};

    const BS: usize = 256;

    fn vol(devices: usize) -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices,
            device_blocks: 512,
            block_size: BS,
        })
        .unwrap()
    }

    fn record(r: u64, size: usize) -> Vec<u8> {
        (0..size).map(|i| (r as usize * 31 + i) as u8).collect()
    }

    fn round_trip(f: &RawFile, n: u64) {
        let rs = f.record_size();
        for r in 0..n {
            f.write_record(r, &record(r, rs)).unwrap();
        }
        assert_eq!(f.len_records(), n);
        let mut buf = vec![0u8; rs];
        for r in (0..n).rev() {
            f.read_record(r, &mut buf).unwrap();
            assert_eq!(buf, record(r, rs), "record {r}");
        }
    }

    #[test]
    fn striped_round_trip_with_straddling_records() {
        let v = vol(4);
        // 100-byte records over 256-byte blocks: records straddle blocks.
        let f = v
            .create_file(FileSpec::new(
                "s",
                100,
                4,
                LayoutSpec::Striped {
                    devices: 4,
                    unit: 1,
                },
            ))
            .unwrap();
        round_trip(&f, 50);
    }

    #[test]
    fn partitioned_round_trip() {
        let v = vol(2);
        // 64 records of 64 bytes = 4096 bytes = 16 blocks; 2 partitions.
        let f = v
            .create_file(
                FileSpec::new(
                    "ps",
                    64,
                    8,
                    LayoutSpec::Partitioned {
                        bounds: vec![0, 8, 16],
                        devices: 2,
                    },
                )
                .fixed_capacity(64),
            )
            .unwrap();
        round_trip(&f, 64);
    }

    #[test]
    fn fixed_capacity_rejects_overflow() {
        let v = vol(2);
        let f = v
            .create_file(
                FileSpec::new(
                    "ps",
                    64,
                    8,
                    LayoutSpec::Partitioned {
                        bounds: vec![0, 8, 16],
                        devices: 2,
                    },
                )
                .fixed_capacity(64),
            )
            .unwrap();
        let rec = record(64, 64);
        assert!(matches!(
            f.write_record(64, &rec),
            Err(FsError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn reads_past_length_rejected() {
        let v = vol(1);
        let f = v
            .create_file(FileSpec::new(
                "f",
                32,
                1,
                LayoutSpec::Striped {
                    devices: 1,
                    unit: 1,
                },
            ))
            .unwrap();
        f.write_record(0, &record(0, 32)).unwrap();
        let mut buf = vec![0u8; 32];
        assert!(matches!(
            f.read_record(1, &mut buf),
            Err(FsError::OutOfBounds { record: 1, len: 1 })
        ));
    }

    #[test]
    fn sparse_write_reads_zero_gaps() {
        let v = vol(2);
        let f = v
            .create_file(FileSpec::new(
                "gda",
                64,
                1,
                LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                },
            ))
            .unwrap();
        f.write_record(10, &record(10, 64)).unwrap();
        assert_eq!(f.len_records(), 11);
        let mut buf = vec![0u8; 64];
        f.read_record(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "gap records read as zeros");
        f.read_record(10, &mut buf).unwrap();
        assert_eq!(buf, record(10, 64));
    }

    #[test]
    fn shadow_survives_primary_failure() {
        let v = vol(4);
        let f = v
            .create_file(FileSpec::new(
                "sh",
                BS,
                1,
                LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                })),
            ))
            .unwrap();
        round_trip(&f, 10);
        // Fail primary device 0; reads fall over to its shadow (slot 2).
        v.device(0).fail();
        let mut buf = vec![0u8; BS];
        for r in 0..10 {
            f.read_record(r, &mut buf).unwrap();
            assert_eq!(buf, record(r, BS), "record {r} after primary failure");
        }
        // Writes continue on the surviving copy.
        f.write_record(3, &record(77, BS)).unwrap();
        f.read_record(3, &mut buf).unwrap();
        assert_eq!(buf, record(77, BS));
    }

    #[test]
    fn shadow_fails_only_when_both_copies_fail() {
        let v = vol(2);
        let f = v
            .create_file(FileSpec::new(
                "sh",
                BS,
                1,
                LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                    devices: 1,
                    unit: 1,
                })),
            ))
            .unwrap();
        f.write_record(0, &record(0, BS)).unwrap();
        v.device(0).fail();
        v.device(1).fail();
        let mut buf = vec![0u8; BS];
        assert!(f.read_record(0, &mut buf).is_err());
        assert!(f.write_record(0, &record(1, BS)).is_err());
    }

    fn parity_file(v: &Volume, rotated: bool) -> RawFile {
        v.create_file(FileSpec::new(
            "par",
            BS,
            1,
            LayoutSpec::Parity {
                data_devices: 3,
                rotated,
            },
        ))
        .unwrap()
    }

    #[test]
    fn parity_degraded_read_reconstructs() {
        for rotated in [false, true] {
            let v = vol(4);
            let f = parity_file(&v, rotated);
            round_trip(&f, 12);
            // Fail each device in turn (healing between) and verify every
            // record reconstructs.
            for dead in 0..4 {
                v.device(dead).fail();
                let mut buf = vec![0u8; BS];
                for r in 0..12 {
                    f.read_record(r, &mut buf).unwrap();
                    assert_eq!(
                        buf,
                        record(r, BS),
                        "rotated={rotated} dead={dead} record {r}"
                    );
                }
                v.device(dead).heal();
            }
        }
    }

    #[test]
    fn parity_degraded_write_preserves_reconstruction() {
        let v = vol(4);
        let f = parity_file(&v, false);
        round_trip(&f, 12);
        // Fail a data device, then OVERWRITE a record that lives on it.
        v.device(1).fail();
        let newrec = record(99, BS);
        f.write_record(1, &newrec).unwrap();
        // Still failed: the new value must come back via reconstruction.
        let mut buf = vec![0u8; BS];
        f.read_record(1, &mut buf).unwrap();
        assert_eq!(buf, newrec);
        // Other records unharmed.
        f.read_record(2, &mut buf).unwrap();
        assert_eq!(buf, record(2, BS));
    }

    #[test]
    fn parity_tolerates_parity_device_failure() {
        let v = vol(4);
        let f = parity_file(&v, false); // dedicated parity on slot 3
        round_trip(&f, 6);
        v.device(3).fail();
        // Writes and reads proceed unprotected.
        f.write_record(0, &record(50, BS)).unwrap();
        let mut buf = vec![0u8; BS];
        f.read_record(0, &mut buf).unwrap();
        assert_eq!(buf, record(50, BS));
    }

    #[test]
    fn raid4_parity_device_is_a_write_hotspot_raid5_is_not() {
        // The design choice behind rotated parity: with a dedicated
        // parity device (RAID-4), EVERY logical write also writes that
        // one device; rotation (RAID-5) spreads the load.
        let count_writes = |rotated: bool| -> Vec<u64> {
            let v = vol(4);
            // Journal appends land on device 0 and would skew the
            // data-path distribution this test measures.
            v.set_meta_journaling(false).unwrap();
            let before: Vec<u64> = (0..4).map(|d| v.device(d).counters().writes).collect();
            let f = v
                .create_file(FileSpec::new(
                    "p",
                    BS,
                    1,
                    LayoutSpec::Parity {
                        data_devices: 3,
                        rotated,
                    },
                ))
                .unwrap();
            for r in 0..48u64 {
                f.write_record(r, &record(r, BS)).unwrap();
            }
            (0..4)
                .map(|d| v.device(d).counters().writes - before[d])
                .collect()
        };
        let raid4 = count_writes(false);
        // Dedicated parity on slot 3: one parity write per logical write;
        // each data device only sees its 1/3 share (both sides also pay
        // the same extent-zeroing cost, which cancels in the difference).
        let data_max = raid4[..3].iter().max().unwrap();
        assert!(
            raid4[3] >= data_max + 30,
            "RAID-4 hotspot missing: {raid4:?}"
        );
        let raid5 = count_writes(true);
        let max = *raid5.iter().max().unwrap();
        let min = *raid5.iter().min().unwrap();
        assert!(max < min * 2, "RAID-5 should balance writes: {raid5:?}");
    }

    #[test]
    fn unprotected_file_loses_failed_device() {
        let v = vol(2);
        let f = v
            .create_file(FileSpec::new(
                "plain",
                BS,
                1,
                LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                },
            ))
            .unwrap();
        round_trip(&f, 4);
        v.device(1).fail();
        let mut buf = vec![0u8; BS];
        // Records on device 0 still readable; device 1's are gone.
        assert!(f.read_record(0, &mut buf).is_ok());
        assert!(f.read_record(1, &mut buf).is_err());
    }

    #[test]
    fn span_io_arbitrary_offsets() {
        let v = vol(3);
        let f = v
            .create_file(FileSpec::new(
                "sp",
                1,
                1,
                LayoutSpec::Striped {
                    devices: 3,
                    unit: 2,
                },
            ))
            .unwrap();
        let data: Vec<u8> = (0..2000).map(|i| (i % 251) as u8).collect();
        f.write_span(123, &data).unwrap();
        let mut out = vec![0u8; 2000];
        f.read_span(123, &mut out).unwrap();
        assert_eq!(out, data);
        // Sub-block read in the middle.
        let mut mid = vec![0u8; 10];
        f.read_span(700, &mut mid).unwrap();
        assert_eq!(mid, data[700 - 123..710 - 123]);
    }

    #[test]
    fn fixed_capacity_caps_even_when_allocation_rounds_up() {
        let v = vol(2);
        // 10 records of 64 bytes = 640 bytes → 3 blocks of 256 → the
        // allocation could hold 12 records, but the fixed cap is 10.
        let f = v
            .create_file(
                FileSpec::new(
                    "cap",
                    64,
                    4,
                    LayoutSpec::Striped {
                        devices: 2,
                        unit: 1,
                    },
                )
                .fixed_capacity(10),
            )
            .unwrap();
        f.ensure_capacity_records(10).unwrap();
        assert!(f.nblocks() * BS as u64 / 64 > 10, "allocation rounds up");
        assert_eq!(f.capacity_records(), 10);
        assert!(matches!(
            f.ensure_capacity_records(11),
            Err(FsError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn whole_block_spans_coalesce_into_per_device_runs() {
        let v = vol(4);
        let f = v
            .create_file(FileSpec::new(
                "co",
                BS,
                1,
                LayoutSpec::Striped {
                    devices: 4,
                    unit: 2,
                },
            ))
            .unwrap();
        let nblocks = 64u64;
        f.ensure_capacity_records(nblocks).unwrap();
        let before: Vec<_> = (0..4).map(|d| v.device(d).counters()).collect();
        let data: Vec<u8> = (0..nblocks as usize * BS)
            .map(|i| (i % 241) as u8)
            .collect();
        f.write_span(0, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        f.read_span(0, &mut out).unwrap();
        assert_eq!(out, data);
        let (mut reqs, mut blocks) = (0u64, 0u64);
        for (d, b) in before.iter().enumerate() {
            let c = v.device(d).counters();
            reqs += (c.reads - b.reads) + (c.writes - b.writes);
            blocks += (c.blocks_read - b.blocks_read) + (c.blocks_written - b.blocks_written);
        }
        assert_eq!(
            blocks,
            2 * nblocks,
            "every block moved exactly once per direction"
        );
        // Striped unit-2 keeps each device's share contiguous, so the
        // whole span is one run per device per direction (modulo extent
        // splits) — far below the 128 per-block requests it replaced.
        assert!(reqs <= 16, "expected coalesced requests, got {reqs}");
    }

    #[test]
    fn coalesced_span_survives_shadow_primary_failure() {
        let v = vol(4);
        let f = v
            .create_file(FileSpec::new(
                "shspan",
                BS,
                1,
                LayoutSpec::Shadowed(Box::new(LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                })),
            ))
            .unwrap();
        let data: Vec<u8> = (0..32 * BS).map(|i| (i % 239) as u8).collect();
        f.write_span(0, &data).unwrap();
        v.device(0).fail();
        let mut out = vec![0u8; data.len()];
        f.read_span(0, &mut out).unwrap();
        assert_eq!(out, data, "mirror runs serve the whole span");
        // Writes still land on the surviving copies.
        let data2: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
        f.write_span(0, &data2).unwrap();
        let mut out2 = vec![0u8; data2.len()];
        f.read_span(0, &mut out2).unwrap();
        assert_eq!(out2, data2);
    }

    #[test]
    fn coalesced_span_reconstructs_through_parity() {
        let v = vol(4);
        let f = parity_file(&v, true);
        let data: Vec<u8> = (0..12 * BS).map(|i| (i % 233) as u8).collect();
        f.write_span(0, &data).unwrap();
        for dead in 0..4 {
            v.device(dead).fail();
            let mut out = vec![0u8; data.len()];
            f.read_span(0, &mut out).unwrap();
            assert_eq!(out, data, "dead={dead}");
            v.device(dead).heal();
        }
    }

    #[test]
    fn concurrent_parity_writers_keep_stripes_consistent() {
        let v = vol(4);
        let f = parity_file(&v, true);
        f.ensure_capacity_records(64).unwrap();
        let f = std::sync::Arc::new(f);
        crossbeam::thread::scope(|s| {
            for t in 0..4u64 {
                let f = std::sync::Arc::clone(&f);
                s.spawn(move |_| {
                    for r in 0..16u64 {
                        let idx = t * 16 + r;
                        f.write_record(idx, &record(idx, BS)).unwrap();
                    }
                });
            }
        })
        .unwrap();
        // Fail any device; everything must reconstruct.
        v.device(2).fail();
        let mut buf = vec![0u8; BS];
        for r in 0..64 {
            f.read_record(r, &mut buf).unwrap();
            assert_eq!(buf, record(r, BS), "record {r}");
        }
    }
}
