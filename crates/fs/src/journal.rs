//! The metadata intent journal.
//!
//! Multi-step metadata operations — create, grow/extent-merge, delete —
//! mutate the directory, the allocator and file extents together; a
//! crash between a completed operation and the next checkpoint must not
//! leave them disagreeing with the data on disk. Each such operation
//! appends one **redo record** to the journal area of the meta region
//! (see `superblock` for the layout) before it returns:
//!
//! ```text
//! magic (4) | generation (8) | seq (8) | len (4) | crc32 (4) | payload…
//! ```
//!
//! Records are tagged with the superblock generation current at append
//! time and numbered sequentially within it. Mount replays, in order,
//! the prefix of records whose generation matches the loaded checkpoint
//! and whose sequence and CRC validate — the first mismatch is the torn
//! tail (or a stale earlier generation) and stops the scan. Replay is
//! **idempotent**: a record whose effect is already in the checkpoint
//! (the checkpoint raced the append) is skipped, so the
//! checkpoint-plus-prefix state is consistent at every write boundary.
//!
//! Ordering rules that make this sound:
//! * a create appends its record right after the directory insert and
//!   before any allocation it triggers, so its grow records follow it;
//! * a grow appends *after* the new extents are allocated and
//!   zero-filled — at any crash point where the record exists, the
//!   zero-fill already landed, so replay never rewrites data;
//! * a remove appends *before* blocks are released, so a racing grow
//!   that reuses them journals strictly later.
//!
//! A full journal reports [`Appended::Full`]; the caller checkpoints
//! (which folds everything into the superblock and resets the journal)
//! and the operation is durable anyway. Appends go through the same
//! device-0 flush as checkpoints, so a returned metadata operation is
//! on stable media.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::alloc::Extent;
use crate::crc::crc32;
use crate::error::{FsError, Result};
use crate::meta::FileMeta;
use crate::superblock::{journal_blocks, journal_start};
use crate::volume::{FileState, VolInner};

const MAGIC: &[u8; 4] = b"PJL2";
const HEADER: usize = 28;

/// Journal cursor + the current superblock generation. Guarded by the
/// `fs.journal` (rank 78) mutex on the volume.
pub(crate) struct JournalState {
    /// Generation of the newest durable checkpoint; appended records
    /// are tagged with it.
    pub(crate) gen: u64,
    /// Next free journal block, relative to the journal area start.
    pub(crate) pos: u64,
    /// Next record sequence number within this generation.
    pub(crate) seq: u64,
    /// When false, appends are no-ops (a measurement toggle — crash
    /// consistency then degrades to checkpoint granularity).
    pub(crate) enabled: bool,
}

/// One redo record: a metadata operation that completed in memory.
#[derive(Serialize, Deserialize)]
pub(crate) enum Record {
    /// A file entered the directory (extents empty; growth follows).
    Create {
        /// The new file's full metadata at creation.
        meta: FileMeta,
    },
    /// A file's allocation grew: the appended (pre-merge) extents per
    /// layout slot and the resulting logical block count.
    Grow {
        /// File id (ids are stable across renames the directory
        /// doesn't support yet; names are not).
        id: u64,
        /// Newly allocated extents, indexed by layout slot.
        slots: Vec<Vec<Extent>>,
        /// Logical block count after the grow.
        nblocks: u64,
    },
    /// A file left the directory and its extents were released.
    Remove {
        /// File id.
        id: u64,
    },
}

/// Outcome of an append.
#[derive(PartialEq, Eq, Debug)]
pub(crate) enum Appended {
    /// The record is on stable media.
    Logged,
    /// No room: the caller must checkpoint (`sync_meta`), which makes
    /// the operation durable through the superblock instead.
    Full,
}

/// Append `rec` durably. See [`Appended`] for the full-journal case.
pub(crate) fn append(inner: &VolInner, rec: &Record) -> Result<Appended> {
    let payload = serde_json::to_vec(rec).map_err(|e| FsError::Meta(e.to_string()))?;
    let bs = inner.block_size;
    let nblocks = (HEADER + payload.len()).div_ceil(bs) as u64;
    let capacity = journal_blocks(inner.meta_blocks);
    let mut journal = inner.journal.lock();
    if !journal.enabled {
        return Ok(Appended::Logged);
    }
    if journal.pos + nblocks > capacity {
        return Ok(Appended::Full);
    }
    let mut image = Vec::with_capacity(HEADER + payload.len());
    image.extend_from_slice(MAGIC);
    image.extend_from_slice(&journal.gen.to_le_bytes());
    image.extend_from_slice(&journal.seq.to_le_bytes());
    image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crced = Vec::with_capacity(20 + payload.len());
    crced.extend_from_slice(&journal.gen.to_le_bytes());
    crced.extend_from_slice(&journal.seq.to_le_bytes());
    crced.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    crced.extend_from_slice(&payload);
    image.extend_from_slice(&crc32(&crced).to_le_bytes());
    image.extend_from_slice(&payload);

    let base = journal_start(inner.meta_blocks) + journal.pos;
    let dev = &inner.devices[0];
    let mut block = vec![0u8; bs];
    for (i, chunk) in image.chunks(bs).enumerate() {
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()..].fill(0);
        dev.write_block(base + i as u64, &block)?;
    }
    // A returned metadata operation must survive power loss, exactly
    // like a checkpoint.
    dev.flush()?;
    journal.pos += nblocks;
    journal.seq += 1;
    Ok(Appended::Logged)
}

/// Scan the journal area and apply, in order, every record tagged with
/// `gen` whose sequence and CRC validate; stop at the first mismatch
/// (stale generation or torn tail). Returns the number of records
/// applied. Runs single-threaded at mount, before the volume is shared.
pub(crate) fn replay(inner: &VolInner, gen: u64) -> Result<u64> {
    let bs = inner.block_size;
    let capacity = journal_blocks(inner.meta_blocks);
    let start = journal_start(inner.meta_blocks);
    let dev = &inner.devices[0];
    let mut pos = 0u64;
    let mut seq = 0u64;
    let mut block = vec![0u8; bs];
    while pos < capacity {
        if dev.read_block(start + pos, &mut block).is_err() {
            break;
        }
        if &block[..4] != MAGIC {
            break;
        }
        // invariant: fixed-width header slices always convert.
        let rec_gen = u64::from_le_bytes(block[4..12].try_into().expect("8 bytes"));
        let rec_seq = u64::from_le_bytes(block[12..20].try_into().expect("8 bytes")); // invariant: fixed-width slice
        let len = u32::from_le_bytes(block[20..24].try_into().expect("4 bytes")) as usize; // invariant: fixed-width slice
        let crc = u32::from_le_bytes(block[24..28].try_into().expect("4 bytes")); // invariant: fixed-width slice
        let nblocks = (HEADER + len).div_ceil(bs) as u64;
        if rec_gen != gen || rec_seq != seq || pos + nblocks > capacity {
            break;
        }
        let mut image = vec![0u8; HEADER + len];
        let mut ok = true;
        for i in 0..nblocks {
            if i == 0 {
                let take = bs.min(image.len());
                image[..take].copy_from_slice(&block[..take]);
                continue;
            }
            let mut b = vec![0u8; bs];
            if dev.read_block(start + pos + i, &mut b).is_err() {
                ok = false;
                break;
            }
            let off = (i as usize) * bs;
            let take = bs.min(image.len() - off);
            image[off..off + take].copy_from_slice(&b[..take]);
        }
        if !ok {
            break;
        }
        let mut crced = Vec::with_capacity(20 + len);
        crced.extend_from_slice(&rec_gen.to_le_bytes());
        crced.extend_from_slice(&rec_seq.to_le_bytes());
        crced.extend_from_slice(&(len as u32).to_le_bytes());
        crced.extend_from_slice(&image[HEADER..]);
        if crc32(&crced) != crc {
            break;
        }
        let Ok(rec) = serde_json::from_slice::<Record>(&image[HEADER..]) else {
            break;
        };
        apply(inner, rec)?;
        pos += nblocks;
        seq += 1;
    }
    {
        let mut journal = inner.journal.lock();
        journal.pos = pos;
        journal.seq = seq;
    }
    Ok(seq)
}

/// Apply one replayed record idempotently: if its effect is already in
/// the loaded checkpoint, skip it.
fn apply(inner: &VolInner, rec: Record) -> Result<()> {
    match rec {
        Record::Create { meta } => {
            let mut files = inner.files.write();
            let exists = files.values().any(|s| s.meta.read().id == meta.id)
                || files.contains_key(&meta.name);
            if exists {
                return Ok(());
            }
            {
                let mut alloc = inner.alloc.lock();
                for (slot, extents) in meta.extents.iter().enumerate() {
                    for &e in extents {
                        alloc.reserve(meta.device_map[slot], e);
                    }
                }
            }
            let next = inner.next_id.load(std::sync::atomic::Ordering::Relaxed); // ordering: single-threaded mount
            if meta.id >= next {
                inner
                    .next_id
                    .store(meta.id + 1, std::sync::atomic::Ordering::Relaxed); // ordering: single-threaded mount
            }
            files.insert(meta.name.clone(), Arc::new(FileState::new(meta)));
        }
        Record::Grow { id, slots, nblocks } => {
            let state = find_by_id(inner, id);
            let Some(state) = state else { return Ok(()) };
            let mut meta = state.meta.write();
            if meta.nblocks >= nblocks {
                return Ok(());
            }
            {
                let mut alloc = inner.alloc.lock();
                for (slot, extents) in slots.iter().enumerate() {
                    let dev = meta.device_map[slot];
                    for &e in extents {
                        alloc.reserve(dev, e);
                    }
                }
            }
            // The same contiguity merge create-time growth applies, so
            // the replayed extent lists match what the crashed volume
            // held in memory.
            for (slot, extents) in slots.into_iter().enumerate() {
                let slot_extents = &mut meta.extents[slot];
                for e in extents {
                    match slot_extents.last_mut() {
                        Some(prev) if prev.start + prev.len == e.start => prev.len += e.len,
                        _ => slot_extents.push(e),
                    }
                }
            }
            meta.nblocks = nblocks;
        }
        Record::Remove { id } => {
            let name = {
                let files = inner.files.read();
                files
                    .iter()
                    .find(|(_, s)| s.meta.read().id == id)
                    .map(|(n, _)| n.clone())
            };
            let Some(name) = name else { return Ok(()) };
            let state = inner.files.write().remove(&name);
            // invariant: mount is single-threaded, the entry cannot vanish.
            let state = state.expect("entry present under single-threaded mount");
            let meta = state.meta.read();
            let mut alloc = inner.alloc.lock();
            for (slot, extents) in meta.extents.iter().enumerate() {
                let dev = meta.device_map[slot];
                for &e in extents {
                    alloc.release(dev, e);
                }
            }
        }
    }
    Ok(())
}

fn find_by_id(inner: &VolInner, id: u64) -> Option<Arc<FileState>> {
    let files = inner.files.read();
    files
        .values()
        .find(|s| s.meta.read().id == id)
        .map(Arc::clone)
}
