//! Per-device block allocation.
//!
//! Each device carries a free-block bitmap. Files allocate *extents*
//! (contiguous block runs) per device; keeping extents contiguous matters
//! on modelled rotating disks, where a file scattered across cylinders
//! pays seeks the paper's layouts are designed to avoid.

use serde::{Deserialize, Serialize};

use crate::error::{FsError, Result};

/// A contiguous run of blocks on one device, owned by one file.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Extent {
    /// First absolute device block.
    pub start: u64,
    /// Blocks in the run.
    pub len: u64,
}

impl Extent {
    /// One past the last block.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Free-block bitmap for one device.
#[derive(Clone, Debug)]
struct Bitmap {
    words: Vec<u64>,
    blocks: u64,
    free: u64,
}

impl Bitmap {
    fn new(blocks: u64) -> Bitmap {
        Bitmap {
            words: vec![0; blocks.div_ceil(64) as usize],
            blocks,
            free: blocks,
        }
    }

    fn is_set(&self, b: u64) -> bool {
        self.words[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    fn set(&mut self, b: u64) {
        debug_assert!(!self.is_set(b), "double allocation of block {b}");
        self.words[(b / 64) as usize] |= 1 << (b % 64);
        self.free -= 1;
    }

    fn clear(&mut self, b: u64) {
        debug_assert!(self.is_set(b), "freeing free block {b}");
        self.words[(b / 64) as usize] &= !(1 << (b % 64));
        self.free += 1;
    }

    /// First-fit search for `len` contiguous free blocks.
    fn find_contiguous(&self, len: u64) -> Option<u64> {
        if len == 0 || len > self.blocks {
            return None;
        }
        let mut run_start = 0;
        let mut run_len = 0;
        for b in 0..self.blocks {
            if self.is_set(b) {
                run_len = 0;
                run_start = b + 1;
            } else {
                run_len += 1;
                if run_len == len {
                    return Some(run_start);
                }
            }
        }
        None
    }
}

/// The volume allocator: one bitmap per device.
#[derive(Clone, Debug)]
pub struct Allocator {
    maps: Vec<Bitmap>,
}

impl Allocator {
    /// An allocator for `devices` devices of `blocks_per_device` blocks.
    pub fn new(devices: usize, blocks_per_device: u64) -> Allocator {
        Allocator {
            maps: (0..devices)
                .map(|_| Bitmap::new(blocks_per_device))
                .collect(),
        }
    }

    /// An allocator for devices of differing sizes.
    pub fn with_sizes(sizes: &[u64]) -> Allocator {
        Allocator {
            maps: sizes.iter().map(|&n| Bitmap::new(n)).collect(),
        }
    }

    /// Free blocks remaining on `device`.
    pub fn free_blocks(&self, device: usize) -> u64 {
        self.maps[device].free
    }

    /// Allocate `len` blocks on `device`, contiguous if possible, falling
    /// back to the smallest number of fragments that fit. Returns the
    /// extents in address order.
    pub fn allocate(&mut self, device: usize, len: u64) -> Result<Vec<Extent>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let map = &mut self.maps[device];
        if map.free < len {
            return Err(FsError::NoSpace {
                device,
                requested: len,
            });
        }
        if let Some(start) = map.find_contiguous(len) {
            for b in start..start + len {
                map.set(b);
            }
            return Ok(vec![Extent { start, len }]);
        }
        // Fragmented fallback: greedy sweep collecting free runs.
        let mut extents = Vec::new();
        let mut remaining = len;
        let mut b = 0;
        while remaining > 0 && b < map.blocks {
            if map.is_set(b) {
                b += 1;
                continue;
            }
            let start = b;
            while b < map.blocks && !map.is_set(b) && (b - start) < remaining {
                map.set(b);
                b += 1;
            }
            extents.push(Extent {
                start,
                len: b - start,
            });
            remaining -= b - start;
        }
        debug_assert_eq!(remaining, 0, "free count said space existed");
        Ok(extents)
    }

    /// Mark `extent` on `device` as allocated (used when re-mounting a
    /// persisted volume).
    pub fn reserve(&mut self, device: usize, extent: Extent) {
        let map = &mut self.maps[device];
        for b in extent.start..extent.end() {
            map.set(b);
        }
    }

    /// Return `extent` on `device` to the free pool.
    pub fn release(&mut self, device: usize, extent: Extent) {
        let map = &mut self.maps[device];
        for b in extent.start..extent.end() {
            map.clear(b);
        }
    }
}

/// Translate a device-local *logical* block index (dense, 0-based within
/// the file's allocation on that device) into an absolute device block via
/// the file's extent list.
///
/// # Panics
///
/// Panics if `dblock` lies beyond the extents — callers grow the file
/// before writing past it.
pub fn resolve(extents: &[Extent], dblock: u64) -> u64 {
    let mut remaining = dblock;
    for e in extents {
        if remaining < e.len {
            return e.start + remaining;
        }
        remaining -= e.len;
    }
    panic!("device-local block {dblock} beyond allocated extents");
}

/// Total blocks covered by an extent list.
pub fn extents_len(extents: &[Extent]) -> u64 {
    extents.iter().map(|e| e.len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contiguous_first_fit() {
        let mut a = Allocator::new(1, 64);
        let e1 = a.allocate(0, 10).unwrap();
        assert_eq!(e1, vec![Extent { start: 0, len: 10 }]);
        let e2 = a.allocate(0, 5).unwrap();
        assert_eq!(e2, vec![Extent { start: 10, len: 5 }]);
        assert_eq!(a.free_blocks(0), 49);
    }

    #[test]
    fn release_enables_reuse() {
        let mut a = Allocator::new(1, 16);
        let e = a.allocate(0, 16).unwrap();
        assert!(a.allocate(0, 1).is_err());
        a.release(0, e[0]);
        assert_eq!(a.free_blocks(0), 16);
        assert_eq!(a.allocate(0, 4).unwrap()[0], Extent { start: 0, len: 4 });
    }

    #[test]
    fn fragmented_fallback() {
        let mut a = Allocator::new(1, 16);
        let head = a.allocate(0, 6).unwrap(); // 0..6
        let _mid = a.allocate(0, 4).unwrap(); // 6..10
        a.release(0, head[0]); // free 0..6; free space is 0..6 and 10..16
        let e = a.allocate(0, 10).unwrap();
        assert_eq!(e.len(), 2, "must fragment: {e:?}");
        assert_eq!(extents_len(&e), 10);
        assert_eq!(a.free_blocks(0), 2);
    }

    #[test]
    fn no_space_error() {
        let mut a = Allocator::new(2, 8);
        assert!(a.allocate(1, 9).is_err());
        a.allocate(1, 8).unwrap();
        match a.allocate(1, 1) {
            Err(FsError::NoSpace { device, requested }) => {
                assert_eq!((device, requested), (1, 1));
            }
            other => panic!("expected NoSpace, got {other:?}"),
        }
        // Device 0 unaffected.
        assert_eq!(a.free_blocks(0), 8);
    }

    #[test]
    fn zero_len_allocation_is_empty() {
        let mut a = Allocator::new(1, 8);
        assert!(a.allocate(0, 0).unwrap().is_empty());
        assert_eq!(a.free_blocks(0), 8);
    }

    #[test]
    fn resolve_walks_extents() {
        let extents = vec![Extent { start: 100, len: 3 }, Extent { start: 7, len: 5 }];
        assert_eq!(resolve(&extents, 0), 100);
        assert_eq!(resolve(&extents, 2), 102);
        assert_eq!(resolve(&extents, 3), 7);
        assert_eq!(resolve(&extents, 7), 11);
        assert_eq!(extents_len(&extents), 8);
    }

    #[test]
    #[should_panic(expected = "beyond allocated")]
    fn resolve_past_end_panics() {
        resolve(&[Extent { start: 0, len: 2 }], 2);
    }

    proptest! {
        #[test]
        fn allocations_never_overlap(reqs in proptest::collection::vec(1u64..20, 1..20)) {
            let mut a = Allocator::new(1, 256);
            let mut owned: Vec<Extent> = Vec::new();
            for r in reqs {
                match a.allocate(0, r) {
                    Ok(es) => owned.extend(es),
                    Err(_) => break,
                }
            }
            // Pairwise disjoint.
            for (i, x) in owned.iter().enumerate() {
                for y in owned.iter().skip(i + 1) {
                    prop_assert!(x.end() <= y.start || y.end() <= x.start,
                        "overlap {x:?} {y:?}");
                }
            }
        }

        #[test]
        fn alloc_free_restores_free_count(reqs in proptest::collection::vec(1u64..20, 1..20)) {
            let mut a = Allocator::new(1, 256);
            let mut owned: Vec<Extent> = Vec::new();
            for r in reqs {
                if let Ok(es) = a.allocate(0, r) {
                    owned.extend(es);
                }
            }
            for e in owned {
                a.release(0, e);
            }
            prop_assert_eq!(a.free_blocks(0), 256);
        }
    }
}
