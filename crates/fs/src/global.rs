//! The global view: a parallel file as a conventional sequential file.
//!
//! "The global view is the logical structure of the file perceived as a
//! unit … typically held by operating system utilities and other
//! sequential programs" (§2). [`GlobalReader`] and [`GlobalWriter`] present
//! any parallel file — whatever its internal organization — as an ordinary
//! sequential stream of records, buffered over a multi-block window so a
//! sequential scan costs one vectored request per device per window
//! rather than one device access per block.

use crate::error::{FsError, Result};
use crate::file::RawFile;

/// Blocks buffered per window by the global-view readers. A refill is one
/// `read_span` call, which the file layer turns into at most one vectored
/// request per device — so a sequential scan costs `1 / WINDOW_BLOCKS`
/// device requests per block instead of one.
const WINDOW_BLOCKS: usize = 32;

/// Buffered sequential record reader over the global view.
///
/// Buffers a multi-block window and refills it through the coalesced
/// span path, so a sequential scan issues a handful of large per-device
/// requests rather than one request per block.
pub struct GlobalReader {
    file: RawFile,
    pos: u64,
    win: Vec<u8>,
    /// Byte offset where the window begins.
    win_start: u64,
    /// Valid bytes in `win`.
    win_len: usize,
}

impl GlobalReader {
    /// Start reading `file` from record 0.
    pub fn new(file: RawFile) -> GlobalReader {
        let bs = file.block_size();
        GlobalReader {
            file,
            pos: 0,
            win: vec![0u8; bs * WINDOW_BLOCKS],
            win_start: 0,
            win_len: 0,
        }
    }

    /// Current record position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Reposition to record `r`.
    pub fn seek_record(&mut self, r: u64) {
        self.pos = r;
    }

    /// Refill the window to cover `byte`, block-aligned, clamped to the
    /// allocated capacity.
    fn refill(&mut self, byte: u64) -> Result<()> {
        let bs = self.file.block_size() as u64;
        let start = byte / bs * bs;
        let cap = self.file.nblocks() * bs;
        let len = (self.win.len() as u64).min(cap.saturating_sub(start)) as usize;
        if len == 0 {
            return Err(FsError::OutOfBounds {
                record: byte / bs,
                len: self.file.nblocks(),
            });
        }
        self.file.read_span(start, &mut self.win[..len])?;
        self.win_start = start;
        self.win_len = len;
        Ok(())
    }

    /// Read the record at the current position into `out`; advances.
    /// Returns `false` (and leaves `out` untouched) at end of file.
    pub fn read_record(&mut self, out: &mut [u8]) -> Result<bool> {
        assert_eq!(out.len(), self.file.record_size(), "record buffer size");
        if self.pos >= self.file.len_records() {
            return Ok(false);
        }
        let rs = self.file.record_size() as u64;
        let mut byte = self.pos * rs;
        let mut copied = 0usize;
        while copied < out.len() {
            if byte < self.win_start || byte >= self.win_start + self.win_len as u64 {
                self.refill(byte)?;
            }
            let off = (byte - self.win_start) as usize;
            let take = (self.win_len - off).min(out.len() - copied);
            out[copied..copied + take].copy_from_slice(&self.win[off..off + take]);
            copied += take;
            byte += take as u64;
        }
        self.pos += 1;
        Ok(true)
    }

    /// Read every remaining record, calling `f(record_index, bytes)`.
    pub fn for_each(&mut self, mut f: impl FnMut(u64, &[u8])) -> Result<u64> {
        let mut rec = vec![0u8; self.file.record_size()];
        let mut n = 0;
        loop {
            let idx = self.pos;
            if !self.read_record(&mut rec)? {
                return Ok(n);
            }
            f(idx, &rec);
            n += 1;
        }
    }

    /// The underlying file.
    pub fn file(&self) -> &RawFile {
        &self.file
    }
}

/// Buffered sequential record appender over the global view.
///
/// Writes accumulate in a block buffer and reach the device one whole
/// block at a time; [`finish`](GlobalWriter::finish) flushes the tail and
/// publishes the final length.
pub struct GlobalWriter {
    file: RawFile,
    /// Next record index to write.
    pos: u64,
    buf: Vec<u8>,
    /// Byte offset within the file where `buf` begins.
    buf_start: u64,
    /// Valid bytes in `buf`.
    buf_len: usize,
}

impl GlobalWriter {
    /// Append to `file` starting at its current length.
    pub fn append(file: RawFile) -> GlobalWriter {
        let bs = file.block_size();
        let pos = file.len_records();
        let buf_start = pos * file.record_size() as u64;
        GlobalWriter {
            file,
            pos,
            buf: vec![0u8; bs],
            buf_start,
            buf_len: 0,
        }
    }

    /// Overwrite `file` from record 0 (length resets at finish).
    pub fn truncate(file: RawFile) -> Result<GlobalWriter> {
        file.set_len_records(0)?;
        Ok(GlobalWriter::append(file))
    }

    /// Records written through this writer so far (buffered included).
    pub fn position(&self) -> u64 {
        self.pos
    }

    fn flush_buf(&mut self) -> Result<()> {
        if self.buf_len > 0 {
            let data = &self.buf[..self.buf_len];
            self.file.write_span(self.buf_start, data)?;
            self.buf_start += self.buf_len as u64;
            self.buf_len = 0;
        }
        Ok(())
    }

    /// Append one record.
    pub fn write_record(&mut self, data: &[u8]) -> Result<()> {
        assert_eq!(data.len(), self.file.record_size(), "record buffer size");
        let mut copied = 0;
        while copied < data.len() {
            let space = self.buf.len() - self.buf_len;
            let take = space.min(data.len() - copied);
            self.buf[self.buf_len..self.buf_len + take]
                .copy_from_slice(&data[copied..copied + take]);
            self.buf_len += take;
            copied += take;
            if self.buf_len == self.buf.len() {
                self.flush_buf()?;
            }
        }
        self.pos += 1;
        Ok(())
    }

    /// Flush buffered data and publish the file length.
    pub fn finish(mut self) -> Result<u64> {
        self.flush_buf()?;
        self.file.extend_len_records(self.pos);
        Ok(self.pos)
    }
}

/// The global view as a standard byte stream: implements
/// [`std::io::Read`] and [`std::io::Seek`], so any conventional Rust
/// code — compression, parsing, `std::io::copy` — consumes a parallel
/// file without knowing it is one. This is the paper's "standard
/// sequential software such as editors, graphics utilities, print
/// spoolers" interface, in Rust idiom.
pub struct ByteReader {
    file: RawFile,
    pos: u64,
    win: Vec<u8>,
    win_start: u64,
    win_len: usize,
}

impl ByteReader {
    /// Read the file's logical bytes (`len_records * record_size`).
    pub fn new(file: RawFile) -> ByteReader {
        let bs = file.block_size();
        ByteReader {
            file,
            pos: 0,
            win: vec![0u8; bs * WINDOW_BLOCKS],
            win_start: 0,
            win_len: 0,
        }
    }

    /// Total logical bytes.
    pub fn len_bytes(&self) -> u64 {
        self.file.len_records() * self.file.record_size() as u64
    }
}

impl std::io::Read for ByteReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let total = self.len_bytes();
        if self.pos >= total || out.is_empty() {
            return Ok(0);
        }
        if self.pos < self.win_start || self.pos >= self.win_start + self.win_len as u64 {
            let bs = self.file.block_size() as u64;
            let start = self.pos / bs * bs;
            let cap = self.file.nblocks() * bs;
            let len = (self.win.len() as u64).min(cap - start) as usize;
            self.file
                .read_span(start, &mut self.win[..len])
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            self.win_start = start;
            self.win_len = len;
        }
        let off = (self.pos - self.win_start) as usize;
        let take = (self.win_len - off)
            .min(out.len())
            .min((total - self.pos) as usize);
        out[..take].copy_from_slice(&self.win[off..off + take]);
        self.pos += take as u64;
        Ok(take)
    }
}

impl std::io::Seek for ByteReader {
    fn seek(&mut self, from: std::io::SeekFrom) -> std::io::Result<u64> {
        use std::io::SeekFrom;
        let total = self.len_bytes() as i64;
        let target = match from {
            SeekFrom::Start(o) => o as i64,
            SeekFrom::End(d) => total + d,
            SeekFrom::Current(d) => self.pos as i64 + d,
        };
        if target < 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "seek before start",
            ));
        }
        self.pos = target as u64;
        Ok(self.pos)
    }
}

/// The appending global view as a standard byte sink: implements
/// [`std::io::Write`]. Bytes must form whole records by the time
/// [`finish`](ByteWriter::finish) is called; a ragged tail is an error
/// (the paper assumes fixed-size records).
pub struct ByteWriter {
    inner: Option<GlobalWriter>,
    rec: Vec<u8>,
    fill: usize,
}

impl ByteWriter {
    /// Append bytes to `file`, packing them into records.
    pub fn append(file: RawFile) -> ByteWriter {
        let rs = file.record_size();
        ByteWriter {
            inner: Some(GlobalWriter::append(file)),
            rec: vec![0u8; rs],
            fill: 0,
        }
    }

    /// Flush whole records and publish the new length. Fails on a
    /// partial trailing record.
    pub fn finish(mut self) -> Result<u64> {
        if self.fill != 0 {
            return Err(FsError::BadSpec(format!(
                "byte stream ended mid-record ({} of {} bytes)",
                self.fill,
                self.rec.len()
            )));
        }
        // invariant: finish() consumes self, so the writer is still present.
        self.inner.take().expect("writer present").finish()
    }
}

impl std::io::Write for ByteWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let mut consumed = 0;
        while consumed < data.len() {
            let space = self.rec.len() - self.fill;
            let take = space.min(data.len() - consumed);
            self.rec[self.fill..self.fill + take].copy_from_slice(&data[consumed..consumed + take]);
            self.fill += take;
            consumed += take;
            if self.fill == self.rec.len() {
                self.inner
                    .as_mut()
                    // invariant: the writer is only taken by finish(), which consumes self.
                    .expect("writer present")
                    .write_record(&self.rec)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                self.fill = 0;
            }
        }
        Ok(consumed)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Copy `src` into `dst` through the global views.
///
/// The two files may have entirely different layouts and organizations;
/// only record sizes must match. This is the paper's "conversion utility"
/// escape hatch for internal-view mismatches (§5), and the transparent
/// standard-file pathway for sequential tools.
///
/// The copy streams multi-block chunks through the coalesced span path
/// on both sides, so each chunk costs at most one vectored request per
/// device per file rather than a request per record.
pub fn copy_global(src: &RawFile, dst: &RawFile) -> Result<u64> {
    if src.record_size() != dst.record_size() {
        return Err(FsError::BadSpec(format!(
            "record sizes differ: {} vs {}",
            src.record_size(),
            dst.record_size()
        )));
    }
    let n = src.len_records();
    let total = n * src.record_size() as u64;
    dst.set_len_records(0)?;
    let chunk = src.block_size() * WINDOW_BLOCKS;
    let mut buf = vec![0u8; chunk];
    let mut off = 0u64;
    while off < total {
        let take = chunk.min((total - off) as usize);
        src.read_span(off, &mut buf[..take])?;
        dst.write_span(off, &buf[..take])?;
        off += take as u64;
    }
    dst.set_len_records(n)?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::{FileSpec, Volume, VolumeConfig};
    use pario_layout::LayoutSpec;

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 256,
            block_size: 256,
        })
        .unwrap()
    }

    fn rec(i: u64, size: usize) -> Vec<u8> {
        (0..size).map(|j| (i as usize * 7 + j) as u8).collect()
    }

    #[test]
    fn write_then_read_sequentially() {
        let v = vol();
        let f = v
            .create_file(FileSpec::new(
                "g",
                100,
                4,
                LayoutSpec::Striped {
                    devices: 4,
                    unit: 1,
                },
            ))
            .unwrap();
        let mut w = GlobalWriter::append(f.clone());
        for i in 0..33u64 {
            w.write_record(&rec(i, 100)).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 33);
        assert_eq!(f.len_records(), 33);

        let mut r = GlobalReader::new(f);
        let mut buf = vec![0u8; 100];
        let mut i = 0u64;
        while r.read_record(&mut buf).unwrap() {
            assert_eq!(buf, rec(i, 100), "record {i}");
            i += 1;
        }
        assert_eq!(i, 33);
        // EOF is sticky.
        assert!(!r.read_record(&mut buf).unwrap());
    }

    #[test]
    fn seek_and_for_each() {
        let v = vol();
        let f = v
            .create_file(FileSpec::new(
                "g",
                64,
                1,
                LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                },
            ))
            .unwrap();
        for i in 0..10u64 {
            f.write_record(i, &rec(i, 64)).unwrap();
        }
        let mut r = GlobalReader::new(f);
        r.seek_record(7);
        let mut count = 0;
        let n = r
            .for_each(|idx, bytes| {
                assert_eq!(bytes, rec(idx, 64).as_slice());
                count += 1;
            })
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(count, 3);
    }

    #[test]
    fn append_continues_after_existing_records() {
        let v = vol();
        let f = v
            .create_file(FileSpec::new(
                "g",
                64,
                1,
                LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                },
            ))
            .unwrap();
        for i in 0..5u64 {
            f.write_record(i, &rec(i, 64)).unwrap();
        }
        let mut w = GlobalWriter::append(f.clone());
        for i in 5..12u64 {
            w.write_record(&rec(i, 64)).unwrap();
        }
        w.finish().unwrap();
        let mut buf = vec![0u8; 64];
        for i in 0..12u64 {
            f.read_record(i, &mut buf).unwrap();
            assert_eq!(buf, rec(i, 64), "record {i}");
        }
    }

    #[test]
    fn copy_between_different_layouts() {
        let v = vol();
        let src = v
            .create_file(
                FileSpec::new(
                    "ps",
                    64,
                    4,
                    LayoutSpec::Partitioned {
                        bounds: vec![0, 8, 16],
                        devices: 2,
                    },
                )
                .fixed_capacity(64),
            )
            .unwrap();
        for i in 0..64u64 {
            src.write_record(i, &rec(i, 64)).unwrap();
        }
        let dst = v
            .create_file(FileSpec::new(
                "is",
                64,
                4,
                LayoutSpec::Striped {
                    devices: 4,
                    unit: 1,
                },
            ))
            .unwrap();
        assert_eq!(copy_global(&src, &dst).unwrap(), 64);
        let mut buf = vec![0u8; 64];
        for i in 0..64u64 {
            dst.read_record(i, &mut buf).unwrap();
            assert_eq!(buf, rec(i, 64), "record {i}");
        }
    }

    #[test]
    fn byte_reader_is_a_standard_stream() {
        use std::io::{Read, Seek, SeekFrom};
        let v = vol();
        let f = v
            .create_file(FileSpec::new(
                "b",
                100,
                4,
                LayoutSpec::Striped {
                    devices: 4,
                    unit: 1,
                },
            ))
            .unwrap();
        for i in 0..20u64 {
            f.write_record(i, &rec(i, 100)).unwrap();
        }
        let mut r = ByteReader::new(f.clone());
        assert_eq!(r.len_bytes(), 2000);
        // std::io::copy drains the whole logical stream.
        let mut all = Vec::new();
        std::io::copy(&mut r, &mut all).unwrap();
        assert_eq!(all.len(), 2000);
        for i in 0..20u64 {
            assert_eq!(&all[i as usize * 100..(i as usize + 1) * 100], rec(i, 100));
        }
        // Seek and partial reads.
        r.seek(SeekFrom::Start(150)).unwrap();
        let mut b = [0u8; 10];
        r.read_exact(&mut b).unwrap();
        assert_eq!(&b, &rec(1, 100)[50..60]);
        r.seek(SeekFrom::End(-5)).unwrap();
        let mut tail = Vec::new();
        r.read_to_end(&mut tail).unwrap();
        assert_eq!(tail, &rec(19, 100)[95..]);
        assert!(r.seek(SeekFrom::Current(-100_000)).is_err());
    }

    #[test]
    fn byte_writer_packs_records() {
        use std::io::Write;
        let v = vol();
        let f = v
            .create_file(FileSpec::new(
                "bw",
                100,
                4,
                LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                },
            ))
            .unwrap();
        let mut w = ByteWriter::append(f.clone());
        // Write 7 records' worth of bytes in awkward chunk sizes.
        let mut stream = Vec::new();
        for i in 0..7u64 {
            stream.extend_from_slice(&rec(i, 100));
        }
        for chunk in stream.chunks(37) {
            w.write_all(chunk).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 7);
        let mut buf = vec![0u8; 100];
        for i in 0..7u64 {
            f.read_record(i, &mut buf).unwrap();
            assert_eq!(buf, rec(i, 100));
        }
    }

    #[test]
    fn byte_writer_rejects_ragged_tail() {
        use std::io::Write;
        let v = vol();
        let f = v
            .create_file(FileSpec::new(
                "rag",
                100,
                4,
                LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                },
            ))
            .unwrap();
        let mut w = ByteWriter::append(f);
        w.write_all(&[1u8; 150]).unwrap();
        assert!(matches!(w.finish(), Err(FsError::BadSpec(_))));
    }

    #[test]
    fn sequential_scan_coalesces_device_requests() {
        let v = vol();
        let f = v
            .create_file(FileSpec::new(
                "scan",
                256,
                1,
                LayoutSpec::Striped {
                    devices: 4,
                    unit: 2,
                },
            ))
            .unwrap();
        for i in 0..64u64 {
            f.write_record(i, &rec(i, 256)).unwrap();
        }
        let before: Vec<_> = (0..4).map(|d| v.device(d).counters()).collect();
        let mut r = GlobalReader::new(f);
        let n = r
            .for_each(|idx, bytes| assert_eq!(bytes, rec(idx, 256).as_slice()))
            .unwrap();
        assert_eq!(n, 64);
        let (mut reqs, mut blocks) = (0u64, 0u64);
        for (d, b) in before.iter().enumerate() {
            let c = v.device(d).counters();
            reqs += c.reads - b.reads;
            blocks += c.blocks_read - b.blocks_read;
        }
        assert_eq!(blocks, 64, "each block read exactly once");
        // 64 blocks = 2 window refills x at most 1 request per device.
        assert!(
            reqs * 4 <= blocks,
            "expected >=4x request coalescing: {reqs} requests for {blocks} blocks"
        );
    }

    #[test]
    fn copy_rejects_mismatched_record_sizes() {
        let v = vol();
        let a = v
            .create_file(FileSpec::new(
                "a",
                64,
                1,
                LayoutSpec::Striped {
                    devices: 1,
                    unit: 1,
                },
            ))
            .unwrap();
        let b = v
            .create_file(FileSpec::new(
                "b",
                128,
                1,
                LayoutSpec::Striped {
                    devices: 1,
                    unit: 1,
                },
            ))
            .unwrap();
        assert!(matches!(copy_global(&a, &b), Err(FsError::BadSpec(_))));
    }
}
