//! File metadata.
//!
//! A file's durable identity: its record geometry, its placement
//! ([`LayoutSpec`]), which volume devices it occupies, and the extents it
//! has been allocated. The `org` field carries the parallel-file
//! organization tag owned by `pario-core`; the file system itself is
//! organization-agnostic — exactly the paper's split between file
//! *structures* (here) and *access methods* on them (core).

use serde::{Deserialize, Serialize};

use pario_layout::LayoutSpec;

use crate::alloc::Extent;

/// Durable per-file metadata.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FileMeta {
    /// Unique id within the volume.
    pub id: u64,
    /// File name (directory key).
    pub name: String,
    /// Fixed record size in bytes (the paper assumes equal-size records).
    pub record_size: usize,
    /// Records per logical file block — the paper's partitioning grain.
    pub records_per_block: usize,
    /// Current length in records.
    pub len_records: u64,
    /// Data placement.
    pub layout: LayoutSpec,
    /// Opaque organization tag (set and interpreted by `pario-core`).
    pub org: String,
    /// Layout device slot -> volume device index.
    pub device_map: Vec<usize>,
    /// Capacity ceiling for fixed-size organizations (PS/PDA), in records.
    pub fixed_capacity_records: Option<u64>,
    /// Logical volume blocks currently allocated.
    pub nblocks: u64,
    /// Allocated extents, indexed by layout device slot.
    pub extents: Vec<Vec<Extent>>,
}

impl FileMeta {
    /// File length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len_records * self.record_size as u64
    }

    /// Bytes per logical file block (the paper's block).
    pub fn file_block_bytes(&self) -> usize {
        self.record_size * self.records_per_block
    }

    /// Number of logical file blocks (paper blocks), counting a short tail.
    pub fn file_blocks(&self) -> u64 {
        let fb = self.file_block_bytes() as u64;
        self.len_bytes().div_ceil(fb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> FileMeta {
        FileMeta {
            id: 1,
            name: "t".into(),
            record_size: 100,
            records_per_block: 4,
            len_records: 10,
            layout: LayoutSpec::Striped {
                devices: 2,
                unit: 1,
            },
            org: "S".into(),
            device_map: vec![0, 1],
            fixed_capacity_records: None,
            nblocks: 0,
            extents: vec![Vec::new(), Vec::new()],
        }
    }

    #[test]
    fn derived_geometry() {
        let m = meta();
        assert_eq!(m.len_bytes(), 1000);
        assert_eq!(m.file_block_bytes(), 400);
        // 1000 bytes over 400-byte file blocks = 3 blocks (short tail).
        assert_eq!(m.file_blocks(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let m = meta();
        let json = serde_json::to_string(&m).unwrap();
        let back: FileMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, m.name);
        assert_eq!(back.layout, m.layout);
        assert_eq!(back.len_records, 10);
    }
}
