//! Per-device health state machine.
//!
//! Crockett's file concepts assume devices that fail and come back; this
//! module gives the volume a place to remember which regime each device
//! is in, driven by error feedback from the I/O executor:
//!
//! ```text
//!             transient streak >= suspect_after
//!   Healthy ---------------------------------------> Suspect
//!      ^  \                                          /  |
//!      |   \     recover_after consecutive OKs      /   |
//!      |    +--------------------------------------+    |
//!      |                                                |
//!      |          DeviceFailed / mark_failed            |
//!      +<---- Rebuilding <---- Failed <-----------------+
//!        complete       begin_rebuild
//!        (Rebuilding -> Failed is also legal: a device can die again
//!         mid-rebuild.)
//! ```
//!
//! The board keeps two views of the same state:
//!
//! * a lock-free **mirror** (`pario_check::AtomicU64` per device, SeqCst)
//!   that the read/write hot paths consult on every block access, and
//! * the authoritative **board** behind a [`LockLevel::FsHealth`] mutex
//!   (rank 80, above every I/O-path lock, because errors are reported
//!   from inside RMW/stripe critical sections) where transitions are
//!   decided and recorded.
//!
//! `note_ok` is a single atomic streak reset plus a mirror load unless
//! the device is Suspect, so the happy path stays lock-free.

use std::fmt;

use pario_check::{AtomicU64, LockLevel, Mutex};
use pario_disk::DiskError;

use std::sync::atomic::Ordering;

/// The regime a device is currently in.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum HealthState {
    /// Normal service: route I/O to the device directly.
    Healthy = 0,
    /// A streak of transient faults: still served, but shadowed reads
    /// hedge against the mirror and the device is watched for recovery.
    Suspect = 1,
    /// Fail-stop observed: the device is skipped and I/O is degraded.
    Failed = 2,
    /// An online rebuild is replaying redundancy onto the device. Its
    /// media is writable but **stale**, so reads still route around it.
    Rebuilding = 3,
}

impl HealthState {
    fn from_u64(v: u64) -> HealthState {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Suspect,
            2 => HealthState::Failed,
            _ => HealthState::Rebuilding,
        }
    }

    /// Whether I/O must route around the device (reads of Rebuilding
    /// media would return stale data; Failed media returns errors).
    pub fn is_down(self) -> bool {
        matches!(self, HealthState::Failed | HealthState::Rebuilding)
    }

    /// Stable single-byte tag for wire protocols (`pario-net` carries
    /// the server's `Degraded` advisory across processes). Round-trips
    /// through [`from_wire_tag`](HealthState::from_wire_tag).
    pub fn wire_tag(self) -> u8 {
        self as u8
    }

    /// Decode a [`wire_tag`](HealthState::wire_tag); `None` for bytes no
    /// version of this enum ever produced.
    pub fn from_wire_tag(tag: u8) -> Option<HealthState> {
        match tag {
            0 => Some(HealthState::Healthy),
            1 => Some(HealthState::Suspect),
            2 => Some(HealthState::Failed),
            3 => Some(HealthState::Rebuilding),
            _ => None,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Failed => "failed",
            HealthState::Rebuilding => "rebuilding",
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether `from -> to` is an edge of the state machine above. Exposed
/// so model tests can assert no interleaving manufactures an illegal
/// transition.
pub fn legal_transition(from: HealthState, to: HealthState) -> bool {
    use HealthState::*;
    matches!(
        (from, to),
        (Healthy, Suspect)
            | (Suspect, Healthy)
            | (Healthy, Failed)
            | (Suspect, Failed)
            | (Failed, Rebuilding)
            | (Healthy, Rebuilding)
            | (Suspect, Rebuilding)
            | (Rebuilding, Healthy)
            | (Rebuilding, Failed)
    )
}

/// Thresholds driving Healthy <-> Suspect demotion/recovery.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive transient faults before a Healthy device is demoted
    /// to Suspect.
    pub suspect_after: u32,
    /// Consecutive successful operations before a Suspect device is
    /// promoted back to Healthy.
    pub recover_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            suspect_after: 3,
            recover_after: 8,
        }
    }
}

/// A point-in-time snapshot of one device's health record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceHealth {
    /// Current state.
    pub state: HealthState,
    /// Total transient faults observed (after executor retries gave up).
    pub transient_errors: u64,
    /// Total permanent / unclassified errors observed.
    pub permanent_errors: u64,
    /// Every state the device has been in, starting at Healthy.
    pub transitions: Vec<HealthState>,
}

/// Callback fired after a device changes state, with the board mutex
/// already released (so the listener may take lower-ranked locks — the
/// volume cache uses this to drop frames of Failed/Rebuilding devices).
pub type HealthListener = std::sync::Arc<dyn Fn(usize, HealthState) + Send + Sync>;

struct Slot {
    state: HealthState,
    consecutive_ok: u32,
    transient_errors: u64,
    permanent_errors: u64,
    history: Vec<HealthState>,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: HealthState::Healthy,
            consecutive_ok: 0,
            transient_errors: 0,
            permanent_errors: 0,
            history: vec![HealthState::Healthy],
        }
    }
}

/// Per-volume device health registry: one slot per device, indexed by
/// volume device number.
pub struct HealthBoard {
    /// Lock-free mirror of each slot's state for hot-path routing.
    mirror: Vec<AtomicU64>,
    /// Consecutive-transient streak per device; reset by any success.
    streak: Vec<AtomicU64>,
    /// Authoritative state, counters and transition history.
    board: Mutex<Vec<Slot>>,
    policy: HealthPolicy,
    /// Transition listener, set at most once (lock-free reads). Invoked
    /// strictly *after* the board mutex is released: the board is rank
    /// 80, so calling out while holding it would invert the hierarchy
    /// against any lower-ranked lock the listener takes.
    listener: std::sync::OnceLock<HealthListener>,
}

impl HealthBoard {
    /// A board for `n` devices, all initially Healthy.
    pub fn new(n: usize, policy: HealthPolicy) -> HealthBoard {
        HealthBoard {
            mirror: (0..n).map(|_| AtomicU64::new(0)).collect(),
            streak: (0..n).map(|_| AtomicU64::new(0)).collect(),
            board: Mutex::new_named((0..n).map(|_| Slot::new()).collect(), LockLevel::FsHealth),
            policy,
            listener: std::sync::OnceLock::new(),
        }
    }

    /// Register the transition listener. Returns `false` (keeping the
    /// existing one) if a listener was already set.
    pub fn set_listener(&self, listener: HealthListener) -> bool {
        self.listener.set(listener).is_ok()
    }

    /// Fire the listener for a committed transition. Must be called with
    /// the board mutex released.
    fn notify(&self, d: usize, to: HealthState) {
        if let Some(l) = self.listener.get() {
            l(d, to);
        }
    }

    /// Number of devices tracked.
    pub fn len(&self) -> usize {
        self.mirror.len()
    }

    /// Whether the board tracks zero devices.
    pub fn is_empty(&self) -> bool {
        self.mirror.is_empty()
    }

    /// The thresholds this board was built with.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Current state of device `d` (lock-free).
    pub fn state(&self, d: usize) -> HealthState {
        HealthState::from_u64(self.mirror[d].load(Ordering::SeqCst))
    }

    /// Whether I/O must route around device `d` (lock-free).
    pub fn is_down(&self, d: usize) -> bool {
        self.state(d).is_down()
    }

    /// Whether any device is not Healthy.
    pub fn any_degraded(&self) -> bool {
        (0..self.len()).any(|d| self.state(d) != HealthState::Healthy)
    }

    /// The lowest-indexed device that is not Healthy, with its state —
    /// the advisory service layers attach to brownout errors. Lock-free.
    pub fn first_degraded(&self) -> Option<(usize, HealthState)> {
        (0..self.len())
            .map(|d| (d, self.state(d)))
            .find(|(_, s)| *s != HealthState::Healthy)
    }

    fn transition(&self, slot: &mut Slot, d: usize, to: HealthState) {
        debug_assert!(
            legal_transition(slot.state, to),
            "illegal health transition {} -> {} on device {}",
            slot.state,
            to,
            d
        );
        slot.state = to;
        slot.consecutive_ok = 0;
        slot.history.push(to);
        self.streak[d].store(0, Ordering::SeqCst);
        self.mirror[d].store(to as u64, Ordering::SeqCst);
    }

    /// Record a successful operation on device `d`. Lock-free unless
    /// the device is Suspect (recovery accounting needs the board).
    pub fn note_ok(&self, d: usize) {
        self.streak[d].store(0, Ordering::SeqCst);
        if self.state(d) != HealthState::Suspect {
            return;
        }
        let mut fired = None;
        {
            let mut board = self.board.lock();
            let slot = &mut board[d];
            if slot.state != HealthState::Suspect {
                return;
            }
            slot.consecutive_ok += 1;
            if slot.consecutive_ok >= self.policy.recover_after {
                self.transition(slot, d, HealthState::Healthy);
                fired = Some(HealthState::Healthy);
            }
        }
        if let Some(to) = fired {
            self.notify(d, to);
        }
    }

    /// Record a failed operation on device `d`, classifying `err` per
    /// the [`DiskError`] taxonomy: transient faults feed the Suspect
    /// streak, fail-stop errors force Failed (from any state, including
    /// mid-rebuild), anything else is counted without a transition.
    pub fn note_error(&self, d: usize, err: &DiskError) {
        let mut fired = None;
        if err.is_transient() {
            let run = self.streak[d].fetch_add(1, Ordering::SeqCst) + 1;
            let mut board = self.board.lock();
            let slot = &mut board[d];
            slot.transient_errors += 1;
            slot.consecutive_ok = 0;
            if slot.state == HealthState::Healthy && run >= u64::from(self.policy.suspect_after) {
                self.transition(slot, d, HealthState::Suspect);
                fired = Some(HealthState::Suspect);
            }
        } else {
            let fail_stop = matches!(err, DiskError::DeviceFailed { .. });
            let mut board = self.board.lock();
            let slot = &mut board[d];
            slot.permanent_errors += 1;
            slot.consecutive_ok = 0;
            if fail_stop && slot.state != HealthState::Failed {
                self.transition(slot, d, HealthState::Failed);
                fired = Some(HealthState::Failed);
            }
        }
        if let Some(to) = fired {
            self.notify(d, to);
        }
    }

    /// Force device `d` to Failed (administrative / rebuild-abort path).
    pub fn mark_failed(&self, d: usize) {
        let mut fired = false;
        {
            let mut board = self.board.lock();
            let slot = &mut board[d];
            if slot.state != HealthState::Failed {
                self.transition(slot, d, HealthState::Failed);
                fired = true;
            }
        }
        if fired {
            self.notify(d, HealthState::Failed);
        }
    }

    /// Enter Rebuilding: the device's media is being repopulated and
    /// must keep routing as down until [`HealthBoard::complete_rebuild`].
    pub fn begin_rebuild(&self, d: usize) {
        let mut fired = false;
        {
            let mut board = self.board.lock();
            let slot = &mut board[d];
            if slot.state != HealthState::Rebuilding {
                self.transition(slot, d, HealthState::Rebuilding);
                fired = true;
            }
        }
        if fired {
            self.notify(d, HealthState::Rebuilding);
        }
    }

    /// Leave Rebuilding for Healthy. Returns `false` (and does nothing)
    /// if the device is no longer Rebuilding — e.g. it failed again
    /// mid-rebuild — so a racing failure report is never lost.
    pub fn complete_rebuild(&self, d: usize) -> bool {
        {
            let mut board = self.board.lock();
            let slot = &mut board[d];
            if slot.state != HealthState::Rebuilding {
                return false;
            }
            self.transition(slot, d, HealthState::Healthy);
        }
        self.notify(d, HealthState::Healthy);
        true
    }

    /// Snapshot every device's record.
    pub fn snapshot(&self) -> Vec<DeviceHealth> {
        let board = self.board.lock();
        board
            .iter()
            .map(|s| DeviceHealth {
                state: s.state,
                transient_errors: s.transient_errors,
                permanent_errors: s.permanent_errors,
                transitions: s.history.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient() -> DiskError {
        DiskError::Transient { device: "t".into() }
    }

    fn fail_stop() -> DiskError {
        DiskError::DeviceFailed { device: "t".into() }
    }

    #[test]
    fn transient_streak_demotes_to_suspect() {
        let b = HealthBoard::new(2, HealthPolicy::default());
        for _ in 0..2 {
            b.note_error(0, &transient());
        }
        assert_eq!(b.state(0), HealthState::Healthy);
        b.note_error(0, &transient());
        assert_eq!(b.state(0), HealthState::Suspect);
        assert_eq!(b.state(1), HealthState::Healthy);
    }

    #[test]
    fn an_ok_breaks_the_streak() {
        let b = HealthBoard::new(1, HealthPolicy::default());
        b.note_error(0, &transient());
        b.note_error(0, &transient());
        b.note_ok(0);
        b.note_error(0, &transient());
        assert_eq!(b.state(0), HealthState::Healthy);
    }

    #[test]
    fn suspect_recovers_after_quiet_run() {
        let b = HealthBoard::new(1, HealthPolicy::default());
        for _ in 0..3 {
            b.note_error(0, &transient());
        }
        assert_eq!(b.state(0), HealthState::Suspect);
        for _ in 0..7 {
            b.note_ok(0);
        }
        assert_eq!(b.state(0), HealthState::Suspect);
        b.note_ok(0);
        assert_eq!(b.state(0), HealthState::Healthy);
        let snap = b.snapshot();
        assert_eq!(
            snap[0].transitions,
            vec![
                HealthState::Healthy,
                HealthState::Suspect,
                HealthState::Healthy
            ]
        );
    }

    #[test]
    fn fail_stop_forces_failed_from_any_state() {
        let b = HealthBoard::new(1, HealthPolicy::default());
        b.note_error(0, &fail_stop());
        assert_eq!(b.state(0), HealthState::Failed);
        assert!(b.is_down(0));
        // Dies again mid-rebuild: Rebuilding -> Failed is legal and a
        // racing complete_rebuild must report failure.
        b.begin_rebuild(0);
        assert_eq!(b.state(0), HealthState::Rebuilding);
        assert!(b.is_down(0));
        b.note_error(0, &fail_stop());
        assert_eq!(b.state(0), HealthState::Failed);
        assert!(!b.complete_rebuild(0));
        assert_eq!(b.state(0), HealthState::Failed);
    }

    #[test]
    fn rebuild_round_trip() {
        let b = HealthBoard::new(1, HealthPolicy::default());
        b.mark_failed(0);
        b.begin_rebuild(0);
        assert!(b.complete_rebuild(0));
        assert_eq!(b.state(0), HealthState::Healthy);
        assert!(!b.any_degraded());
        let snap = b.snapshot();
        assert_eq!(
            snap[0].transitions,
            vec![
                HealthState::Healthy,
                HealthState::Failed,
                HealthState::Rebuilding,
                HealthState::Healthy
            ]
        );
    }

    #[test]
    fn timeouts_count_as_transient_and_others_do_not_transition() {
        let b = HealthBoard::new(1, HealthPolicy::default());
        for _ in 0..3 {
            b.note_error(0, &DiskError::Timeout { device: "t".into() });
        }
        assert_eq!(b.state(0), HealthState::Suspect);

        let b2 = HealthBoard::new(1, HealthPolicy::default());
        for _ in 0..10 {
            b2.note_error(0, &DiskError::Corruption { block: 3 });
        }
        assert_eq!(b2.state(0), HealthState::Healthy);
        assert_eq!(b2.snapshot()[0].permanent_errors, 10);
    }

    #[test]
    fn listener_fires_per_transition_outside_the_board_lock() {
        use std::sync::{Arc, Mutex as StdMutex};
        let b = Arc::new(HealthBoard::new(2, HealthPolicy::default()));
        let seen: Arc<StdMutex<Vec<(usize, HealthState)>>> = Arc::default();
        let b2 = Arc::clone(&b);
        let seen2 = Arc::clone(&seen);
        assert!(b.set_listener(Arc::new(move |d, to| {
            // Reading the board from the listener deadlocks unless the
            // mutex was released before the callback.
            assert_eq!(b2.snapshot()[d].state, to);
            seen2.lock().unwrap().push((d, to));
        })));
        assert!(!b.set_listener(Arc::new(|_, _| {})), "second set refused");
        b.mark_failed(1);
        b.mark_failed(1); // no transition, no callback
        b.begin_rebuild(1);
        assert!(b.complete_rebuild(1));
        assert_eq!(
            *seen.lock().unwrap(),
            vec![
                (1, HealthState::Failed),
                (1, HealthState::Rebuilding),
                (1, HealthState::Healthy)
            ]
        );
    }

    #[test]
    fn wire_tags_round_trip() {
        use HealthState::*;
        for s in [Healthy, Suspect, Failed, Rebuilding] {
            assert_eq!(HealthState::from_wire_tag(s.wire_tag()), Some(s));
        }
        assert_eq!(HealthState::from_wire_tag(4), None);
        assert_eq!(HealthState::from_wire_tag(255), None);
    }

    #[test]
    fn legal_transition_table_matches_machine() {
        use HealthState::*;
        assert!(legal_transition(Healthy, Suspect));
        assert!(legal_transition(Rebuilding, Failed));
        assert!(!legal_transition(Failed, Healthy));
        assert!(!legal_transition(Failed, Suspect));
        assert!(!legal_transition(Rebuilding, Suspect));
    }
}
