//! CRC-32 (IEEE 802.3 polynomial) for metadata integrity.
//!
//! Both superblock slots and journal records carry a CRC over their
//! payload so a torn or interrupted metadata write is *detected* rather
//! than parsed: mount falls back to the alternate slot, replay stops at
//! the torn journal tail. A tiny table-driven implementation keeps the
//! crate free of new dependencies; metadata is cold, so throughput is
//! irrelevant.

/// Compute the CRC-32 (reflected, init/xorout `0xFFFF_FFFF`) of `data`.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

/// The 256-entry lookup table for the reflected polynomial `0xEDB88320`,
/// built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"pario superblock payload".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[i] ^= 1 << bit;
                assert_ne!(crc32(&m), c0, "flip at byte {i} bit {bit}");
            }
        }
    }
}
