//! File-system error type.

use std::fmt;

use pario_disk::DiskError;

/// Errors surfaced by the volume and file layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// An underlying device error.
    Disk(DiskError),
    /// A device ran out of free blocks.
    NoSpace {
        /// Device that could not satisfy the allocation.
        device: usize,
        /// Blocks requested.
        requested: u64,
    },
    /// Named file does not exist.
    NotFound(String),
    /// Named file already exists.
    AlreadyExists(String),
    /// A file was created with an impossible specification.
    BadSpec(String),
    /// Access outside the file (record index past end, fixed-size overflow).
    OutOfBounds {
        /// Offending record index.
        record: u64,
        /// File length in records at the time.
        len: u64,
    },
    /// A fixed-size file (PS/PDA) cannot grow past its creation capacity.
    CapacityExceeded {
        /// Units (records or blocks, per the operation) requested.
        requested: u64,
        /// The file's fixed capacity in the same units.
        capacity: u64,
    },
    /// Metadata (superblock) could not be read or written.
    Meta(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Disk(e) => write!(f, "device error: {e}"),
            FsError::NoSpace { device, requested } => {
                write!(f, "device {device} cannot allocate {requested} blocks")
            }
            FsError::NotFound(name) => write!(f, "file '{name}' not found"),
            FsError::AlreadyExists(name) => write!(f, "file '{name}' already exists"),
            FsError::BadSpec(msg) => write!(f, "bad file specification: {msg}"),
            FsError::OutOfBounds { record, len } => {
                write!(f, "record {record} out of bounds (file length {len})")
            }
            FsError::CapacityExceeded {
                requested,
                capacity,
            } => write!(
                f,
                "fixed-size file cannot grow to {requested} (capacity {capacity})"
            ),
            FsError::Meta(msg) => write!(f, "metadata error: {msg}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<DiskError> for FsError {
    fn from(e: DiskError) -> FsError {
        FsError::Disk(e)
    }
}

/// Result alias for file-system operations.
pub type Result<T> = std::result::Result<T, FsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: FsError = DiskError::Corruption { block: 3 }.into();
        assert!(e.to_string().contains("corruption"));
        assert!(FsError::NotFound("x".into()).to_string().contains("'x'"));
        assert!(FsError::OutOfBounds { record: 9, len: 4 }
            .to_string()
            .contains("9"));
    }
}
