//! The volume: a directory of parallel files over a device array.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use pario_check::{AtomicBool, AtomicU64, LockLevel, Mutex, RwLock};

use pario_buffer::{VolumeCache, VolumeCacheConfig, VolumeCacheStats};
use pario_disk::{mem_array, DeviceRef, IoNode, IoNodeStats, SchedPolicy};
use pario_layout::LayoutSpec;

use crate::alloc::{extents_len, Allocator, Extent};
use crate::error::{FsError, Result};
use crate::file::RawFile;
use crate::health::{DeviceHealth, HealthBoard, HealthPolicy, HealthState};
use crate::journal::{self, Appended, JournalState, Record};
use crate::meta::FileMeta;
use crate::superblock::{self, MetaStatus, MountReport};

/// Shape of a fresh in-memory volume.
#[derive(Copy, Clone, Debug)]
pub struct VolumeConfig {
    /// Number of devices.
    pub devices: usize,
    /// Blocks per device.
    pub device_blocks: u64,
    /// Block size in bytes (shared by all devices).
    pub block_size: usize,
}

/// Specification for creating a file.
#[derive(Clone, Debug)]
pub struct FileSpec {
    /// File name.
    pub name: String,
    /// Record size in bytes.
    pub record_size: usize,
    /// Records per logical file block (the paper's partitioning grain).
    pub records_per_block: usize,
    /// Data placement.
    pub layout: LayoutSpec,
    /// Opaque organization tag (owned by `pario-core`).
    pub org: String,
    /// Layout device slot -> volume device (defaults to `0..n`).
    pub device_map: Option<Vec<usize>>,
    /// Records to preallocate.
    pub initial_records: u64,
    /// Hard capacity for fixed-size organizations; implies full
    /// preallocation.
    pub fixed_capacity_records: Option<u64>,
}

impl FileSpec {
    /// A growable file with the given geometry and placement.
    pub fn new(
        name: &str,
        record_size: usize,
        records_per_block: usize,
        layout: LayoutSpec,
    ) -> FileSpec {
        FileSpec {
            name: name.to_string(),
            record_size,
            records_per_block,
            layout,
            org: String::new(),
            device_map: None,
            initial_records: 0,
            fixed_capacity_records: None,
        }
    }

    /// Set the organization tag.
    pub fn org(mut self, org: &str) -> FileSpec {
        self.org = org.to_string();
        self
    }

    /// Map layout device slots onto specific volume devices.
    pub fn device_map(mut self, map: Vec<usize>) -> FileSpec {
        self.device_map = Some(map);
        self
    }

    /// Preallocate room for `records` records.
    pub fn initial_records(mut self, records: u64) -> FileSpec {
        self.initial_records = records;
        self
    }

    /// Fix the file's capacity (required for partitioned layouts).
    pub fn fixed_capacity(mut self, records: u64) -> FileSpec {
        self.fixed_capacity_records = Some(records);
        self
    }
}

/// Shared runtime state of one file.
pub struct FileState {
    pub(crate) meta: RwLock<FileMeta>,
    /// Serialises parity read-modify-write cycles (see `RawFile`).
    pub(crate) stripe_lock: Mutex<()>,
    /// Serialises sub-block read-modify-write cycles: concurrent record
    /// writers sharing a block must not interleave their read/write
    /// pairs. Always taken before `stripe_lock` when both are needed.
    pub(crate) rmw_lock: Mutex<()>,
    /// Generation counter for the quiesce protocol: bumped by
    /// `RawFile::quiesce_io` when a rebuild needs in-flight unlocked I/O
    /// to drain (see `RawFile::enter_io`).
    pub(crate) io_gen: AtomicU64,
    /// In-flight unlocked I/O per generation parity. Readers/writers
    /// increment their generation's slot *before* sampling device
    /// health (Dekker-style), so a rebuild that flips a device to
    /// Rebuilding and then drains the old slot cannot race a straggler
    /// that missed the flip.
    pub(crate) io_active: [AtomicU64; 2],
}

impl FileState {
    pub(crate) fn new(meta: FileMeta) -> FileState {
        FileState {
            meta: RwLock::new(meta),
            stripe_lock: Mutex::new_named((), LockLevel::FsStripe),
            rmw_lock: Mutex::new_named((), LockLevel::FsRmw),
            io_gen: AtomicU64::new(0),
            io_active: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }
}

pub(crate) struct VolInner {
    pub(crate) devices: Vec<DeviceRef>,
    /// The volume's I/O executor: one persistent worker per device.
    /// Entries are [`IoNode`] handles wrapping `devices[i]` (or the
    /// device itself when it already routes through a node), so span
    /// I/O can submit asynchronously. Single-block paths, counters, and
    /// failure injection keep using `devices` directly.
    pub(crate) io_devices: Vec<DeviceRef>,
    pub(crate) sched: SchedPolicy,
    pub(crate) block_size: usize,
    pub(crate) meta_blocks: u64,
    pub(crate) alloc: Mutex<Allocator>,
    pub(crate) files: RwLock<HashMap<String, Arc<FileState>>>,
    pub(crate) next_id: AtomicU64,
    /// Per-device health state machine, fed by executor error feedback
    /// from every `RawFile` I/O path.
    pub(crate) health: HealthBoard,
    /// The volume-wide block cache tier fronting the executor bank.
    /// Set at most once by [`Volume::enable_cache`]; absent, every span
    /// path submits straight to the executor (the seed behavior).
    pub(crate) cache: std::sync::OnceLock<Arc<VolumeCache>>,
    /// Metadata intent-journal cursor + superblock generation (rank 78).
    pub(crate) journal: Mutex<JournalState>,
    /// Checkpoint barrier. Every metadata operation holds it **shared**
    /// across its [in-memory mutation, journal append] window;
    /// `superblock::store` holds it **exclusive** from directory
    /// snapshot through journal reset. A checkpoint therefore never
    /// interleaves a window: every record in the journal when the
    /// snapshot is taken describes a mutation the snapshot already
    /// contains, so resetting the journal cannot drop a durable,
    /// acknowledged operation, and records appended after the reset
    /// carry the new generation and replay. Unranked (like `files` and
    /// per-file `meta`); acquired before any ranked lock and never held
    /// across `sync_meta`.
    pub(crate) ckpt: RwLock<()>,
    /// True once `new`/`mount` completed: teardown then syncs metadata
    /// best-effort. Stays false on construction error paths (a failed
    /// mount must not scribble a superblock onto foreign devices) and
    /// after [`Volume::abandon`] (crash simulation).
    pub(crate) live: AtomicBool,
    /// What mount found in the meta region, for recovery tooling.
    pub(crate) mount_report: std::sync::OnceLock<MountReport>,
}

impl Drop for VolInner {
    fn drop(&mut self) {
        if !self.live.load(Ordering::SeqCst) {
            return;
        }
        // Teardown sync: flush dirty cached data, checkpoint the
        // directory, and push everything to stable media. Best-effort —
        // a failed device cannot be helped at this point, and explicit
        // `sync_meta` calls are still the durability contract.
        if let Some(cache) = self.cache.get() {
            let _ = cache.flush();
        }
        let _ = superblock::store(self);
        for d in &self.devices {
            let _ = d.flush();
        }
    }
}

/// A mounted volume: cheap to clone, shared across threads.
#[derive(Clone)]
pub struct Volume {
    pub(crate) inner: Arc<VolInner>,
}

impl Volume {
    /// Create a fresh volume over `devices`, reserving the superblock
    /// region on device 0 and writing an empty superblock. The volume's
    /// I/O executor dispatches each device queue in arrival order; use
    /// [`Volume::new_with_policy`] for seek-aware dispatch.
    pub fn new(devices: Vec<DeviceRef>) -> Result<Volume> {
        Volume::new_with_policy(devices, SchedPolicy::Fifo)
    }

    /// [`Volume::new`] with the executor dispatch policy chosen — the
    /// scheduling knob for every worker the volume spawns.
    pub fn new_with_policy(devices: Vec<DeviceRef>, policy: SchedPolicy) -> Result<Volume> {
        let vol = Volume::init(devices, policy)?;
        vol.sync_meta()?;
        vol.inner.live.store(true, Ordering::SeqCst);
        Ok(vol)
    }

    /// Build the in-memory structures without touching the superblock.
    fn init(devices: Vec<DeviceRef>, policy: SchedPolicy) -> Result<Volume> {
        if devices.is_empty() {
            return Err(FsError::BadSpec("volume needs at least one device".into()));
        }
        let block_size = devices[0].block_size();
        if devices.iter().any(|d| d.block_size() != block_size) {
            return Err(FsError::BadSpec(
                "all devices must share a block size".into(),
            ));
        }
        let meta_blocks = superblock::meta_blocks(block_size, devices[0].num_blocks());
        if devices[0].num_blocks() <= meta_blocks {
            return Err(FsError::BadSpec(format!(
                "device 0 too small for the {meta_blocks}-block superblock region"
            )));
        }
        let sizes: Vec<u64> = devices.iter().map(|d| d.num_blocks()).collect();
        let mut alloc = Allocator::with_sizes(&sizes);
        alloc.reserve(
            0,
            Extent {
                start: 0,
                len: meta_blocks,
            },
        );
        // The executor: one persistent worker per device. A device that
        // already routes through an I/O node keeps its handle (no double
        // queueing); plain devices get a node of their own. Dropping the
        // IoNode struct is fine — the handle's sender keeps the worker
        // alive until the volume is dropped.
        let io_devices = devices
            .iter()
            .map(|d| {
                if d.ionode_stats().is_some() {
                    Arc::clone(d)
                } else {
                    IoNode::spawn_with_policy(Arc::clone(d), policy).device()
                }
            })
            .collect();
        let health = HealthBoard::new(devices.len(), HealthPolicy::default());
        Ok(Volume {
            inner: Arc::new(VolInner {
                devices,
                io_devices,
                sched: policy,
                block_size,
                meta_blocks,
                alloc: Mutex::new_named(alloc, LockLevel::FsAlloc),
                files: RwLock::new(HashMap::new()),
                next_id: AtomicU64::new(1),
                health,
                cache: std::sync::OnceLock::new(),
                journal: Mutex::new_named(
                    JournalState {
                        gen: 0,
                        pos: 0,
                        seq: 0,
                        enabled: true,
                    },
                    LockLevel::FsJournal,
                ),
                ckpt: RwLock::new(()),
                live: AtomicBool::new(false),
                mount_report: std::sync::OnceLock::new(),
            }),
        })
    }

    /// Create a fresh volume over in-memory devices.
    pub fn create_in_memory(cfg: VolumeConfig) -> Result<Volume> {
        Volume::new(mem_array(cfg.devices, cfg.device_blocks, cfg.block_size))
    }

    /// [`Volume::create_in_memory`] with the executor dispatch policy
    /// chosen.
    pub fn create_in_memory_with_policy(cfg: VolumeConfig, policy: SchedPolicy) -> Result<Volume> {
        Volume::new_with_policy(
            mem_array(cfg.devices, cfg.device_blocks, cfg.block_size),
            policy,
        )
    }

    /// Create a fresh in-memory volume with every device behind a
    /// dedicated I/O processor ([`IoNode`]) — the paper's §4 deployment.
    /// The node worker threads live as long as the volume holds their
    /// device handles; queue statistics are available through
    /// [`Volume::io_node_stats`].
    pub fn create_in_memory_with_io_nodes(cfg: VolumeConfig) -> Result<Volume> {
        let (_nodes, handles) =
            IoNode::spawn_bank(mem_array(cfg.devices, cfg.device_blocks, cfg.block_size));
        Volume::new(handles)
    }

    /// Put an existing device bank behind one I/O processor per device
    /// and mount a fresh volume on the resulting handles.
    pub fn new_with_io_nodes(devices: Vec<DeviceRef>) -> Result<Volume> {
        let (_nodes, handles) = IoNode::spawn_bank(devices);
        Volume::new(handles)
    }

    /// Aggregate I/O-node queue statistics over every device that routes
    /// through a dedicated I/O processor: total requests serviced,
    /// current and high-water queue depths, and cumulative queue-wait vs.
    /// device service time (so callers can attribute end-to-end latency
    /// to device queues vs. transfers). `None` when no device is behind
    /// an I/O node.
    pub fn io_node_stats(&self) -> Option<IoNodeStats> {
        let mut agg: Option<IoNodeStats> = None;
        for d in &self.inner.devices {
            if let Some(s) = d.ionode_stats() {
                agg.get_or_insert_with(IoNodeStats::default).absorb(s);
            }
        }
        agg
    }

    /// Mount a volume previously persisted with [`Volume::sync_meta`].
    /// Fails with [`FsError::Meta`] if device 0 carries no superblock.
    pub fn mount(devices: Vec<DeviceRef>) -> Result<Volume> {
        Volume::mount_with_policy(devices, SchedPolicy::Fifo)
    }

    /// [`Volume::mount`] with the executor dispatch policy chosen.
    pub fn mount_with_policy(devices: Vec<DeviceRef>, policy: SchedPolicy) -> Result<Volume> {
        let vol = Volume::init(devices, policy)?;
        let report = superblock::load(&vol.inner)?;
        let _ = vol.inner.mount_report.set(report);
        vol.inner.live.store(true, Ordering::SeqCst);
        Ok(vol)
    }

    /// What this mount found in the meta region: which slot validated,
    /// the generation loaded, and how many intent-journal records were
    /// replayed. `None` on a freshly created (not mounted) volume.
    pub fn mount_report(&self) -> Option<MountReport> {
        self.inner.mount_report.get().cloned()
    }

    /// Point-in-time health of the meta region: on-disk slot
    /// generations plus the in-memory journal cursor.
    pub fn meta_status(&self) -> MetaStatus {
        superblock::status(&self.inner)
    }

    /// Blocks reserved for the meta region (superblock slots + intent
    /// journal) on device 0.
    pub fn meta_region_blocks(&self) -> u64 {
        self.inner.meta_blocks
    }

    /// Disable the volume's teardown metadata sync. A dropped volume
    /// then leaves the devices exactly as the last explicit write left
    /// them — what a crash/remount harness needs.
    pub fn abandon(&self) {
        self.inner.live.store(false, Ordering::SeqCst);
    }

    /// Toggle metadata intent journaling (measurement knob). While
    /// disabled, metadata operations are durable only at [`Volume::sync_meta`]
    /// checkpoints — crash consistency degrades to checkpoint
    /// granularity. Re-enabling checkpoints first so the journal
    /// restarts from a clean generation.
    pub fn set_meta_journaling(&self, enabled: bool) -> Result<()> {
        {
            let mut journal = self.inner.journal.lock();
            if journal.enabled == enabled {
                return Ok(());
            }
            journal.enabled = enabled;
        }
        if enabled {
            self.sync_meta()?;
        }
        Ok(())
    }

    /// Volume block size in bytes.
    pub fn block_size(&self) -> usize {
        self.inner.block_size
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.inner.devices.len()
    }

    /// Shared handle to device `i`.
    pub fn device(&self, i: usize) -> DeviceRef {
        Arc::clone(&self.inner.devices[i])
    }

    /// Handle to device `i` routed through the volume's I/O executor:
    /// `submit_read_blocks` / `submit_write_blocks` on it enqueue onto
    /// the device's persistent worker and return immediately.
    pub fn io_device(&self, i: usize) -> DeviceRef {
        Arc::clone(&self.inner.io_devices[i])
    }

    /// The dispatch policy the executor workers run.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.inner.sched
    }

    /// Aggregate queue statistics for the volume's I/O executor: total
    /// requests serviced, current and high-water queue depths, and
    /// cumulative queue-wait vs. device service time across every
    /// per-device worker. (Unlike [`Volume::io_node_stats`], which
    /// reports only devices that were *handed in* behind I/O nodes,
    /// every volume has an executor.)
    pub fn executor_stats(&self) -> IoNodeStats {
        let mut agg = IoNodeStats::default();
        for d in &self.inner.io_devices {
            if let Some(s) = d.ionode_stats() {
                agg.absorb(s);
            }
        }
        agg
    }

    /// Attach the volume-wide block cache tier per `cfg`, fronting the
    /// I/O executor for every span path (reads fill frames, write-back
    /// absorbs and coalesces, write-through keeps the seed's durability
    /// and fault visibility). Device health transitions drop the
    /// affected device's frames automatically. Fails if a cache is
    /// already attached.
    pub fn enable_cache(&self, cfg: VolumeCacheConfig) -> Result<Volume> {
        let cache = Arc::new(VolumeCache::new(self.inner.io_devices.clone(), cfg));
        if self.inner.cache.set(Arc::clone(&cache)).is_err() {
            return Err(FsError::BadSpec("volume cache already enabled".into()));
        }
        // Failed media must error (or reconstruct) instead of serving
        // frames, and Rebuilding frames predate the resync sweep. The
        // listener runs after the board mutex is released, so dropping
        // frames here respects the lock hierarchy (75 < 80 means the
        // cache lock may never be taken *under* the board).
        let weak = Arc::downgrade(&cache);
        self.inner.health.set_listener(Arc::new(move |d, to| {
            if to.is_down() {
                if let Some(c) = weak.upgrade() {
                    c.drop_device(d);
                }
            }
        }));
        Ok(self.clone())
    }

    /// The volume's cache tier, if [`Volume::enable_cache`] attached one.
    pub fn cache(&self) -> Option<&Arc<VolumeCache>> {
        self.inner.cache.get()
    }

    /// Cache traffic counters, if a cache is attached.
    pub fn cache_stats(&self) -> Option<VolumeCacheStats> {
        self.inner.cache.get().map(|c| c.stats())
    }

    /// Write every dirty cached block to its home device (no-op without
    /// a cache or under write-through).
    pub fn flush_cache(&self) -> Result<()> {
        match self.inner.cache.get() {
            Some(c) => Ok(c.flush()?),
            None => Ok(()),
        }
    }

    /// The volume's device health board: the per-device state machine
    /// (Healthy / Suspect / Failed / Rebuilding) driving degraded
    /// routing, hedged reads and online rebuild.
    pub fn health(&self) -> &HealthBoard {
        &self.inner.health
    }

    /// Current health state of device `i` (lock-free).
    pub fn device_health(&self, i: usize) -> HealthState {
        self.inner.health.state(i)
    }

    /// Snapshot of every device's health record (state, error counters,
    /// full transition history).
    pub fn health_snapshot(&self) -> Vec<DeviceHealth> {
        self.inner.health.snapshot()
    }

    /// Whether any device is currently not Healthy.
    pub fn is_degraded(&self) -> bool {
        self.inner.health.any_degraded()
    }

    /// Open handles to every file in the volume, sorted by name. Used
    /// by recovery tooling to sweep all files during an online rebuild.
    pub fn open_all(&self) -> Result<Vec<RawFile>> {
        self.list()
            .into_iter()
            .map(|name| self.open(&name))
            .collect()
    }

    /// Free blocks per device.
    pub fn free_blocks(&self) -> Vec<u64> {
        let alloc = self.inner.alloc.lock();
        (0..self.num_devices())
            .map(|d| alloc.free_blocks(d))
            .collect()
    }

    /// Names of all files, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.files.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Create a file per `spec` and open it.
    pub fn create_file(&self, spec: FileSpec) -> Result<RawFile> {
        self.validate_spec(&spec)?;
        let nslots = spec.layout.devices_required();
        let device_map = match &spec.device_map {
            Some(m) => m.clone(),
            None => (0..nslots).collect(),
        };
        let meta = FileMeta {
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed), // ordering: id allocation needs uniqueness, not ordering
            name: spec.name.clone(),
            record_size: spec.record_size,
            records_per_block: spec.records_per_block,
            len_records: 0,
            layout: spec.layout.clone(),
            org: spec.org.clone(),
            device_map,
            fixed_capacity_records: spec.fixed_capacity_records,
            nblocks: 0,
            extents: vec![Vec::new(); nslots],
        };
        let id = meta.id;
        let state = Arc::new(FileState::new(meta));
        // The checkpoint barrier spans [directory insert, journal
        // append]: a checkpoint slicing between the two could persist
        // the file yet reset the journal around a Create record about
        // to land with a stale generation — losing the create at replay.
        let journal_full = {
            let _window = self.inner.ckpt.read();
            {
                let mut files = self.inner.files.write();
                if files.contains_key(&spec.name) {
                    return Err(FsError::AlreadyExists(spec.name));
                }
                files.insert(spec.name.clone(), Arc::clone(&state));
            }
            // Journal the create before any growth it triggers, so
            // replay sees the file before its extents arrive.
            let create_rec = Record::Create {
                meta: state.meta.read().clone(),
            };
            match journal::append(&self.inner, &create_rec) {
                Ok(a) => a == Appended::Full,
                Err(e) => {
                    self.inner.files.write().remove(&spec.name);
                    return Err(e);
                }
            }
        };
        // Fixed-size files are fully preallocated so partitioned layouts
        // never see a partial total (their mapping is sized at creation).
        // Fixed-size partitioned layouts preallocate the full mapping
        // (their bounds may round capacity up to whole file blocks).
        let lblocks = match (&spec.layout, spec.fixed_capacity_records) {
            (LayoutSpec::Partitioned { bounds, .. }, Some(_)) => {
                // invariant: partitioned bounds are validated non-empty at create().
                *bounds.last().expect("validated non-empty")
            }
            (_, Some(cap)) => (cap * spec.record_size as u64).div_ceil(self.block_size() as u64),
            (_, None) => {
                (spec.initial_records * spec.record_size as u64).div_ceil(self.block_size() as u64)
            }
        };
        if lblocks > 0 {
            if let Err(e) = self.grow_file(&state, lblocks) {
                // Replay must not resurrect the rolled-back create: a
                // durable Remove record must supersede the logged
                // Create record.
                let compensated = {
                    let _window = self.inner.ckpt.read();
                    self.inner.files.write().remove(&spec.name);
                    matches!(
                        journal::append(&self.inner, &Record::Remove { id }),
                        Ok(Appended::Logged)
                    )
                };
                if !compensated {
                    // No room (or a failing device): a checkpoint
                    // without the file supersedes the Create record
                    // instead; if even that fails, surface it — replay
                    // could otherwise resurrect a file the caller was
                    // told does not exist.
                    self.sync_meta()?;
                }
                return Err(e);
            }
        }
        if journal_full {
            self.sync_meta()?;
        }
        RawFile::from_state(self.clone(), state)
    }

    /// Open an existing file.
    pub fn open(&self, name: &str) -> Result<RawFile> {
        let state = self
            .inner
            .files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        RawFile::from_state(self.clone(), state)
    }

    /// Delete a file, releasing its blocks.
    pub fn remove(&self, name: &str) -> Result<()> {
        let state = self
            .inner
            .files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let id = state.meta.read().id;
        // The checkpoint barrier spans [journal append, directory
        // removal, block release]: a checkpoint never sees the record
        // without the removal (it would reset the journal around an
        // acknowledged remove) or the release without the record.
        let window = self.inner.ckpt.read();
        // Journal the intent *before* releasing blocks: a racing grow
        // that reuses them then journals strictly after this record,
        // so replay keeps allocator and extents agreeing.
        let journal_full = journal::append(&self.inner, &Record::Remove { id })? == Appended::Full;
        let state = {
            let mut files = self.inner.files.write();
            match files.get(name) {
                Some(s) if Arc::ptr_eq(s, &state) => {
                    // invariant: the entry was just matched under the write lock.
                    files.remove(name).expect("entry matched under write lock")
                }
                // A racing remove won; its record makes ours a no-op
                // at replay.
                _ => return Err(FsError::NotFound(name.to_string())),
            }
        };
        let meta = state.meta.read();
        // Cached frames of the released blocks must die with the file: a
        // dirty write-back frame flushed later would clobber whoever the
        // allocator hands these blocks to next.
        if let Some(cache) = self.inner.cache.get() {
            for (slot, extents) in meta.extents.iter().enumerate() {
                let dev = meta.device_map[slot];
                for &e in extents {
                    cache.invalidate_range(dev, e.start, e.len);
                }
            }
        }
        if journal_full {
            // The journal had no room, so no durable Remove record
            // exists yet: checkpoint (without the file) *before* the
            // allocator can hand these blocks to a concurrent create or
            // grow — a crash after reuse would otherwise resurrect the
            // file from the last durable checkpoint over someone else's
            // data.
            drop(meta);
            drop(window);
            self.sync_meta()?;
            self.release_extents(&state.meta.read());
            return Ok(());
        }
        self.release_extents(&meta);
        drop(meta);
        drop(window);
        Ok(())
    }

    /// Return every extent of `meta` to the allocator.
    fn release_extents(&self, meta: &FileMeta) {
        let mut alloc = self.inner.alloc.lock();
        for (slot, extents) in meta.extents.iter().enumerate() {
            let dev = meta.device_map[slot];
            for &e in extents {
                alloc.release(dev, e);
            }
        }
    }

    /// Checkpoint: persist the directory and all file metadata to the
    /// superblock region on device 0 (alternating slots, CRC-protected,
    /// flushed to stable media) and reset the intent journal.
    pub fn sync_meta(&self) -> Result<()> {
        superblock::store(&self.inner)
    }

    fn validate_spec(&self, spec: &FileSpec) -> Result<()> {
        if spec.record_size == 0 || spec.records_per_block == 0 {
            return Err(FsError::BadSpec(
                "record size and records per block must be positive".into(),
            ));
        }
        let nslots = spec.layout.devices_required();
        if let Some(map) = &spec.device_map {
            if map.len() != nslots {
                return Err(FsError::BadSpec(format!(
                    "device map has {} entries, layout needs {nslots}",
                    map.len()
                )));
            }
            let mut seen = vec![false; self.num_devices()];
            for &d in map {
                if d >= self.num_devices() {
                    return Err(FsError::BadSpec(format!("device {d} does not exist")));
                }
                if std::mem::replace(&mut seen[d], true) {
                    return Err(FsError::BadSpec(format!("device {d} mapped twice")));
                }
            }
        } else if nslots > self.num_devices() {
            return Err(FsError::BadSpec(format!(
                "layout needs {nslots} devices, volume has {}",
                self.num_devices()
            )));
        }
        if let LayoutSpec::Shadowed(inner) = &spec.layout {
            if matches!(**inner, LayoutSpec::Parity { .. }) {
                return Err(FsError::BadSpec(
                    "shadowing a parity layout is not supported".into(),
                ));
            }
        }
        if matches!(spec.layout, LayoutSpec::Partitioned { .. })
            && spec.fixed_capacity_records.is_none()
        {
            return Err(FsError::BadSpec(
                "partitioned layouts require a fixed capacity".into(),
            ));
        }
        if let (LayoutSpec::Partitioned { bounds, .. }, Some(cap)) =
            (&spec.layout, spec.fixed_capacity_records)
        {
            let cap_blocks = (cap * spec.record_size as u64).div_ceil(self.block_size() as u64);
            // invariant: bounds were validated non-empty earlier in create().
            let total = *bounds.last().expect("validated non-empty");
            if total < cap_blocks {
                return Err(FsError::BadSpec(format!(
                    "partition bounds cover {total} blocks but capacity needs {cap_blocks}"
                )));
            }
        }
        Ok(())
    }

    /// Grow `state`'s allocation to at least `total_lblocks` logical
    /// blocks, zeroing new extents (parity and shadow invariants start
    /// from all-zero stripes).
    pub(crate) fn grow_file(&self, state: &FileState, total_lblocks: u64) -> Result<()> {
        let journal_full = {
            // The checkpoint barrier spans [extent-map mutation, journal
            // append] — see `VolInner::ckpt`. Taken before the meta
            // write lock so a checkpoint (which reads every file's meta
            // under the exclusive barrier) cannot deadlock against the
            // append below.
            let _window = self.inner.ckpt.read();
            let mut meta = state.meta.write();
            if total_lblocks <= meta.nblocks {
                return Ok(());
            }
            if let Some(cap) = meta.fixed_capacity_records {
                let cap_blocks = match &meta.layout {
                    LayoutSpec::Partitioned { bounds, .. } => {
                        *bounds.last().expect("non-empty bounds") // invariant: partitioned specs persist with non-empty bounds
                    }
                    _ => (cap * meta.record_size as u64).div_ceil(self.block_size() as u64),
                };
                if total_lblocks > cap_blocks {
                    return Err(FsError::CapacityExceeded {
                        requested: total_lblocks,
                        capacity: cap_blocks,
                    });
                }
            }
            let layout = meta.layout.build();
            let mut added: Vec<(usize, Extent)> = Vec::new();
            let mut logged: Vec<Vec<Extent>> = vec![Vec::new(); layout.devices()];
            let zero = vec![0u8; self.block_size() * 32];
            for slot in 0..layout.devices() {
                let need = layout.blocks_on_device(total_lblocks, slot);
                let have = extents_len(&meta.extents[slot]);
                if need <= have {
                    continue;
                }
                let dev = meta.device_map[slot];
                let new_extents = {
                    let mut alloc = self.inner.alloc.lock();
                    match alloc.allocate(dev, need - have) {
                        Ok(es) => es,
                        Err(e) => {
                            for &(d, ext) in &added {
                                alloc.release(d, ext);
                            }
                            return Err(e);
                        }
                    }
                };
                for &e in &new_extents {
                    added.push((dev, e));
                    logged[slot].push(e);
                    // Zero-fill vectored, a whole extent (chunked) per request.
                    let mut b = e.start;
                    while b < e.end() {
                        let n = (e.end() - b).min((zero.len() / self.block_size()) as u64);
                        self.inner.devices[dev]
                            .write_blocks_at(b, &zero[..n as usize * self.block_size()])?;
                        b += n;
                    }
                    // The zero-fill bypassed the cache; any frame left over
                    // from a previous owner of these blocks is now stale.
                    if let Some(cache) = self.inner.cache.get() {
                        cache.invalidate_range(dev, e.start, e.len);
                    }
                }
                // Merge extents that continue the previous one, so span I/O
                // sees maximal contiguous device runs even after the file
                // grew one block at a time.
                let slot_extents = &mut meta.extents[slot];
                for e in new_extents {
                    match slot_extents.last_mut() {
                        Some(prev) if prev.start + prev.len == e.start => prev.len += e.len,
                        _ => slot_extents.push(e),
                    }
                }
            }
            meta.nblocks = total_lblocks;
            // Journal the completed grow. The zero-fill above already
            // landed, so at any crash point where this record exists the
            // data invariant (fresh extents read as zero) holds and
            // replay never rewrites data blocks.
            journal::append(
                &self.inner,
                &Record::Grow {
                    id: meta.id,
                    slots: logged,
                    nblocks: total_lblocks,
                },
            )? == Appended::Full
        };
        if journal_full {
            self.sync_meta()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol() -> Volume {
        Volume::create_in_memory(VolumeConfig {
            devices: 4,
            device_blocks: 128,
            block_size: 512,
        })
        .unwrap()
    }

    fn striped_spec(name: &str) -> FileSpec {
        FileSpec::new(
            name,
            64,
            8,
            LayoutSpec::Striped {
                devices: 4,
                unit: 1,
            },
        )
    }

    #[test]
    fn create_open_list_remove() {
        let v = vol();
        v.create_file(striped_spec("a")).unwrap();
        v.create_file(striped_spec("b")).unwrap();
        assert_eq!(v.list(), vec!["a".to_string(), "b".to_string()]);
        assert!(v.open("a").is_ok());
        assert!(matches!(v.open("zz"), Err(FsError::NotFound(_))));
        assert!(matches!(
            v.create_file(striped_spec("a")),
            Err(FsError::AlreadyExists(_))
        ));
        v.remove("a").unwrap();
        assert_eq!(v.list(), vec!["b".to_string()]);
        assert!(matches!(v.remove("a"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn remove_releases_space() {
        let v = vol();
        let before = v.free_blocks();
        let f = v
            .create_file(striped_spec("big").initial_records(512))
            .unwrap();
        drop(f);
        assert!(v.free_blocks().iter().sum::<u64>() < before.iter().sum::<u64>());
        v.remove("big").unwrap();
        assert_eq!(v.free_blocks(), before);
    }

    #[test]
    fn spec_validation() {
        let v = vol();
        // Too many devices.
        let bad = FileSpec::new(
            "x",
            64,
            1,
            LayoutSpec::Striped {
                devices: 9,
                unit: 1,
            },
        );
        assert!(matches!(v.create_file(bad), Err(FsError::BadSpec(_))));
        // Zero record size.
        let bad = FileSpec::new(
            "x",
            0,
            1,
            LayoutSpec::Striped {
                devices: 1,
                unit: 1,
            },
        );
        assert!(matches!(v.create_file(bad), Err(FsError::BadSpec(_))));
        // Partitioned without fixed capacity.
        let bad = FileSpec::new(
            "x",
            512,
            1,
            LayoutSpec::Partitioned {
                bounds: vec![0, 4, 8],
                devices: 2,
            },
        );
        assert!(matches!(v.create_file(bad), Err(FsError::BadSpec(_))));
        // Partitioned with mismatched bounds.
        let bad = FileSpec::new(
            "x",
            512,
            1,
            LayoutSpec::Partitioned {
                bounds: vec![0, 4, 8],
                devices: 2,
            },
        )
        .fixed_capacity(9);
        assert!(matches!(v.create_file(bad), Err(FsError::BadSpec(_))));
        // Duplicate device in map.
        let bad = striped_spec("x").device_map(vec![0, 1, 2, 2]);
        assert!(matches!(v.create_file(bad), Err(FsError::BadSpec(_))));
        // Shadowed parity.
        let bad = FileSpec::new(
            "x",
            64,
            1,
            LayoutSpec::Shadowed(Box::new(LayoutSpec::Parity {
                data_devices: 1,
                rotated: false,
            })),
        );
        assert!(matches!(v.create_file(bad), Err(FsError::BadSpec(_))));
    }

    #[test]
    fn fixed_capacity_fully_preallocates() {
        let v = vol();
        let spec = FileSpec::new(
            "ps",
            512,
            1,
            LayoutSpec::Partitioned {
                bounds: vec![0, 8, 16],
                devices: 2,
            },
        )
        .fixed_capacity(16);
        let f = v.create_file(spec).unwrap();
        let meta = f.meta_snapshot();
        assert_eq!(meta.nblocks, 16);
        assert_eq!(extents_len(&meta.extents[0]), 8);
        assert_eq!(extents_len(&meta.extents[1]), 8);
    }

    #[test]
    fn grow_rolls_back_on_no_space() {
        // Device array too small for the request: allocation must fail and
        // release anything it grabbed.
        let v = Volume::create_in_memory(VolumeConfig {
            devices: 2,
            device_blocks: 80,
            block_size: 512,
        })
        .unwrap();
        let free_before = v.free_blocks();
        let spec = FileSpec::new(
            "huge",
            512,
            1,
            LayoutSpec::Striped {
                devices: 2,
                unit: 1,
            },
        )
        .initial_records(10_000);
        assert!(matches!(v.create_file(spec), Err(FsError::NoSpace { .. })));
        assert_eq!(v.free_blocks(), free_before);
        assert!(v.list().is_empty(), "failed create must not leave a file");
    }

    #[test]
    fn io_node_stats_aggregate_across_devices() {
        let v = Volume::create_in_memory_with_io_nodes(VolumeConfig {
            devices: 4,
            device_blocks: 64,
            block_size: 512,
        })
        .unwrap();
        // Plain volumes report no node statistics.
        assert!(vol().io_node_stats().is_none());
        let f = v
            .create_file(striped_spec("f").initial_records(64))
            .unwrap();
        f.write_record(0, &[9u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        f.read_record(0, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
        let s = v.io_node_stats().expect("devices are behind I/O nodes");
        assert!(s.serviced > 0);
        assert_eq!(s.in_flight, 0);
        assert!(s.service_nanos > 0, "transfers must be attributed");
    }

    #[test]
    fn every_volume_has_an_executor() {
        let v = Volume::create_in_memory_with_policy(
            VolumeConfig {
                devices: 3,
                device_blocks: 64,
                block_size: 512,
            },
            SchedPolicy::Sstf,
        )
        .unwrap();
        assert_eq!(v.sched_policy(), SchedPolicy::Sstf);
        // Plain volumes still report no *handed-in* I/O nodes...
        assert!(v.io_node_stats().is_none());
        // ...but the executor is live: submissions through io_device are
        // counted by the per-device workers.
        let before = v.executor_stats().serviced;
        let dev = v.io_device(1);
        dev.submit_write_blocks(0, vec![5u8; 512].into_boxed_slice())
            .wait()
            .unwrap();
        let buf = dev
            .submit_read_blocks(0, vec![0u8; 512].into_boxed_slice())
            .wait()
            .unwrap();
        assert!(buf.iter().all(|&b| b == 5));
        let s = v.executor_stats();
        assert_eq!(s.serviced, before + 2);
        assert_eq!(s.in_flight, 0);
        // The executor fronts the same storage the plain handle sees.
        let mut direct = vec![0u8; 512];
        v.device(1).read_block(0, &mut direct).unwrap();
        assert!(direct.iter().all(|&b| b == 5));
        // A volume whose devices came in behind I/O nodes reuses those
        // nodes as its executor (no double wrapping).
        let vn = Volume::create_in_memory_with_io_nodes(VolumeConfig {
            devices: 2,
            device_blocks: 64,
            block_size: 512,
        })
        .unwrap();
        assert_eq!(
            vn.io_node_stats().unwrap().serviced,
            vn.executor_stats().serviced
        );
    }

    #[test]
    fn device_zero_reserves_superblock() {
        let v = vol();
        let free = v.free_blocks();
        // Device 0 has less free space than the others (superblock region).
        assert!(free[0] < free[1]);
        assert_eq!(free[1], 128);
    }
}
