//! # pario-fs — the parallel file system layer
//!
//! The operating-system half of Crockett (1989): volumes over multiple
//! storage devices, a directory of files with durable metadata, per-device
//! block allocation, and the *global view* that lets any parallel file be
//! consumed by conventional sequential software.
//!
//! * [`Volume`] — device array + allocator + directory + superblock.
//! * [`RawFile`] — block/record access with address translation and
//!   transparent redundancy (parity read-modify-write and reconstruction,
//!   shadow dual-writes and failover).
//! * [`GlobalReader`] / [`GlobalWriter`] / [`copy_global`] — the
//!   conventional sequential interface and the conversion utility.
//!
//! The parallel *internal views* (S/PS/IS/SS/GDA/PDA handles) live in
//! `pario-core`, layered on [`RawFile`].
//!
//! ```
//! use pario_fs::{FileSpec, Volume, VolumeConfig};
//! use pario_layout::LayoutSpec;
//!
//! let vol = Volume::create_in_memory(VolumeConfig {
//!     devices: 4,
//!     device_blocks: 256,
//!     block_size: 512,
//! })
//! .unwrap();
//! let f = vol
//!     .create_file(FileSpec::new(
//!         "data",
//!         128,
//!         4,
//!         LayoutSpec::Striped { devices: 4, unit: 1 },
//!     ))
//!     .unwrap();
//! f.write_record(9, &[7u8; 128]).unwrap();
//! let mut buf = [0u8; 128];
//! f.read_record(9, &mut buf).unwrap();
//! assert_eq!(buf[0], 7);
//! assert_eq!(f.len_records(), 10);
//! ```

#![warn(missing_docs)]

mod alloc;
mod crc;
mod error;
mod file;
mod global;
mod health;
mod journal;
mod meta;
mod superblock;
mod volume;

pub use alloc::{extents_len, resolve, Allocator, Extent};
pub use error::{FsError, Result};
pub use file::RawFile;
pub use global::{copy_global, ByteReader, ByteWriter, GlobalReader, GlobalWriter};
pub use health::{legal_transition, DeviceHealth, HealthBoard, HealthPolicy, HealthState};
pub use meta::FileMeta;
pub use pario_buffer::{VolumeCache, VolumeCacheConfig, VolumeCacheStats};
pub use superblock::{MetaStatus, MountReport};
pub use volume::{FileSpec, FileState, Volume, VolumeConfig};
