//! Superblock persistence.
//!
//! The paper's *standard* parallel files "must appear conventional to the
//! system" and outlive the programs that use them; that requires durable
//! metadata. A fixed region at the front of device 0 holds the directory
//! and every file's [`FileMeta`] (JSON with a magic/length header —
//! metadata is tiny and cold, so a text encoding buys debuggability for
//! free).

use std::sync::atomic::Ordering;

use serde::{Deserialize, Serialize};

use crate::alloc::Extent;
use crate::error::{FsError, Result};
use crate::meta::FileMeta;
use crate::volume::{FileState, Volume};

/// Preferred size of the superblock region on device 0.
pub(crate) const META_REGION_BYTES: usize = 256 * 1024;

const MAGIC: &[u8; 8] = b"PARIOFS1";

/// Blocks reserved for the superblock region: up to 256 KiB, but never
/// more than an eighth of device 0 (small test volumes), and at least 8
/// blocks. Deterministic in the device shape, so format and mount agree.
pub(crate) fn meta_blocks(block_size: usize, device_blocks: u64) -> u64 {
    let want = (META_REGION_BYTES as u64).div_ceil(block_size as u64);
    want.min(device_blocks / 8).max(8)
}

#[derive(Serialize, Deserialize)]
struct Persisted {
    block_size: usize,
    next_id: u64,
    files: Vec<FileMeta>,
}

/// Serialise the directory into the superblock region.
pub(crate) fn store(vol: &Volume) -> Result<()> {
    let files: Vec<FileMeta> = {
        let map = vol.inner.files.read();
        let mut metas: Vec<FileMeta> = map.values().map(|s| s.meta.read().clone()).collect();
        metas.sort_by_key(|m| m.id);
        metas
    };
    let persisted = Persisted {
        block_size: vol.block_size(),
        next_id: vol.inner.next_id.load(Ordering::Relaxed), // ordering: id counter; persistence runs with the volume quiesced
        files,
    };
    let json = serde_json::to_vec(&persisted).map_err(|e| FsError::Meta(e.to_string()))?;
    let total = MAGIC.len() + 8 + json.len();
    let region = (vol.inner.meta_blocks * vol.block_size() as u64) as usize;
    if total > region {
        return Err(FsError::Meta(format!(
            "superblock needs {total} bytes, region is {region}"
        )));
    }
    let mut image = Vec::with_capacity(total);
    image.extend_from_slice(MAGIC);
    image.extend_from_slice(&(json.len() as u64).to_le_bytes());
    image.extend_from_slice(&json);

    let bs = vol.block_size();
    let dev = vol.device(0);
    let mut block = vec![0u8; bs];
    for (i, chunk) in image.chunks(bs).enumerate() {
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()..].fill(0);
        dev.write_block(i as u64, &block)?;
    }
    dev.flush()?;
    Ok(())
}

/// Read the superblock region and rebuild directory + allocator state.
pub(crate) fn load(vol: &Volume) -> Result<()> {
    let bs = vol.block_size();
    let dev = vol.device(0);
    let mut head = vec![0u8; bs];
    dev.read_block(0, &mut head)?;
    if &head[..8] != MAGIC {
        return Err(FsError::Meta("no pario superblock on device 0".into()));
    }
    // invariant: an 8-byte slice always converts to [u8; 8].
    let len = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes")) as usize;
    let region = (vol.inner.meta_blocks * bs as u64) as usize;
    if 16 + len > region {
        return Err(FsError::Meta(format!("corrupt superblock length {len}")));
    }
    let mut image = vec![0u8; 16 + len];
    let blocks_needed = image.len().div_ceil(bs);
    let mut block = vec![0u8; bs];
    for i in 0..blocks_needed {
        dev.read_block(i as u64, &mut block)?;
        let start = i * bs;
        let take = bs.min(image.len() - start);
        image[start..start + take].copy_from_slice(&block[..take]);
    }
    let persisted: Persisted =
        serde_json::from_slice(&image[16..]).map_err(|e| FsError::Meta(e.to_string()))?;
    if persisted.block_size != bs {
        return Err(FsError::Meta(format!(
            "volume was formatted with {}-byte blocks, devices use {bs}",
            persisted.block_size
        )));
    }
    vol.inner
        .next_id
        .store(persisted.next_id, Ordering::Relaxed); // ordering: id counter; recovery runs before any sharing
    let mut files = vol.inner.files.write();
    let mut alloc = vol.inner.alloc.lock();
    for meta in persisted.files {
        for (slot, extents) in meta.extents.iter().enumerate() {
            let dev_idx = meta.device_map[slot];
            for &e in extents {
                let e: Extent = e;
                alloc.reserve(dev_idx, e);
            }
        }
        files.insert(meta.name.clone(), std::sync::Arc::new(FileState::new(meta)));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::volume::{FileSpec, Volume};
    use pario_disk::{mem_array, DeviceRef};
    use pario_layout::LayoutSpec;

    fn devices() -> Vec<DeviceRef> {
        mem_array(3, 1024, 512)
    }

    #[test]
    fn persist_and_mount_round_trip() {
        let devs = devices();
        {
            let v = Volume::new(devs.clone()).unwrap();
            let f = v
                .create_file(
                    FileSpec::new(
                        "data",
                        100,
                        4,
                        LayoutSpec::Striped {
                            devices: 3,
                            unit: 2,
                        },
                    )
                    .org("IS:3"),
                )
                .unwrap();
            for r in 0..40u64 {
                let rec: Vec<u8> = (0..100).map(|i| (r as usize + i) as u8).collect();
                f.write_record(r, &rec).unwrap();
            }
            v.sync_meta().unwrap();
        }
        // Remount from the same devices: directory, metadata and data all
        // survive.
        let v2 = Volume::mount(devs).unwrap();
        assert_eq!(v2.list(), vec!["data".to_string()]);
        let f = v2.open("data").unwrap();
        assert_eq!(f.len_records(), 40);
        assert_eq!(f.org(), "IS:3");
        let mut buf = vec![0u8; 100];
        for r in 0..40u64 {
            f.read_record(r, &mut buf).unwrap();
            let expect: Vec<u8> = (0..100).map(|i| (r as usize + i) as u8).collect();
            assert_eq!(buf, expect, "record {r}");
        }
    }

    #[test]
    fn mount_preserves_allocator_state() {
        let devs = devices();
        {
            let v = Volume::new(devs.clone()).unwrap();
            v.create_file(
                FileSpec::new(
                    "a",
                    512,
                    1,
                    LayoutSpec::Striped {
                        devices: 3,
                        unit: 1,
                    },
                )
                .initial_records(90),
            )
            .unwrap();
            v.sync_meta().unwrap();
        }
        let v2 = Volume::mount(devs).unwrap();
        // Creating a new file must not collide with the old one's blocks.
        let g = v2
            .create_file(
                FileSpec::new(
                    "b",
                    512,
                    1,
                    LayoutSpec::Striped {
                        devices: 3,
                        unit: 1,
                    },
                )
                .initial_records(90),
            )
            .unwrap();
        for r in 0..90u64 {
            g.write_record(r, &vec![7u8; 512]).unwrap();
        }
        let f = v2.open("a").unwrap();
        // "a" was never written, so its (zero-initialised) blocks must
        // still be zero — proof "b" landed elsewhere.
        let mut buf = vec![0u8; 512];
        f.read_span(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn mount_rejects_blank_devices() {
        use crate::error::FsError;
        let blank = mem_array(2, 1024, 512);
        assert!(matches!(Volume::mount(blank), Err(FsError::Meta(_))));
    }

    #[test]
    fn fresh_volume_mounts_empty() {
        let devs = devices();
        Volume::new(devs.clone()).unwrap();
        let v = Volume::mount(devs).unwrap();
        assert!(v.list().is_empty());
    }
}
