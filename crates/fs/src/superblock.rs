//! Superblock persistence: dual-slot, checksummed, generation-numbered.
//!
//! The paper's *standard* parallel files "must appear conventional to the
//! system" and outlive the programs that use them; that requires durable
//! metadata that also survives *interrupted* writes. The reserved meta
//! region at the front of device 0 is split three ways:
//!
//! ```text
//! block 0 ............ slot A (superblock image + CRC header)
//! block S ............ slot B (same format)
//! block 2S ... M-1 ... intent journal (see `journal`)
//! ```
//!
//! A checkpoint serialises the directory (JSON — metadata is tiny and
//! cold, so a text encoding buys debuggability for free) behind a binary
//! header carrying a magic, a monotonically increasing **generation**
//! and a CRC-32 of the payload, and writes it to the slot the *previous*
//! generation did not use. Mount validates both slots and picks the
//! newest valid one, so a superblock write torn by a crash is never
//! fatal: the alternate slot still holds the previous checkpoint.
//! Mount then replays the intent journal against the loaded generation
//! to recover metadata operations that completed after that checkpoint.

use std::sync::atomic::Ordering;

use serde::{Deserialize, Serialize};

use crate::alloc::Extent;
use crate::crc::crc32;
use crate::error::{FsError, Result};
use crate::journal;
use crate::meta::FileMeta;
use crate::volume::{FileState, VolInner};

/// Preferred size of the whole reserved meta region on device 0.
pub(crate) const META_REGION_BYTES: usize = 256 * 1024;

/// Slot header magic ("2" = the dual-slot checksummed format).
const MAGIC: &[u8; 8] = b"PARIOSB2";

/// Magic of the legacy single-slot format: one unchecksummed
/// `magic (8) | length (8) | JSON` image starting at block 0. Mount
/// still recognises it and migrates the volume to the dual-slot format.
const LEGACY_MAGIC: &[u8; 8] = b"PARIOFS1";

/// Bytes of slot header preceding the payload: magic (8), generation
/// (8), payload length (8), CRC-32 (4), padded to a round 32.
const HEADER: usize = 32;

/// Blocks reserved for the meta region: up to 256 KiB, but never more
/// than an eighth of device 0 (small test volumes), and at least 8
/// blocks. Deterministic in the device shape, so format and mount agree.
pub(crate) fn meta_blocks(block_size: usize, device_blocks: u64) -> u64 {
    let want = (META_REGION_BYTES as u64).div_ceil(block_size as u64);
    want.min(device_blocks / 8).max(8)
}

/// Blocks per superblock slot: the region less the journal share, split
/// in two. With the 8-block minimum region this is never below 3.
pub(crate) fn slot_blocks(meta_blocks: u64) -> u64 {
    (meta_blocks - (meta_blocks / 4).max(2)) / 2
}

/// First block of the intent journal area.
pub(crate) fn journal_start(meta_blocks: u64) -> u64 {
    2 * slot_blocks(meta_blocks)
}

/// Blocks available to the intent journal.
pub(crate) fn journal_blocks(meta_blocks: u64) -> u64 {
    meta_blocks - journal_start(meta_blocks)
}

/// What mount found in the meta region — kept on the volume for
/// recovery tooling and the E20 experiment.
#[derive(Clone, Debug)]
pub struct MountReport {
    /// Generation of the checkpoint the mount loaded.
    pub generation: u64,
    /// Which slot (0 = A, 1 = B) held it.
    pub slot: u64,
    /// Generation in slot A, if its image validated.
    pub slot_a: Option<u64>,
    /// Generation in slot B, if its image validated.
    pub slot_b: Option<u64>,
    /// Intent-journal records replayed on top of the checkpoint.
    pub replayed_records: u64,
}

/// Point-in-time health of the meta region, for scrub tooling.
#[derive(Clone, Debug)]
pub struct MetaStatus {
    /// Current in-memory checkpoint generation.
    pub generation: u64,
    /// Generation in slot A on disk, if its image validates.
    pub slot_a: Option<u64>,
    /// Generation in slot B on disk, if its image validates.
    pub slot_b: Option<u64>,
    /// Journal blocks holding records not yet checkpointed.
    pub journal_pending_blocks: u64,
    /// Journal records appended since the last checkpoint.
    pub journal_pending_records: u64,
    /// Total journal capacity in blocks.
    pub journal_capacity_blocks: u64,
}

#[derive(Serialize, Deserialize)]
struct Persisted {
    block_size: usize,
    next_id: u64,
    files: Vec<FileMeta>,
}

/// Serialise the directory into the slot the previous generation did
/// not use, then reset the intent journal (a checkpoint supersedes it).
pub(crate) fn store(inner: &VolInner) -> Result<()> {
    // Hold the checkpoint barrier exclusively from snapshot to journal
    // reset. Metadata operations hold it shared across their
    // [mutation, journal-append] window, so every record in the journal
    // right now belongs to a *completed* window: its mutation is
    // visible to the snapshot below, and discarding the record with the
    // journal reset cannot lose an acknowledged operation. Without the
    // barrier, an operation completing between the snapshot and the
    // reset would append a durable record tagged with the old
    // generation that the new checkpoint neither contains nor replays.
    let _barrier = inner.ckpt.write();
    let files: Vec<FileMeta> = {
        let map = inner.files.read();
        let mut metas: Vec<FileMeta> = map.values().map(|s| s.meta.read().clone()).collect();
        metas.sort_by_key(|m| m.id);
        metas
    };
    let persisted = Persisted {
        block_size: inner.block_size,
        next_id: inner.next_id.load(Ordering::Relaxed), // ordering: id counter; persistence tolerates a racing create (next checkpoint catches it)
        files,
    };
    let json = serde_json::to_vec(&persisted).map_err(|e| FsError::Meta(e.to_string()))?;
    let bs = inner.block_size;
    let slot_bytes = (slot_blocks(inner.meta_blocks) * bs as u64) as usize;
    if HEADER + json.len() > slot_bytes {
        return Err(FsError::Meta(format!(
            "superblock needs {} bytes, slot is {slot_bytes}",
            HEADER + json.len()
        )));
    }
    // The journal lock serialises generation arithmetic against record
    // appends (a record is tagged with the generation current at append
    // time, and replay only honours records matching the loaded slot);
    // the barrier above guarantees no append lands between the snapshot
    // and this acquisition.
    let mut journal = inner.journal.lock();
    let gen = journal.gen + 1;
    let slot = gen % 2;
    let mut image = Vec::with_capacity(HEADER + json.len());
    image.extend_from_slice(MAGIC);
    image.extend_from_slice(&gen.to_le_bytes());
    image.extend_from_slice(&(json.len() as u64).to_le_bytes());
    let mut crced = Vec::with_capacity(16 + json.len());
    crced.extend_from_slice(&gen.to_le_bytes());
    crced.extend_from_slice(&(json.len() as u64).to_le_bytes());
    crced.extend_from_slice(&json);
    image.extend_from_slice(&crc32(&crced).to_le_bytes());
    image.resize(HEADER, 0);
    image.extend_from_slice(&json);

    let base = slot * slot_blocks(inner.meta_blocks);
    let dev = &inner.devices[0];
    let mut block = vec![0u8; bs];
    for (i, chunk) in image.chunks(bs).enumerate() {
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()..].fill(0);
        dev.write_block(base + i as u64, &block)?;
    }
    // The durability point: the checkpoint must be on stable media
    // before the in-memory generation advances and the journal resets.
    dev.flush()?;
    journal.gen = gen;
    journal.pos = 0;
    journal.seq = 0;
    Ok(())
}

/// Read one slot and return `(generation, payload)` if it validates.
fn read_slot(inner: &VolInner, slot: u64) -> Option<(u64, Vec<u8>)> {
    let bs = inner.block_size;
    let base = slot * slot_blocks(inner.meta_blocks);
    let dev = &inner.devices[0];
    let mut head = vec![0u8; bs];
    dev.read_block(base, &mut head).ok()?;
    if &head[..8] != MAGIC {
        return None;
    }
    let gen = u64::from_le_bytes(head[8..16].try_into().ok()?);
    let len = u64::from_le_bytes(head[16..24].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(head[24..28].try_into().ok()?);
    let slot_bytes = (slot_blocks(inner.meta_blocks) * bs as u64) as usize;
    if HEADER + len > slot_bytes {
        return None;
    }
    let mut image = vec![0u8; HEADER + len];
    let blocks_needed = image.len().div_ceil(bs);
    let mut block = vec![0u8; bs];
    for i in 0..blocks_needed {
        if i == 0 {
            block.copy_from_slice(&head);
        } else {
            dev.read_block(base + i as u64, &mut block).ok()?;
        }
        let start = i * bs;
        let take = bs.min(image.len() - start);
        image[start..start + take].copy_from_slice(&block[..take]);
    }
    let mut crced = Vec::with_capacity(16 + len);
    crced.extend_from_slice(&gen.to_le_bytes());
    crced.extend_from_slice(&(len as u64).to_le_bytes());
    crced.extend_from_slice(&image[HEADER..]);
    if crc32(&crced) != crc {
        return None;
    }
    Some((gen, image[HEADER..].to_vec()))
}

/// Read a legacy `PARIOFS1` image and return its JSON payload, if block
/// 0 carries one. The legacy region shares `meta_blocks` with the
/// current layout, so the payload bytes are wherever the old release
/// left them — possibly extending under today's slot B and journal
/// areas, which is why migration re-persists before anything writes
/// there.
fn read_legacy(inner: &VolInner) -> Option<Vec<u8>> {
    let bs = inner.block_size;
    let dev = &inner.devices[0];
    let mut head = vec![0u8; bs];
    dev.read_block(0, &mut head).ok()?;
    if &head[..8] != LEGACY_MAGIC {
        return None;
    }
    let len = u64::from_le_bytes(head[8..16].try_into().ok()?) as usize;
    let region = (inner.meta_blocks * bs as u64) as usize;
    if 16 + len > region {
        return None;
    }
    let mut image = vec![0u8; 16 + len];
    let blocks_needed = image.len().div_ceil(bs);
    let mut block = vec![0u8; bs];
    for i in 0..blocks_needed {
        if i == 0 {
            block.copy_from_slice(&head);
        } else {
            dev.read_block(i as u64, &mut block).ok()?;
        }
        let start = i * bs;
        let take = bs.min(image.len() - start);
        image[start..start + take].copy_from_slice(&block[..take]);
    }
    Some(image[16..].to_vec())
}

/// Read the meta region, rebuild directory + allocator state from the
/// newest valid slot, and replay the intent journal on top of it. A
/// volume written by the legacy single-slot release is loaded as
/// generation 0 and re-persisted in the dual-slot format.
pub(crate) fn load(inner: &VolInner) -> Result<MountReport> {
    let a = read_slot(inner, 0);
    let b = read_slot(inner, 1);
    let slot_a = a.as_ref().map(|(g, _)| *g);
    let slot_b = b.as_ref().map(|(g, _)| *g);
    let (slot, gen, payload, legacy) = match (a, b) {
        (Some((ga, pa)), Some((gb, pb))) => {
            if ga >= gb {
                (0, ga, pa, false)
            } else {
                (1, gb, pb, false)
            }
        }
        (Some((ga, pa)), None) => (0, ga, pa, false),
        (None, Some((gb, pb))) => (1, gb, pb, false),
        (None, None) => match read_legacy(inner) {
            Some(payload) => (0, 0, payload, true),
            None => {
                return Err(FsError::Meta(
                    "no valid pario superblock in either slot on device 0".into(),
                ))
            }
        },
    };
    let bs = inner.block_size;
    let persisted: Persisted =
        serde_json::from_slice(&payload).map_err(|e| FsError::Meta(e.to_string()))?;
    if persisted.block_size != bs {
        return Err(FsError::Meta(format!(
            "volume was formatted with {}-byte blocks, devices use {bs}",
            persisted.block_size
        )));
    }
    inner.next_id.store(persisted.next_id, Ordering::Relaxed); // ordering: id counter; recovery runs before any sharing
    {
        let mut files = inner.files.write();
        let mut alloc = inner.alloc.lock();
        for meta in persisted.files {
            for (slot, extents) in meta.extents.iter().enumerate() {
                let dev_idx = meta.device_map[slot];
                for &e in extents {
                    let e: Extent = e;
                    alloc.reserve(dev_idx, e);
                }
            }
            files.insert(meta.name.clone(), std::sync::Arc::new(FileState::new(meta)));
        }
    }
    {
        let mut journal = inner.journal.lock();
        journal.gen = gen;
        journal.pos = 0;
        journal.seq = 0;
    }
    // A legacy volume predates the journal: its journal area holds
    // whatever bytes the old release left there, not records.
    let replayed = if legacy { 0 } else { journal::replay(inner, gen)? };
    if replayed > 0 || legacy {
        // Fold the replayed operations (or the migrated legacy image)
        // into a fresh checkpoint so the recovered state is durable in
        // the current format without a second replay or migration.
        store(inner)?;
    }
    Ok(MountReport {
        generation: gen,
        slot,
        slot_a,
        slot_b,
        replayed_records: replayed,
    })
}

/// Current on-disk + in-memory health of the meta region.
pub(crate) fn status(inner: &VolInner) -> MetaStatus {
    let slot_a = read_slot(inner, 0).map(|(g, _)| g);
    let slot_b = read_slot(inner, 1).map(|(g, _)| g);
    let journal = inner.journal.lock();
    MetaStatus {
        generation: journal.gen,
        slot_a,
        slot_b,
        journal_pending_blocks: journal.pos,
        journal_pending_records: journal.seq,
        journal_capacity_blocks: journal_blocks(inner.meta_blocks),
    }
}

#[cfg(test)]
mod tests {
    use crate::volume::{FileSpec, Volume};
    use pario_disk::{mem_array, DeviceRef};
    use pario_layout::LayoutSpec;

    fn devices() -> Vec<DeviceRef> {
        mem_array(3, 1024, 512)
    }

    #[test]
    fn persist_and_mount_round_trip() {
        let devs = devices();
        {
            let v = Volume::new(devs.clone()).unwrap();
            let f = v
                .create_file(
                    FileSpec::new(
                        "data",
                        100,
                        4,
                        LayoutSpec::Striped {
                            devices: 3,
                            unit: 2,
                        },
                    )
                    .org("IS:3"),
                )
                .unwrap();
            for r in 0..40u64 {
                let rec: Vec<u8> = (0..100).map(|i| (r as usize + i) as u8).collect();
                f.write_record(r, &rec).unwrap();
            }
            v.sync_meta().unwrap();
        }
        // Remount from the same devices: directory, metadata and data all
        // survive.
        let v2 = Volume::mount(devs).unwrap();
        assert_eq!(v2.list(), vec!["data".to_string()]);
        let f = v2.open("data").unwrap();
        assert_eq!(f.len_records(), 40);
        assert_eq!(f.org(), "IS:3");
        let mut buf = vec![0u8; 100];
        for r in 0..40u64 {
            f.read_record(r, &mut buf).unwrap();
            let expect: Vec<u8> = (0..100).map(|i| (r as usize + i) as u8).collect();
            assert_eq!(buf, expect, "record {r}");
        }
    }

    #[test]
    fn mount_preserves_allocator_state() {
        let devs = devices();
        {
            let v = Volume::new(devs.clone()).unwrap();
            v.create_file(
                FileSpec::new(
                    "a",
                    512,
                    1,
                    LayoutSpec::Striped {
                        devices: 3,
                        unit: 1,
                    },
                )
                .initial_records(90),
            )
            .unwrap();
            v.sync_meta().unwrap();
        }
        let v2 = Volume::mount(devs).unwrap();
        // Creating a new file must not collide with the old one's blocks.
        let g = v2
            .create_file(
                FileSpec::new(
                    "b",
                    512,
                    1,
                    LayoutSpec::Striped {
                        devices: 3,
                        unit: 1,
                    },
                )
                .initial_records(90),
            )
            .unwrap();
        for r in 0..90u64 {
            g.write_record(r, &vec![7u8; 512]).unwrap();
        }
        let f = v2.open("a").unwrap();
        // "a" was never written, so its (zero-initialised) blocks must
        // still be zero — proof "b" landed elsewhere.
        let mut buf = vec![0u8; 512];
        f.read_span(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn mount_rejects_blank_devices() {
        use crate::error::FsError;
        let blank = mem_array(2, 1024, 512);
        assert!(matches!(Volume::mount(blank), Err(FsError::Meta(_))));
    }

    #[test]
    fn fresh_volume_mounts_empty() {
        let devs = devices();
        let v = Volume::new(devs.clone()).unwrap();
        v.abandon();
        drop(v);
        let v = Volume::mount(devs).unwrap();
        assert!(v.list().is_empty());
    }

    #[test]
    fn checkpoints_alternate_slots_and_bump_generations() {
        let devs = devices();
        let v = Volume::new(devs.clone()).unwrap();
        let s0 = v.meta_status();
        v.sync_meta().unwrap();
        let s1 = v.meta_status();
        assert_eq!(s1.generation, s0.generation + 1);
        // Both slots hold valid images with consecutive generations.
        let (a, b) = (s1.slot_a.unwrap(), s1.slot_b.unwrap());
        assert_eq!(a.max(b), s1.generation);
        assert_eq!(a.min(b) + 1, a.max(b));
    }

    #[test]
    fn legacy_single_slot_superblock_migrates() {
        let devs = devices();
        // A minimal image as the pre-dual-slot release wrote it: magic,
        // payload length, then the JSON directory at block 0.
        let json = br#"{"block_size":512,"next_id":1,"files":[]}"#;
        let mut image = Vec::new();
        image.extend_from_slice(super::LEGACY_MAGIC);
        image.extend_from_slice(&(json.len() as u64).to_le_bytes());
        image.extend_from_slice(json);
        let mut block = vec![0u8; 512];
        block[..image.len()].copy_from_slice(&image);
        devs[0].write_block(0, &block).unwrap();

        let v = Volume::mount(devs.clone()).unwrap();
        assert!(v.list().is_empty());
        let report = v.mount_report().expect("mount sets a report");
        assert_eq!(report.generation, 0);
        assert_eq!(report.replayed_records, 0);
        // Migration re-persisted the image in the dual-slot format...
        let s = v.meta_status();
        assert_eq!(s.generation, 1);
        assert!(s.slot_a.is_some() || s.slot_b.is_some());
        v.abandon();
        drop(v);
        // ...so the next mount loads a current-format checkpoint.
        let v2 = Volume::mount(devs).unwrap();
        assert!(v2.list().is_empty());
        assert_eq!(v2.mount_report().expect("report").generation, 1);
    }

    #[test]
    fn torn_superblock_recovers_from_alternate_slot() {
        let devs = devices();
        let synced_gen;
        {
            let v = Volume::new(devs.clone()).unwrap();
            v.create_file(
                FileSpec::new(
                    "keep",
                    512,
                    1,
                    LayoutSpec::Striped {
                        devices: 3,
                        unit: 1,
                    },
                )
                .initial_records(8),
            )
            .unwrap();
            v.sync_meta().unwrap();
            synced_gen = v.meta_status().generation;
            v.abandon();
        }
        // Corrupt the newest slot mid-image, as a torn write would: the
        // header block survives but the payload is garbage.
        {
            let probe = Volume::mount(devs.clone()).unwrap();
            let newest = probe.meta_status().generation % 2;
            probe.abandon();
            drop(probe);
            let base = newest * super::slot_blocks(super::meta_blocks(512, 1024));
            let mut head = vec![0u8; 512];
            devs[0].read_block(base, &mut head).unwrap();
            for b in head.iter_mut().skip(super::HEADER).take(16) {
                *b ^= 0xFF;
            }
            devs[0].write_block(base, &head).unwrap();
        }
        let v2 = Volume::mount(devs).unwrap();
        let report = v2.mount_report().expect("mount sets a report");
        assert!(
            report.generation < synced_gen,
            "fell back to an older checkpoint: {report:?}"
        );
        assert_eq!(v2.list(), vec!["keep".to_string()]);
    }
}
