//! Committed lint fixture: every rule of `cargo run -p xtask -- lint`
//! must fire on this file. `lint --self-test` (run in CI) fails the
//! build if any rule stops detecting its seeded violation below.
//!
//! This file is data for the lint self-test, not code: it is never
//! compiled (it lives outside any `src/` tree).

use std::sync::Mutex; // R1: std::sync::Mutex on the request path

struct Node {
    state: Mutex<Vec<u8>>,
}

fn spawn_worker() {
    // R1: raw spawn instead of a named Builder worker.
    let h = std::thread::spawn(|| {});
    // R2: expect without an invariant comment.
    h.join().expect("worker never panics");
}

fn read_state(n: &Node) -> usize {
    // R2: unwrap without an invariant comment.
    let g = n.state.lock().unwrap();
    g.len()
}

fn inverted_locks(file: &File, vol: &Volume) {
    // R3: fs.rmw (rank 60) is taken first...
    let _rmw = file.rmw_lock.lock();
    // ...and fs.alloc (rank 50) acquired under it: descending order.
    let _alloc = vol.alloc.lock();
}

// R4: a raw std atomic type, invisible to the race detector.
use std::sync::atomic::AtomicU64;

fn unjustified_relaxed(n: &AtomicU64) -> u64 {
    // R5: Relaxed with no justification comment.
    n.load(std::sync::atomic::Ordering::Relaxed)
}
