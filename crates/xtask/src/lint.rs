//! The textual lint rules. Deliberately simple: line-oriented, no
//! parsing, conservative about test code (everything after a
//! `#[cfg(test)]` in a file is ignored — workspace convention keeps
//! test modules at the bottom of the file).

use std::fmt;
use std::path::Path;

/// One rule violation at a file location.
#[derive(Debug)]
pub struct Finding {
    /// Rule id: "R1" (std-sync ban), "R2" (unwrap policy), "R3"
    /// (lock order), "R4" (raw-atomic ban), "R5" (Relaxed
    /// justification).
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Ranked locks of DESIGN.md §8, as `receiver.method` patterns. The
/// scan flags a function that acquires a lower-ranked lock after a
/// higher-ranked one.
const RANKED_LOCKS: &[(&str, &str, u8)] = &[
    ("credits.lock(", "net.credits", 3),
    ("replies.lock(", "net.replies", 5),
    ("wire.lock(", "net.send", 7),
    ("big_lock.lock(", "core.big_lock", 10),
    ("held.lock(", "server.range_lock", 30),
    ("free.lock(", "buffer.pool", 40),
    ("rmw.lock(", "core.direct_rmw", 45),
    ("alloc.lock(", "fs.alloc", 50),
    ("rmw_lock.lock(", "fs.rmw", 60),
    ("stripe_lock.lock(", "fs.stripe", 70),
    ("frames.lock(", "buffer.volume_cache", 75),
    ("journal.lock(", "fs.journal", 78),
    ("board.lock(", "fs.health", 80),
];

/// R1: request-path code must build on the `pario-check` primitives.
const BANNED_SYNC: &[(&str, &str)] = &[
    (
        "std::sync::Mutex",
        "use pario_check::Mutex (model-checkable)",
    ),
    (
        "std::sync::RwLock",
        "use pario_check::RwLock (model-checkable)",
    ),
    (
        "std::sync::Condvar",
        "use pario_check::Condvar (model-checkable)",
    ),
    (
        "std::thread::spawn(",
        "use a named std::thread::Builder worker (or pario_check::spawn in models)",
    ),
];

/// Lint one file's text; returns every violation found.
pub fn lint_file(path: &Path, text: &str) -> Vec<Finding> {
    let file = path.display().to_string();
    let mut out = Vec::new();
    // Highest ranked-lock acquisition seen so far in the current
    // function: (rank, name, line).
    let mut fn_high: Option<(u8, &'static str, usize)> = None;
    let mut prev_line = "";

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        if raw.contains("#[cfg(test)]") {
            // Convention: test modules close out the file.
            break;
        }
        let line = strip_comment(raw);
        let code = line.trim();
        if code.is_empty() {
            // Comment-only lines still become `prev_line` so a
            // full-line `// invariant:` waives the line after it.
            prev_line = raw;
            continue;
        }
        // A new fn starts a fresh acquisition sequence. (Textual: good
        // enough for the flat impl blocks this workspace writes.)
        if code.starts_with("fn ")
            || code.starts_with("pub fn ")
            || code.starts_with("pub(crate) fn ")
        {
            fn_high = None;
        }

        for (pat, fix) in BANNED_SYNC {
            if line.contains(pat) {
                out.push(Finding {
                    rule: "R1",
                    file: file.clone(),
                    line: lineno,
                    message: format!(
                        "`{}` is banned on the request path: {fix}",
                        pat.trim_end_matches('(')
                    ),
                });
            }
        }

        let waived = raw.contains("// invariant:")
            || (strip_comment(prev_line).trim().is_empty() && prev_line.contains("// invariant:"));
        if !waived && (line.contains(".unwrap()") || line.contains(".expect(")) {
            out.push(Finding {
                rule: "R2",
                file: file.clone(),
                line: lineno,
                message: "`.unwrap()`/`.expect()` in library code: return an error, \
                          or state the invariant in a `// invariant:` comment"
                    .to_string(),
            });
        }

        // R4: raw atomic *types* are banned; `std::sync::atomic::Ordering`
        // alone stays legal (the wrappers take the std Ordering enum).
        if line.contains("std::sync::atomic") && line.contains("Atomic") {
            out.push(Finding {
                rule: "R4",
                file: file.clone(),
                line: lineno,
                message: "raw `std::sync::atomic` type on the request path: use the \
                          pario_check atomics so the happens-before detector sees \
                          every operation"
                    .to_string(),
            });
        }

        // R5: a Relaxed ordering propagates no happens-before edge, so
        // each use must say why that is sound.
        let ordered = raw.contains("// ordering:")
            || (strip_comment(prev_line).trim().is_empty() && prev_line.contains("// ordering:"));
        if !ordered && line.contains("Ordering::Relaxed") {
            out.push(Finding {
                rule: "R5",
                file: file.clone(),
                line: lineno,
                message: "`Ordering::Relaxed` synchronizes nothing: justify it with a \
                          `// ordering:` comment on the same or the preceding line \
                          (or use Acquire/Release/SeqCst)"
                    .to_string(),
            });
        }

        let order_waived = raw.contains("// lock-order:") || prev_line.contains("// lock-order:");
        for &(pat, name, rank) in RANKED_LOCKS {
            if !line.contains(pat) {
                continue;
            }
            if let Some((held_rank, held_name, held_line)) = fn_high {
                if rank <= held_rank && name != held_name && !order_waived {
                    out.push(Finding {
                        rule: "R3",
                        file: file.clone(),
                        line: lineno,
                        message: format!(
                            "acquires `{name}` (rank {rank}) after `{held_name}` \
                             (rank {held_rank}, line {held_line}); the hierarchy in \
                             DESIGN.md §8 ascends. If the earlier guard is already \
                             dropped, waive with `// lock-order: released above`"
                        ),
                    });
                }
            }
            if fn_high.is_none_or(|(r, _, _)| rank > r) {
                fn_high = Some((rank, name, lineno));
            }
        }
        prev_line = raw;
    }
    out
}

/// Drop a trailing `//` comment (string literals with `//` in them are
/// rare enough in this workspace to ignore).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> Vec<Finding> {
        lint_file(Path::new("t.rs"), text)
    }

    #[test]
    fn bans_std_sync_and_raw_spawn() {
        let v = lint("use std::sync::Mutex;\nlet h = std::thread::spawn(|| {});\n");
        assert_eq!(v.iter().filter(|f| f.rule == "R1").count(), 2);
    }

    #[test]
    fn unwrap_needs_invariant_comment() {
        assert_eq!(lint("let x = y.unwrap();\n").len(), 1);
        assert!(
            lint("// invariant: y was just inserted\nlet x = y.unwrap();\n").is_empty(),
            "a full-line invariant comment waives the next line"
        );
        assert!(lint("let x = y.unwrap(); // invariant: just inserted\n").is_empty());
    }

    #[test]
    fn lock_order_must_ascend() {
        let bad = "fn f(&self) {\n let a = self.state.rmw_lock.lock();\n let b = self.vol.alloc.lock();\n}\n";
        let v = lint(bad);
        assert_eq!(v.iter().filter(|f| f.rule == "R3").count(), 1);
        let good = "fn f(&self) {\n let b = self.vol.alloc.lock();\n let a = self.state.rmw_lock.lock();\n}\n";
        assert!(lint(good).iter().all(|f| f.rule != "R3"));
    }

    #[test]
    fn raw_atomics_are_banned_but_ordering_import_is_not() {
        let v = lint("use std::sync::atomic::{AtomicU64, Ordering};\n");
        assert_eq!(v.iter().filter(|f| f.rule == "R4").count(), 1);
        let v = lint("let b = std::sync::atomic::AtomicBool::new(false);\n");
        assert_eq!(v.iter().filter(|f| f.rule == "R4").count(), 1);
        assert!(
            lint("use std::sync::atomic::Ordering;\n").is_empty(),
            "importing just the Ordering enum is legal"
        );
    }

    #[test]
    fn relaxed_needs_ordering_comment() {
        let v = lint("let x = n.load(Ordering::Relaxed);\n");
        assert_eq!(v.iter().filter(|f| f.rule == "R5").count(), 1);
        assert!(
            lint("let x = n.load(Ordering::Relaxed); // ordering: monotonic counter\n").is_empty()
        );
        assert!(
            lint("// ordering: stats only, no reader depends on it\nlet x = n.load(Ordering::Relaxed);\n")
                .is_empty(),
            "a full-line ordering comment waives the next line"
        );
        assert!(lint("let x = n.load(Ordering::Acquire);\n").is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let v = lint("fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap(); }\n}\n");
        assert!(v.is_empty());
    }
}
