//! Workspace automation tasks (no external dependencies).
//!
//! ```text
//! cargo run -p xtask -- lint               # lint the request-path crates
//! cargo run -p xtask -- lint --self-test   # assert every rule fires on the fixture
//! cargo run -p xtask -- lint <file.rs>...  # lint specific files
//! cargo run -p xtask -- bench-diff <old.json> <new.json> [--threshold PCT]
//!                                          # flag p99 regressions between runs
//! ```
//!
//! The `lint` task enforces the workspace concurrency policy that
//! rustc/clippy cannot express, with a plain textual scan:
//!
//! * **R1 std-sync ban** — request-path crates must use the
//!   `pario-check` primitives (model-checkable) instead of
//!   `std::sync::{Mutex, RwLock, Condvar}`, `parking_lot` directly, or
//!   raw `std::thread::spawn` (named `thread::Builder` workers are
//!   allowed).
//! * **R2 unwrap policy** — no `.unwrap()` / `.expect(` in non-test
//!   library code of the request-path crates; waive a genuinely
//!   infallible call with a `// invariant:` comment on the same or the
//!   preceding line stating *why* it cannot fail.
//! * **R3 lock order** — within one function, acquisitions of the
//!   ranked locks documented in DESIGN.md §8 must ascend. The scan is
//!   textual (it cannot see guard drops), so a deliberate
//!   release-before-acquire sequence is waived with
//!   `// lock-order: released above`.
//! * **R4 raw-atomic ban** — request-path crates must use the
//!   `pario-check` atomic wrappers, not `std::sync::atomic` types, so
//!   the happens-before race detector observes every operation and the
//!   `Ordering` it was given (importing `std::sync::atomic::Ordering`
//!   itself is fine — the wrappers take it).
//! * **R5 Relaxed justification** — every `Ordering::Relaxed` must
//!   carry a `// ordering:` comment on the same or the preceding line
//!   saying why no happens-before edge is needed there.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod bench_diff;
mod lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("bench-diff") => bench_diff::run(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [--self-test | <file.rs>...]\n\
                 \x20      cargo run -p xtask -- bench-diff <old.json> <new.json> [--threshold PCT]"
            );
            ExitCode::FAILURE
        }
    }
}

/// Crates whose `src/` trees are subject to the request-path rules.
const REQUEST_PATH_CRATES: &[&str] = &["core", "disk", "fs", "server", "buffer", "layout", "net"];

const FIXTURE: &str = "crates/xtask/fixtures/violation.rs";

fn run_lint(args: &[String]) -> ExitCode {
    let root = workspace_root();
    if args.first().map(String::as_str) == Some("--self-test") {
        return self_test(&root);
    }

    let files: Vec<PathBuf> = if args.is_empty() {
        REQUEST_PATH_CRATES
            .iter()
            .flat_map(|c| rust_sources(&root.join("crates").join(c).join("src")))
            .collect()
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut findings = Vec::new();
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(text) => findings.extend(lint::lint_file(f, &text)),
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        }
    }
    for v in &findings {
        println!("{v}");
    }
    if findings.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Assert the lint still catches everything the fixture seeds: one
/// finding per rule at minimum, and zero on a clean snippet. This is
/// what CI runs — a lint that silently stops firing fails here.
fn self_test(root: &Path) -> ExitCode {
    let fixture = root.join(FIXTURE);
    let text = match std::fs::read_to_string(&fixture) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "xtask lint --self-test: cannot read {}: {e}",
                fixture.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let findings = lint::lint_file(&fixture, &text);
    let mut ok = true;
    for rule in ["R1", "R2", "R3", "R4", "R5"] {
        let n = findings.iter().filter(|f| f.rule == rule).count();
        if n == 0 {
            eprintln!("xtask lint --self-test: rule {rule} found nothing in the fixture");
            ok = false;
        } else {
            println!("xtask lint --self-test: {rule} fired {n}x on the fixture");
        }
    }
    let clean = "fn fine() { let x = Some(1); if let Some(v) = x { drop(v); } }\n";
    let false_pos = lint::lint_file(Path::new("clean.rs"), clean);
    if !false_pos.is_empty() {
        eprintln!("xtask lint --self-test: false positives on clean code: {false_pos:?}");
        ok = false;
    }
    if ok {
        println!("xtask lint --self-test: ok");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: xtask always runs via `cargo run -p xtask`,
/// whose working directory is the invoking directory; walk up from the
/// manifest instead so the scan works from anywhere in the tree.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask lives two levels under the workspace root")
        .to_path_buf()
}

/// Every `.rs` file under `dir`, recursively, in sorted order.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_sources(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}
