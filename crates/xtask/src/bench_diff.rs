//! `xtask bench-diff` — compare two `BENCH_*.json` files and flag
//! latency regressions.
//!
//! The bench summaries are flat JSON objects of numbers and strings
//! (see `pario_bench::table::Bench`). This task parses them with a
//! purpose-built scanner (xtask takes no dependencies), lines up the
//! numeric keys both files share, and prints the relative change per
//! key. Any key containing `p99` whose value grew by more than the
//! threshold (default 10%) is a **regression** and fails the task —
//! wire it between a baseline and a candidate run in CI and a p99 cliff
//! cannot land silently.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// A flat JSON object's values: numbers compared, strings displayed.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Num(f64),
    Str(String),
}

/// Parse a flat JSON object (`{"key": 1.5, "other": "text", ...}`) —
/// exactly the shape `Bench::save` writes. Nested objects/arrays are
/// rejected; the bench files never contain them.
pub fn parse_flat_json(text: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.ws();
    if p.peek() == Some(b'}') {
        return Ok(map);
    }
    loop {
        p.ws();
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        let v = match p.peek() {
            Some(b'"') => Value::Str(p.string()?),
            Some(c) if c == b'-' || c.is_ascii_digit() => Value::Num(p.number()?),
            other => return Err(format!("unsupported value at byte {}: {other:?}", p.i)),
        };
        map.insert(key, v);
        p.ws();
        match p.peek() {
            Some(b',') => p.i += 1,
            Some(b'}') => return Ok(map),
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, got {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => s.push(c as char),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    s.push(c as char);
                    self.i += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Does a grown value of this key count as a latency regression?
/// Latency keys regress *upward*; everything else is informational.
fn is_latency_key(key: &str) -> bool {
    key.contains("p99")
}

/// One compared key: old, new, and the relative change.
struct Delta {
    key: String,
    old: f64,
    new: f64,
}

impl Delta {
    fn ratio(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new / self.old
        }
    }
}

/// One shared numeric key's comparison: (key, old, new, new/old ratio).
pub type KeyDelta = (String, f64, f64, f64);

/// Compare two parsed bench maps; returns (all shared numeric deltas,
/// the subset that regressed past `threshold`).
pub fn compare(
    old: &BTreeMap<String, Value>,
    new: &BTreeMap<String, Value>,
    threshold: f64,
) -> (Vec<KeyDelta>, Vec<String>) {
    let mut deltas = Vec::new();
    let mut regressions = Vec::new();
    for (key, ov) in old {
        let (Value::Num(o), Some(Value::Num(n))) = (ov, new.get(key)) else {
            continue;
        };
        let d = Delta {
            key: key.clone(),
            old: *o,
            new: *n,
        };
        let ratio = d.ratio();
        if is_latency_key(&d.key) && ratio > 1.0 + threshold {
            regressions.push(format!(
                "{}: {:.0} -> {:.0} (+{:.1}%)",
                d.key,
                d.old,
                d.new,
                (ratio - 1.0) * 100.0
            ));
        }
        deltas.push((d.key, d.old, d.new, ratio));
    }
    (deltas, regressions)
}

/// Entry point: `xtask bench-diff <old.json> <new.json> [--threshold PCT]`.
pub fn run(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut threshold = 0.10;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("xtask bench-diff: --threshold needs a number (percent)");
                return ExitCode::FAILURE;
            };
            threshold = v / 100.0;
        } else {
            files.push(a.clone());
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!(
            "usage: cargo run -p xtask -- bench-diff <old.json> <new.json> [--threshold PCT]"
        );
        return ExitCode::FAILURE;
    };
    let load = |path: &str| -> Result<BTreeMap<String, Value>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_flat_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("xtask bench-diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (deltas, regressions) = compare(&old, &new, threshold);
    if deltas.is_empty() {
        eprintln!("xtask bench-diff: no shared numeric keys between the files");
        return ExitCode::FAILURE;
    }
    println!(
        "bench-diff {old_path} -> {new_path} (threshold {:.0}%):",
        threshold * 100.0
    );
    for (key, o, n, ratio) in &deltas {
        let marker = if is_latency_key(key) && *ratio > 1.0 + threshold {
            "  <-- REGRESSION"
        } else {
            ""
        };
        println!(
            "  {key}: {o:.2} -> {n:.2} ({:+.1}%){marker}",
            (ratio - 1.0) * 100.0
        );
    }
    if regressions.is_empty() {
        println!("bench-diff: no p99 regressions past the threshold");
        ExitCode::SUCCESS
    } else {
        println!("bench-diff: {} p99 regression(s):", regressions.len());
        for r in &regressions {
            println!("  {r}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nums(pairs: &[(&str, f64)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), Value::Num(v)))
            .collect()
    }

    #[test]
    fn parses_bench_shape() {
        let m = parse_flat_json(
            "{\n  \"experiment\": \"e19_scale\",\n  \"sat_fast_ops_per_sec\": 86829.5,\n  \"sweep_x025_p99_nanos\": 1048576\n}",
        )
        .unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m["experiment"], Value::Str("e19_scale".into()));
        assert_eq!(m["sat_fast_ops_per_sec"], Value::Num(86829.5));
        assert_eq!(m["sweep_x025_p99_nanos"], Value::Num(1_048_576.0));
        assert!(parse_flat_json("{}").unwrap().is_empty());
        assert!(parse_flat_json("{\"a\": [1]}").is_err());
        assert!(parse_flat_json("not json").is_err());
    }

    #[test]
    fn flags_only_p99_growth_past_threshold() {
        let old = nums(&[
            ("sweep_x100_p99_nanos", 1000.0),
            ("sweep_x100_p50_nanos", 500.0),
            ("sat_fast_ops_per_sec", 100.0),
        ]);
        // p99 +50% regresses; p50 growth and throughput loss do not.
        let new = nums(&[
            ("sweep_x100_p99_nanos", 1500.0),
            ("sweep_x100_p50_nanos", 5000.0),
            ("sat_fast_ops_per_sec", 10.0),
        ]);
        let (deltas, regressions) = compare(&old, &new, 0.10);
        assert_eq!(deltas.len(), 3);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].starts_with("sweep_x100_p99_nanos"));
    }

    #[test]
    fn within_threshold_is_clean() {
        let old = nums(&[("a_p99_nanos", 1000.0)]);
        let new = nums(&[("a_p99_nanos", 1050.0)]);
        let (_, regressions) = compare(&old, &new, 0.10);
        assert!(regressions.is_empty(), "{regressions:?}");
        // Shrinking p99 is never a regression.
        let (_, r2) = compare(&new, &old, 0.10);
        assert!(r2.is_empty());
    }

    #[test]
    fn missing_and_non_numeric_keys_are_skipped() {
        let mut old = nums(&[("x_p99_nanos", 100.0)]);
        old.insert("experiment".into(), Value::Str("e".into()));
        let new = nums(&[("y_p99_nanos", 100.0)]);
        let (deltas, regressions) = compare(&old, &new, 0.10);
        assert!(deltas.is_empty());
        assert!(regressions.is_empty());
    }

    /// The scanner must round-trip anything the *actual* emitter
    /// (`pario_bench::table::Bench`) writes: every `num`/`int`/`label`
    /// field comes back under its key with the value bench-diff will
    /// compare. Floats are exact (`{:?}` is the shortest round-tripping
    /// form and `str::parse::<f64>` inverts it); integers past 2^53
    /// compare as their nearest f64, which is also what a decimal parse
    /// of the exact digits yields.
    mod roundtrip {
        use super::*;
        use pario_bench::table::Bench;
        use proptest::collection::vec;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Field {
            Num(f64),
            Int(u64),
            Label(String),
        }

        /// Bench keys in the wild: lowercase metric paths, sometimes
        /// dotted (`sweep.x025.p99_nanos`).
        fn key() -> impl Strategy<Value = String> {
            const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_.";
            vec(0usize..ALPHA.len(), 1..17)
                .prop_map(|ix| ix.into_iter().map(|i| ALPHA[i] as char).collect())
        }

        /// Finite floats across the magnitudes `Bench::num` sees, so the
        /// emitter exercises both plain (`1.5`) and exponent (`1e300`,
        /// `6.1e-7`) notation.
        fn float() -> impl Strategy<Value = f64> {
            prop_oneof![
                Just(0.0),
                -1.0e9..1.0e9,
                (0.0..1.0).prop_map(|x| x * 1.0e300),
                (0.0..1.0).prop_map(|x| x * 1.0e-300),
                (1.0e-9..1.0).prop_map(|x| -x),
            ]
        }

        /// Label text: printable ASCII plus the escapes both the emitter
        /// and the scanner speak (`\"`, `\\`, `\n`, `\t`). The summaries
        /// are ASCII by construction, and the scanner is byte-wise, so
        /// non-ASCII is out of contract.
        fn label() -> impl Strategy<Value = String> {
            const CHARS: &[u8] = b" abcXYZ089_-./:()%\"\\\n\t";
            vec(0usize..CHARS.len(), 0..24)
                .prop_map(|ix| ix.into_iter().map(|i| CHARS[i] as char).collect())
        }

        fn field() -> impl Strategy<Value = Field> {
            prop_oneof![
                float().prop_map(Field::Num),
                any::<u64>().prop_map(Field::Int),
                label().prop_map(Field::Label),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            fn parser_roundtrips_bench_output(fields in vec((key(), field()), 0..12)) {
                let mut bench = Bench::new();
                let mut expected: BTreeMap<String, Value> = BTreeMap::new();
                // Apply in order: a repeated key overwrites in both the
                // emitter's map and the expectation.
                for (k, f) in &fields {
                    match f {
                        Field::Num(v) => {
                            bench.num(k, *v);
                            expected.insert(k.clone(), Value::Num(*v));
                        }
                        Field::Int(v) => {
                            bench.int(k, *v);
                            expected.insert(k.clone(), Value::Num(*v as f64));
                        }
                        Field::Label(s) => {
                            bench.label(k, s);
                            expected.insert(k.clone(), Value::Str(s.clone()));
                        }
                    }
                }
                let parsed = parse_flat_json(&bench.json()).expect("emitter output must parse");
                prop_assert_eq!(parsed, expected);
            }

            fn self_diff_is_always_clean(fields in vec((key(), field()), 1..12)) {
                let mut bench = Bench::new();
                for (k, f) in &fields {
                    match f {
                        Field::Num(v) => bench.num(k, *v),
                        Field::Int(v) => bench.int(k, *v),
                        Field::Label(s) => bench.label(k, s),
                    };
                }
                let m = parse_flat_json(&bench.json()).expect("emitter output must parse");
                let (deltas, regressions) = compare(&m, &m, 0.10);
                prop_assert!(regressions.is_empty(), "{:?}", regressions);
                // Every shared numeric key self-compares at ratio 1.
                prop_assert!(deltas.iter().all(|(_, _, _, r)| *r == 1.0), "{:?}", deltas);
            }
        }
    }
}
