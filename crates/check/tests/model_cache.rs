//! Model checks for the volume-wide cache tier (`VolumeCache`): with
//! the cache fronting every span path, concurrent sub-block writers,
//! readers, and an explicit flusher must preserve the uncached byte
//! semantics in every schedule, and the cache lock (rank
//! `buffer.volume_cache` = 75) must never invert against the fs locks
//! below it or the health board above it.
#![cfg(pario_check)]

use pario_check::{spawn, Config, Explorer};
use pario_disk::mem_array;
use pario_fs::{FileSpec, Volume, VolumeCacheConfig, VolumeConfig};
use pario_layout::LayoutSpec;

const BS: usize = 64;

fn cached_volume(cfg: VolumeCacheConfig) -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 2,
        device_blocks: 128,
        block_size: BS,
    })
    .expect("in-memory volume")
    .enable_cache(cfg)
    .expect("attach cache")
}

fn striped_file(v: &Volume) -> pario_fs::RawFile {
    v.create_file(
        FileSpec::new(
            "m",
            16,
            4,
            LayoutSpec::Striped {
                devices: 2,
                unit: 1,
            },
        )
        .initial_records(16),
    )
    .expect("create file")
}

/// Two sub-block writers to disjoint ranges of block 0 racing a reader
/// and a flusher, all through the write-back cache tier. Every schedule
/// must end with both writers' bytes on the devices after a final
/// flush, and no schedule may acquire the cache lock out of rank order.
/// The explorer must cover at least 1000 distinct interleavings, so the
/// lock-order claim rests on real coverage rather than a lucky seed.
#[test]
fn cached_sub_block_writers_keep_uncached_semantics() {
    let report = Explorer::new(Config::new(1500)).run(|| {
        let v = cached_volume(VolumeCacheConfig::write_back(8));
        let f = striped_file(&v);
        f.write_span(0, &[0u8; BS]).expect("zero block 0");

        let f1 = f.clone();
        let h1 = spawn(move || {
            f1.write_span(0, &[0xAA; 16]).expect("sub-block write");
        });
        let f2 = f.clone();
        let h2 = spawn(move || {
            f2.write_span(32, &[0xBB; 16]).expect("sub-block write");
        });
        let f3 = f.clone();
        let h3 = spawn(move || {
            let mut out = [0u8; 16];
            // GDA-style unsynchronised read: any interleaving is legal,
            // it just must not deadlock or see torn frame state.
            f3.read_span(16, &mut out).expect("concurrent read");
        });
        let v4 = v.clone();
        let h4 = spawn(move || {
            v4.flush_cache().expect("concurrent flush");
        });
        h1.join();
        h2.join();
        h3.join();
        h4.join();

        v.flush_cache().expect("final flush");
        let mut out = [0u8; BS];
        f.read_span(0, &mut out).expect("read back");
        assert!(
            out[..16].iter().all(|&b| b == 0xAA),
            "writer 1's bytes lost: {:?}",
            &out[..16]
        );
        assert!(
            out[32..48].iter().all(|&b| b == 0xBB),
            "writer 2's bytes lost: {:?}",
            &out[32..48]
        );
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.distinct >= 1000,
        "coverage too thin: {} distinct schedules",
        report.distinct
    );
}

/// Writers overflowing the frame budget while a spill device is
/// attached: eviction must spill instead of blocking, growth must take
/// the alloc lock strictly below the cache lock, and a final flush must
/// land every spilled frame back on its home device.
#[test]
fn spill_overflow_races_growth_without_inversion() {
    let report = Explorer::new(Config::new(300)).run(|| {
        let scratch = mem_array(1, 256, BS).remove(0);
        // 2 frames force eviction on nearly every write.
        let v = cached_volume(VolumeCacheConfig::write_back(2).with_spill(scratch));
        let f = striped_file(&v);

        let f1 = f.clone();
        let h1 = spawn(move || {
            for b in 0..4u64 {
                f1.write_span(b * BS as u64, &[b as u8 + 1; BS])
                    .expect("write");
            }
        });
        let f2 = f.clone();
        let h2 = spawn(move || {
            // Grows the file: allocator lock (50) under span writes.
            f2.ensure_capacity_records(64).expect("grow");
        });
        h1.join();
        h2.join();

        v.flush_cache().expect("flush");
        let mut out = [0u8; BS];
        for b in 0..4u64 {
            f.read_span(b * BS as u64, &mut out).expect("read back");
            assert!(
                out.iter().all(|&x| x == b as u8 + 1),
                "block {b} lost after spill + flush"
            );
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}
