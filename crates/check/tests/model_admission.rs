//! Model checks for `pario_server::admission::Admission`: the in-flight
//! bound holds in every schedule, permits freed under contention are
//! never lost, waiters within a session are served FIFO, and grants
//! rotate round-robin across sessions.
#![cfg(pario_check)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pario_check::{spawn, AtomicU64, Config, Explorer, Mutex};
use pario_server::admission::Admission;
use pario_server::Saturation;

/// Four threads through a limit of two: the live count never exceeds
/// the limit, and every waiter is eventually admitted (a lost permit
/// wakeup would park the run as a model deadlock).
#[test]
fn limit_holds_and_no_wakeup_is_lost() {
    let report = Explorer::new(Config::new(1500)).run(|| {
        let adm = Arc::new(Admission::new(2, Saturation::Block));
        let live = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for sess in 0..4u64 {
            let adm = Arc::clone(&adm);
            let live = Arc::clone(&live);
            hs.push(spawn(move || {
                let p = adm.acquire(sess).expect("block policy never rejects");
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                assert!(now <= 2, "{now} ops admitted past the limit");
                live.fetch_sub(1, Ordering::SeqCst);
                drop(p);
            }));
        }
        for h in hs {
            h.join();
        }
        let s = adm.stats();
        assert_eq!(s.in_flight, 0);
        assert!(s.admitted_high_water <= 2);
        assert_eq!(s.rejected, 0);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.distinct >= 1000,
        "only {} distinct schedules",
        report.distinct
    );
}

/// Deterministic arrivals (each waiter parks before the next is
/// spawned): two waiters of the same session are granted in FIFO order,
/// and a third waiter from another session is granted between them —
/// round-robin rotation, not session draining.
#[test]
fn grants_are_fifo_within_and_rotate_across_sessions() {
    let report = Explorer::new(Config::new(600)).run(|| {
        let adm = Arc::new(Admission::new(1, Saturation::Block));
        let order = Arc::new(Mutex::new(Vec::new()));
        let hold = adm.acquire(99).expect("first permit is free");

        let mut hs = Vec::new();
        // Arrival order: (session 1, tag 10), (session 1, tag 11),
        // (session 2, tag 20). Spin until each is parked before spawning
        // the next; the admission mutex is instrumented, so the spin is
        // a sequence of yield points and the scheduler's fairness bound
        // guarantees the waiter actually reaches its queue.
        for (i, (sess, tag)) in [(1u64, 10u64), (1, 11), (2, 20)].into_iter().enumerate() {
            let adm2 = Arc::clone(&adm);
            let order2 = Arc::clone(&order);
            hs.push(spawn(move || {
                let p = adm2.acquire(sess).expect("block policy never rejects");
                order2.lock().push(tag);
                drop(p);
            }));
            while adm.stats().wait_high_water < i + 1 {
                std::hint::spin_loop();
            }
        }

        drop(hold);
        for h in hs {
            h.join();
        }
        let order = order.lock().clone();
        // Session 1 queued first => granted first; then rotation moves
        // to session 2 before session 1's second waiter.
        assert_eq!(order, vec![10, 20, 11], "unfair grant order {order:?}");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}
