//! Model checks for `pario_server::admission::Admission`: the in-flight
//! bound holds in every schedule, permits freed under contention are
//! never lost, waiters within a session are served FIFO, and grants
//! rotate round-robin across sessions.
//!
//! Both implementations are checked — the packed-atomic fast path
//! (`AdmissionKind::Fast`, the default) and the legacy mutex+notify_all
//! baseline it replaced — under the same properties: the rewrite must
//! not have traded the proved invariants for throughput.
#![cfg(pario_check)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pario_check::{spawn, AtomicU64, CheckCell, Config, Explorer, Mutex};
use pario_server::admission::{Admission, AdmissionKind};
use pario_server::Saturation;

/// Four threads through a limit of two: the live count never exceeds
/// the limit, every waiter is eventually admitted (a lost permit wakeup
/// — e.g. a release racing a waiter's announcement — would park the run
/// as a model deadlock), and the cumulative admitted count is exact.
fn check_limit_holds(kind: AdmissionKind, iterations: usize) -> usize {
    let report = Explorer::new(Config::new(iterations)).run(move || {
        let adm = Arc::new(Admission::with_kind(2, Saturation::Block, kind));
        let live = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for sess in 0..4u64 {
            let adm = Arc::clone(&adm);
            let live = Arc::clone(&live);
            hs.push(spawn(move || {
                let p = adm.acquire(sess).expect("block policy never rejects");
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                assert!(now <= 2, "{now} ops admitted past the limit");
                live.fetch_sub(1, Ordering::SeqCst);
                drop(p);
            }));
        }
        for h in hs {
            h.join();
        }
        let s = adm.stats();
        assert_eq!(s.in_flight, 0);
        assert!(s.admitted_high_water <= 2);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.total_admitted, 4, "every acquisition counted once");
    });
    assert!(report.failure.is_none(), "{kind:?}: {:?}", report.failure);
    report.distinct
}

#[test]
fn limit_holds_and_no_wakeup_is_lost() {
    let distinct = check_limit_holds(AdmissionKind::Fast, 1500);
    assert!(
        distinct >= 1000,
        "only {distinct} distinct schedules (fast)"
    );
}

#[test]
fn limit_holds_on_legacy_baseline() {
    let distinct = check_limit_holds(AdmissionKind::LegacyMutex, 1500);
    assert!(
        distinct >= 1000,
        "only {distinct} distinct schedules (legacy)"
    );
}

/// Deterministic arrivals (each waiter parks before the next is
/// spawned): two waiters of the same session are granted in FIFO order,
/// and a third waiter from another session is granted between them —
/// round-robin rotation, not session draining.
fn check_fifo_and_rotation(kind: AdmissionKind, iterations: usize) {
    let report = Explorer::new(Config::new(iterations)).run(move || {
        let adm = Arc::new(Admission::with_kind(1, Saturation::Block, kind));
        let order = Arc::new(Mutex::new(Vec::new()));
        let hold = adm.acquire(99).expect("first permit is free");

        let mut hs = Vec::new();
        // Arrival order: (session 1, tag 10), (session 1, tag 11),
        // (session 2, tag 20). Spin until each is parked before spawning
        // the next; the admission state is instrumented, so the spin is
        // a sequence of yield points and the scheduler's fairness bound
        // guarantees the waiter actually reaches its queue.
        for (i, (sess, tag)) in [(1u64, 10u64), (1, 11), (2, 20)].into_iter().enumerate() {
            let adm2 = Arc::clone(&adm);
            let order2 = Arc::clone(&order);
            hs.push(spawn(move || {
                let p = adm2.acquire(sess).expect("block policy never rejects");
                order2.lock().push(tag);
                drop(p);
            }));
            while adm.stats().wait_high_water < i + 1 {
                std::hint::spin_loop();
            }
        }

        drop(hold);
        for h in hs {
            h.join();
        }
        let order = order.lock().clone();
        // Session 1 queued first => granted first; then rotation moves
        // to session 2 before session 1's second waiter.
        assert_eq!(order, vec![10, 20, 11], "unfair grant order {order:?}");
        // The holder plus three waiters, each admitted exactly once.
        assert_eq!(adm.stats().total_admitted, 4);
    });
    assert!(report.failure.is_none(), "{kind:?}: {:?}", report.failure);
}

/// The permit is a synchronizer: work done under it happens-before the
/// next holder's work. Proved by the happens-before detector on a plain
/// (non-atomic) cell mutated under a limit-1 admission — any missing
/// release/acquire edge in the packed-state protocol, fast path or
/// parked hand-off, surfaces as a data race. Excluded under the demo
/// cfg, which deliberately breaks exactly this edge.
#[cfg(not(pario_check_demo))]
fn check_permit_publishes(kind: AdmissionKind, iterations: usize) -> usize {
    let report = Explorer::new(Config::new(iterations)).run(move || {
        let adm = Arc::new(Admission::with_kind(1, Saturation::Block, kind));
        let cell = Arc::new(CheckCell::new_labeled(0u64, "under-permit"));
        let mut hs = Vec::new();
        // Four threads × two rounds: eight dependent critical sections
        // give a Mazurkiewicz class space in the thousands, so the
        // ≥1000-distinct assertion below measures genuine coverage.
        for t in 1..=4u64 {
            let (adm, cell) = (Arc::clone(&adm), Arc::clone(&cell));
            hs.push(spawn(move || {
                for _ in 0..2 {
                    let p = adm.acquire(t).expect("block policy never rejects");
                    cell.with_mut(|v| *v += t);
                    drop(p);
                }
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(cell.get(), 20, "an increment was lost");
    });
    assert!(report.failure.is_none(), "{kind:?}: {:?}", report.failure);
    report.distinct
}

#[cfg(not(pario_check_demo))]
#[test]
fn permit_release_publishes_to_next_holder() {
    let distinct = check_permit_publishes(AdmissionKind::Fast, 1500);
    assert!(
        distinct >= 1000,
        "only {distinct} distinct schedules (fast)"
    );
}

#[cfg(not(pario_check_demo))]
#[test]
fn permit_release_publishes_on_legacy_baseline() {
    let distinct = check_permit_publishes(AdmissionKind::LegacyMutex, 4000);
    assert!(
        distinct >= 1000,
        "only {distinct} distinct schedules (legacy)"
    );
}

#[test]
fn grants_are_fifo_within_and_rotate_across_sessions() {
    check_fifo_and_rotation(AdmissionKind::Fast, 600);
}

#[test]
fn grants_are_fifo_and_rotate_on_legacy_baseline() {
    check_fifo_and_rotation(AdmissionKind::LegacyMutex, 600);
}
