//! Model checks for `pario_net::CreditWindow`, the client-side
//! flow-control semaphore: the window bound holds in every schedule, a
//! released credit happens-before the acquire that consumes it (proved
//! by the race detector on a plain cell mutated under the window), a
//! kill unparks every waiter, and no wakeup is ever lost.
#![cfg(pario_check)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pario_check::{spawn, AtomicU64, CheckCell, Config, Explorer};
use pario_net::{CreditWindow, NetError};

/// Four submitters × two rounds through a window of one credit: the
/// in-window count never exceeds the bound, every waiter is eventually
/// served (a lost wakeup parks the run as a model deadlock), and the
/// cell mutated under the credit never races — the release/acquire
/// hand-off is a true synchronizes-with edge. The eight dependent
/// critical sections give a class space in the thousands, so the
/// ≥1000-distinct assertion measures genuine coverage.
#[test]
fn window_bounds_and_synchronizes() {
    let report = Explorer::new(Config::new(4000)).run(|| {
        let win = Arc::new(CreditWindow::new(1));
        let cell = Arc::new(CheckCell::new_labeled(0u64, "under-credit"));
        let live = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for t in 1..=4u64 {
            let (win, cell, live) = (Arc::clone(&win), Arc::clone(&cell), Arc::clone(&live));
            hs.push(spawn(move || {
                for _ in 0..2 {
                    win.acquire().expect("live window never fails");
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(now <= 1, "{now} holders inside a window of 1");
                    cell.with_mut(|v| *v += t);
                    live.fetch_sub(1, Ordering::SeqCst);
                    win.release();
                }
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(cell.get(), 20, "an increment was lost");
        assert_eq!(win.available(), 1, "credit leaked");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.distinct >= 1000,
        "only {} distinct schedules",
        report.distinct
    );
}

/// A wider window admits concurrent holders up to the bound and returns
/// to full when everyone is done.
#[test]
fn wider_window_admits_exactly_the_bound() {
    let report = Explorer::new(Config::new(800)).run(|| {
        let win = Arc::new(CreditWindow::new(2));
        let live = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for _ in 0..3 {
            let (win, live) = (Arc::clone(&win), Arc::clone(&live));
            hs.push(spawn(move || {
                win.acquire().expect("live window never fails");
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                assert!(now <= 2, "{now} holders inside a window of 2");
                live.fetch_sub(1, Ordering::SeqCst);
                win.release();
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(win.available(), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// Killing the window fails parked waiters and later acquirers alike;
/// no schedule leaves a waiter parked forever.
#[test]
fn kill_unparks_every_waiter() {
    let report = Explorer::new(Config::new(800)).run(|| {
        let win = Arc::new(CreditWindow::new(0));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let win = Arc::clone(&win);
            hs.push(spawn(move || {
                let e = win.acquire().expect_err("empty killed window");
                assert!(matches!(e, NetError::ConnectionLost(_)), "got {e:?}");
            }));
        }
        let killer = {
            let win = Arc::clone(&win);
            spawn(move || win.kill(NetError::ConnectionLost("model".into())))
        };
        for h in hs {
            h.join();
        }
        killer.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}
