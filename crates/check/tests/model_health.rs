//! Model checks for `pario_fs::HealthBoard`: the device health state
//! machine loses no transition under concurrent error reports and
//! rebuild completion, and every recorded history walks legal edges of
//! the machine in DESIGN.md §9.
#![cfg(pario_check)]

use std::sync::Arc;

use pario_check::{spawn, AtomicBool, Config, Explorer};
use pario_disk::DiskError;
use pario_fs::{legal_transition, HealthBoard, HealthPolicy, HealthState};

fn assert_history_legal(history: &[HealthState]) {
    for w in history.windows(2) {
        assert!(
            legal_transition(w[0], w[1]),
            "illegal transition {} -> {} in {history:?}",
            w[0],
            w[1]
        );
    }
}

/// A device dies again while its rebuild is completing. In every
/// interleaving the racing fail-stop report must win: the device ends
/// Failed, never silently Healthy, and `complete_rebuild` returns true
/// only in schedules where the board really passed through Healthy.
#[test]
fn racing_failure_beats_rebuild_completion() {
    let report = Explorer::new(Config::new(1500)).run(|| {
        let board = Arc::new(HealthBoard::new(1, HealthPolicy::default()));
        board.mark_failed(0);
        board.begin_rebuild(0);

        let b1 = Arc::clone(&board);
        let t1 = spawn(move || {
            b1.note_error(
                0,
                &DiskError::DeviceFailed {
                    device: "mem0".into(),
                },
            );
        });
        let b2 = Arc::clone(&board);
        let done = Arc::new(AtomicBool::new(false));
        let d2 = Arc::clone(&done);
        let t2 = spawn(move || {
            let ok = b2.complete_rebuild(0);
            d2.store(ok, std::sync::atomic::Ordering::SeqCst);
        });
        // Bystander feedback racing both transitions: a transient error
        // and an OK from straggler I/O. Neither may promote the device
        // out of Failed or manufacture an illegal edge.
        let b3 = Arc::clone(&board);
        let t3 = spawn(move || {
            b3.note_error(0, &DiskError::Transient { device: "m".into() });
        });
        let b4 = Arc::clone(&board);
        let t4 = spawn(move || b4.note_ok(0));
        t1.join();
        t2.join();
        t3.join();
        t4.join();
        let completed = done.load(std::sync::atomic::Ordering::SeqCst);

        // The fail-stop is never lost, whichever side won the race.
        assert_eq!(board.state(0), HealthState::Failed);
        let snap = &board.snapshot()[0];
        assert_history_legal(&snap.transitions);
        let went_healthy = snap
            .transitions
            .windows(2)
            .any(|w| w == [HealthState::Rebuilding, HealthState::Healthy]);
        // complete_rebuild reported success iff the board actually
        // passed through Healthy before the new failure landed.
        assert_eq!(
            completed, went_healthy,
            "completion report {completed} disagrees with history {:?}",
            snap.transitions
        );
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    // `distinct` counts interleaving equivalence classes (Foata canonical
    // form); a handful of threads through one board mutex yields a class
    // space in the low hundreds, all of which must be covered.
    assert!(
        report.distinct >= 64,
        "only {} distinct schedules",
        report.distinct
    );
}

/// Concurrent transient reports and OK feedback on one device: no error
/// count is lost, the device never leaves the Healthy/Suspect pair, and
/// every history is a legal walk. A second thread completing a rebuild
/// on a *different* device shares the board mutex without corrupting
/// either slot.
#[test]
fn concurrent_reports_lose_nothing() {
    let report = Explorer::new(Config::new(1500)).run(|| {
        let board = Arc::new(HealthBoard::new(
            2,
            HealthPolicy {
                suspect_after: 2,
                recover_after: 1,
            },
        ));
        board.mark_failed(1);
        board.begin_rebuild(1);

        let mut hs = Vec::new();
        for _ in 0..2 {
            let b = Arc::clone(&board);
            hs.push(spawn(move || {
                b.note_error(0, &DiskError::Transient { device: "d".into() });
                b.note_ok(0);
            }));
        }
        let b = Arc::clone(&board);
        let rebuild = spawn(move || {
            assert!(b.complete_rebuild(1), "no rival failure on device 1");
        });
        for h in hs {
            h.join();
        }
        rebuild.join();

        let snap = board.snapshot();
        assert_eq!(snap[0].transient_errors, 2, "a transient report was lost");
        assert!(
            matches!(snap[0].state, HealthState::Healthy | HealthState::Suspect),
            "device 0 reached {} on transients alone",
            snap[0].state
        );
        assert_eq!(snap[1].state, HealthState::Healthy);
        assert_history_legal(&snap[0].transitions);
        assert_history_legal(&snap[1].transitions);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    // See above: counted by equivalence class, and this model is small.
    assert!(
        report.distinct >= 64,
        "only {} distinct schedules",
        report.distinct
    );
}
