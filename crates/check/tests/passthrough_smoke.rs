//! Normal-build smoke tests: without `--cfg pario_check` the crate's
//! primitives must behave exactly like `parking_lot`/std and add zero
//! space overhead (the request path pays nothing for checkability).
#![cfg(not(pario_check))]

use std::sync::atomic::Ordering;

use pario_check::{AtomicU64, CheckCell, Condvar, LockLevel, Mutex, RacyCell, RwLock};

#[test]
fn passthrough_types_are_zero_overhead() {
    assert_eq!(
        std::mem::size_of::<Mutex<u64>>(),
        std::mem::size_of::<parking_lot::Mutex<u64>>(),
    );
    assert_eq!(
        std::mem::size_of::<Condvar>(),
        std::mem::size_of::<parking_lot::Condvar>(),
    );
    assert_eq!(std::mem::size_of::<AtomicU64>(), std::mem::size_of::<u64>(),);
    // CheckCell is a bare UnsafeCell in normal builds: the label and the
    // clock metadata exist only under --cfg pario_check.
    assert_eq!(
        std::mem::size_of::<CheckCell<u64>>(),
        std::mem::size_of::<u64>()
    );
    assert_eq!(
        std::mem::size_of::<RacyCell<[u8; 24]>>(),
        std::mem::size_of::<[u8; 24]>()
    );
}

#[test]
fn check_cell_passthrough_works() {
    let cell = CheckCell::new_labeled(3u64, "smoke");
    assert_eq!(cell.get(), 3);
    cell.set(4);
    cell.with_mut(|v| *v += 1);
    assert_eq!(cell.with(|v| *v), 5);
    let mut cell = cell;
    *cell.get_mut() += 1;
    assert_eq!(cell.into_inner(), 6);
}

#[test]
fn mutex_and_condvar_work() {
    let m = Mutex::new_named(0u64, LockLevel::BufferPool);
    {
        let mut g = m.lock();
        *g += 1;
    }
    assert_eq!(*m.lock(), 1);
    assert!(m.try_lock().is_some());

    let cv = Condvar::new();
    let flag = Mutex::new(true);
    let mut g = flag.lock();
    while !*g {
        cv.wait(&mut g);
    }
    cv.notify_all();
}

#[test]
fn rwlock_and_atomics_work() {
    let rw = RwLock::new(vec![1, 2, 3]);
    assert_eq!(rw.read().len(), 3);
    rw.write().push(4);
    assert_eq!(rw.read().len(), 4);

    let a = AtomicU64::new(5);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 5);
    assert_eq!(a.load(Ordering::SeqCst), 7);
}

#[test]
fn lock_levels_have_stable_names_and_ranks() {
    // The hierarchy table in DESIGN.md §8 documents these exact pairs;
    // keep them in lockstep.
    let table = [
        (LockLevel::NetCredits, "net.credits", 3),
        (LockLevel::NetReplies, "net.replies", 5),
        (LockLevel::NetSend, "net.send", 7),
        (LockLevel::CoreBigLock, "core.big_lock", 10),
        (LockLevel::Admission, "server.admission", 20),
        (LockLevel::RangeLock, "server.range_lock", 30),
        (LockLevel::BufferPool, "buffer.pool", 40),
        (LockLevel::CoreDirectRmw, "core.direct_rmw", 45),
        (LockLevel::FsAlloc, "fs.alloc", 50),
        (LockLevel::FsRmw, "fs.rmw", 60),
        (LockLevel::FsStripe, "fs.stripe", 70),
        (LockLevel::VolumeCache, "buffer.volume_cache", 75),
        (LockLevel::FsHealth, "fs.health", 80),
        (LockLevel::Unranked, "unranked", 255),
    ];
    for (level, name, rank) in table {
        assert_eq!(level.name(), name);
        assert_eq!(level.rank(), rank);
    }
}
