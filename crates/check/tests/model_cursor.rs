//! Model checks for `pario_core::SharedCursor`: the self-scheduled
//! record cursor must hand out each index to exactly one claimant under
//! every explored interleaving of its CAS/fetch-add protocols.
#![cfg(pario_check)]

use std::sync::Arc;

use pario_check::{spawn, Config, Explorer, Mutex};
use pario_core::SharedCursor;

/// Bounded claims: 3 threads race `claim(limit)`; every index below the
/// limit is claimed exactly once and claims past the limit all fail.
#[test]
fn ss_claims_are_exactly_once() {
    let report = Explorer::new(Config::new(4000)).run(|| {
        let cur = Arc::new(SharedCursor::new(0));
        let got = Arc::new(Mutex::new(Vec::new()));
        let mut hs = Vec::new();
        for _ in 0..3 {
            let cur = Arc::clone(&cur);
            let got = Arc::clone(&got);
            hs.push(spawn(move || {
                while let Some(i) = cur.claim(4) {
                    got.lock().push(i);
                }
            }));
        }
        for h in hs {
            h.join();
        }
        let mut got = got.lock().clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3], "duplicate or lost claim");
        assert_eq!(cur.position(), 4);
        assert_eq!(cur.claim(4), None, "claim past the limit");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.distinct >= 1000,
        "only {} distinct schedules",
        report.distinct
    );
}

/// Unbounded claims (`claim_unbounded` backs append-style writers):
/// exactly-once without any limit check.
#[test]
fn unbounded_claims_are_exactly_once() {
    let report = Explorer::new(Config::new(12000)).run(|| {
        let cur = Arc::new(SharedCursor::new(0));
        let got = Arc::new(Mutex::new(Vec::new()));
        let mut hs = Vec::new();
        for _ in 0..3 {
            let cur = Arc::clone(&cur);
            let got = Arc::clone(&got);
            hs.push(spawn(move || {
                for _ in 0..2 {
                    let i = cur.claim_unbounded();
                    got.lock().push(i);
                }
            }));
        }
        for h in hs {
            h.join();
        }
        let mut got = got.lock().clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5], "duplicate or lost claim");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.distinct >= 1000,
        "only {} distinct schedules",
        report.distinct
    );
}

/// Block-granular claims: two threads pulling whole blocks through
/// `claim_through_block` never overlap and never skip records.
#[test]
fn block_claims_partition_the_range() {
    let report = Explorer::new(Config::new(1200)).run(|| {
        let cur = Arc::new(SharedCursor::new(0));
        let got = Arc::new(Mutex::new(Vec::new()));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let cur = Arc::clone(&cur);
            let got = Arc::clone(&got);
            hs.push(spawn(move || {
                while let Some((start, count)) = cur.claim_through_block(2, 6) {
                    got.lock().push((start, count));
                }
            }));
        }
        for h in hs {
            h.join();
        }
        let mut got = got.lock().clone();
        got.sort_unstable();
        let claimed: Vec<u64> = got.iter().flat_map(|&(s, n)| s..s + n).collect();
        assert_eq!(claimed, vec![0, 1, 2, 3, 4, 5], "overlap or gap: {got:?}");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}
