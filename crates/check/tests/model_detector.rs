//! Self-tests for the happens-before race detector: known-racy and
//! known-synchronized accesses to [`CheckCell`] data, exercising each
//! class of synchronizes-with edge the detector understands.
#![cfg(pario_check)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pario_check::{replay, spawn, AtomicBool, CheckCell, Config, Explorer, Mutex};

/// Two unsynchronized writers: the detector must report a data race as
/// two labeled sites and the replay string must reproduce it.
#[test]
fn finds_write_write_race() {
    let model = || {
        let cell = Arc::new(CheckCell::new_labeled(0u64, "payload"));
        let c2 = Arc::clone(&cell);
        let h = spawn(move || c2.set(1));
        cell.set(2);
        h.join();
    };
    let report = Explorer::new(Config::new(200)).run(model);
    let f = report.failure.expect("detector must find the ww race");
    assert!(f.message.contains("DataRace"), "message: {}", f.message);
    assert!(f.message.contains("`payload`"), "message: {}", f.message);
    assert!(
        f.message.contains("write") && f.message.contains("concurrent"),
        "message: {}",
        f.message
    );
    // Both sites are labeled with their source location.
    assert!(
        f.message.matches("model_detector.rs").count() == 2,
        "expected two labeled sites: {}",
        f.message
    );

    let again = replay(&f.replay, model);
    let f2 = again.failure.expect("replay must reproduce the race");
    assert!(f2.message.contains("DataRace"), "message: {}", f2.message);
}

/// A concurrent read against a write is also a race (not just ww).
#[test]
fn finds_read_write_race() {
    let report = Explorer::new(Config::new(200)).run(|| {
        let cell = Arc::new(CheckCell::new_labeled(0u64, "rw-cell"));
        let c2 = Arc::clone(&cell);
        let h = spawn(move || {
            let _ = c2.get();
        });
        cell.set(7);
        h.join();
    });
    let f = report.failure.expect("detector must find the rw race");
    assert!(f.message.contains("DataRace"), "message: {}", f.message);
    assert!(f.message.contains("`rw-cell`"), "message: {}", f.message);
}

/// Message passing over a Release store / Acquire load pair is ordered:
/// once the consumer observes the flag, the payload write
/// happens-before its read and no race exists.
#[test]
fn release_acquire_pair_synchronizes() {
    let report = Explorer::new(Config::new(1000)).run(|| {
        let cell = Arc::new(CheckCell::new_labeled(0u64, "msg"));
        let flag = Arc::new(AtomicBool::new(false));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let producer = spawn(move || {
            c2.set(42);
            f2.store(true, Ordering::Release);
        });
        let (c3, f3) = (Arc::clone(&cell), Arc::clone(&flag));
        let consumer = spawn(move || {
            if f3.load(Ordering::Acquire) {
                assert_eq!(c3.get(), 42);
            }
        });
        producer.join();
        consumer.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// The same protocol with Relaxed orderings does NOT synchronize: the
/// detector must flag the payload access even though the program's
/// values happen to look consistent under the sequential model.
#[test]
fn relaxed_pair_does_not_synchronize() {
    let report = Explorer::new(Config::new(1000)).run(|| {
        let cell = Arc::new(CheckCell::new_labeled(0u64, "leaky-msg"));
        let flag = Arc::new(AtomicBool::new(false));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let producer = spawn(move || {
            c2.set(42);
            f2.store(true, Ordering::Relaxed); // no release edge
        });
        let (c3, f3) = (Arc::clone(&cell), Arc::clone(&flag));
        let consumer = spawn(move || {
            if f3.load(Ordering::Relaxed) {
                let _ = c3.get(); // unordered against the producer's write
            }
        });
        producer.join();
        consumer.join();
    });
    let f = report
        .failure
        .expect("Relaxed must not establish happens-before");
    assert!(f.message.contains("DataRace"), "message: {}", f.message);
    assert!(f.message.contains("`leaky-msg`"), "message: {}", f.message);
}

/// A CAS-built spinlock: entry CAS uses Acquire success ordering (joins
/// the previous holder's release), exit store uses Release. The guarded
/// cell never races; the Relaxed failure ordering on a lost CAS is fine
/// because a failed acquisition publishes nothing.
#[test]
fn cas_spinlock_guards_cell() {
    let report = Explorer::new(Config::new(1000)).run(|| {
        let cell = Arc::new(CheckCell::new_labeled(0u64, "spin-guarded"));
        let locked = Arc::new(AtomicBool::new(false));
        let mut hs = Vec::new();
        for t in 1..=2u64 {
            let (c, l) = (Arc::clone(&cell), Arc::clone(&locked));
            hs.push(spawn(move || {
                while l
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
                {}
                c.with_mut(|v| *v += t);
                l.store(false, Ordering::Release);
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(cell.get(), 3);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// Mutex hand-off orders cell accesses: lock release → lock acquire is
/// a synchronizes-with edge, so guarded accesses never race.
#[test]
fn mutex_guards_cell() {
    let report = Explorer::new(Config::new(1000)).run(|| {
        let cell = Arc::new(CheckCell::new_labeled(0u64, "guarded"));
        let m = Arc::new(Mutex::new(()));
        let mut hs = Vec::new();
        for _ in 0..3 {
            let (c, m) = (Arc::clone(&cell), Arc::clone(&m));
            hs.push(spawn(move || {
                let _g = m.lock();
                c.with_mut(|v| *v += 1);
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(cell.get(), 3);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// Spawn and join are happens-before edges: a parent may freely write
/// before spawning and read after joining.
#[test]
fn spawn_join_edges_are_free() {
    let report = Explorer::new(Config::new(300)).run(|| {
        let cell = Arc::new(CheckCell::new_labeled(0u64, "inherited"));
        cell.set(1); // before spawn: ordered into the child
        let c2 = Arc::clone(&cell);
        let h = spawn(move || c2.with_mut(|v| *v += 1));
        h.join();
        assert_eq!(cell.get(), 2); // after join: ordered after the child
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}
