//! Happens-before adoption check for the volume cache tier: the cache
//! must be a *synchronizer*, not just a correct store. A writer
//! publishes plain (non-atomic) data, then writes a flag byte through
//! the cache; a reader that observes the flag through the cache reads
//! the plain data. If any edge in the cache's mutex / inflight /
//! stale-tracking protocol were missing, the vector-clock detector
//! would flag the sentinel cell as a data race.
#![cfg(pario_check)]

use std::sync::Arc;

use pario_check::{spawn, CheckCell, Config, Explorer};
use pario_fs::{FileSpec, Volume, VolumeCacheConfig, VolumeConfig};
use pario_layout::LayoutSpec;

const BS: usize = 64;

fn cached_volume() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 2,
        device_blocks: 128,
        block_size: BS,
    })
    .expect("in-memory volume")
    .enable_cache(VolumeCacheConfig::write_back(4))
    .expect("attach cache")
}

/// Message passing through the write-back cache: whenever the reader
/// sees the flag byte, the writer's sentinel write happens-before the
/// read. A concurrent flusher drags the inflight/stale bookkeeping into
/// every schedule. Race-free at ≥1000 distinct interleaving classes.
#[test]
fn cache_tier_synchronizes_message_passing() {
    // The class count varies a little run-to-run (the fs/buffer layers
    // iterate std HashMaps, whose per-process seed perturbs the event
    // stream), so the budget leaves real margin over the ≥1000 floor.
    let report = Explorer::new(Config::new(20_000)).run(|| {
        let v = cached_volume();
        let f = v
            .create_file(
                FileSpec::new(
                    "h",
                    16,
                    4,
                    LayoutSpec::Striped {
                        devices: 2,
                        unit: 1,
                    },
                )
                .initial_records(16),
            )
            .expect("create file");
        f.write_span(0, &[0u8; BS]).expect("zero block 0");
        let cell = Arc::new(CheckCell::new_labeled(0u64, "cache-sentinel"));

        let (f1, c1) = (f.clone(), Arc::clone(&cell));
        let writer = spawn(move || {
            c1.set(42); // plain write, ordered only by the cache protocol
            f1.write_span(0, &[1u8; 8]).expect("flag write");
        });
        let (f2, c2) = (f.clone(), Arc::clone(&cell));
        let reader = spawn(move || {
            let mut flag = [0u8; 8];
            f2.read_span(0, &mut flag).expect("flag read");
            if flag[0] == 1 {
                // Observed the flag through the cache: the sentinel
                // write must be ordered before this read.
                assert_eq!(c2.get(), 42, "flag visible before payload");
            }
        });
        let v3 = v.clone();
        let flusher = spawn(move || {
            v3.flush_cache().expect("concurrent flush");
        });
        writer.join();
        reader.join();
        flusher.join();
        v.flush_cache().expect("final flush");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.distinct >= 1000,
        "coverage too thin: {} distinct schedules",
        report.distinct
    );
}
