//! Self-tests for the model checker: known-racy and known-correct toy
//! models, plus detection of deadlock / lock-order / lost-wakeup bugs.
//! Compiled only under `RUSTFLAGS="--cfg pario_check"`.
#![cfg(pario_check)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pario_check::{spawn, AtomicU64, Condvar, Config, Explorer, LockLevel, Mutex};

/// A non-atomic read-modify-write on an atomic cell: the checker must
/// find an interleaving where one increment is lost.
#[test]
fn finds_lost_update() {
    let report = Explorer::new(Config::new(200)).run(|| {
        let n = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let n = Arc::clone(&n);
            hs.push(spawn(move || {
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    let f = report.failure.expect("checker must find the lost update");
    assert!(f.message.contains("lost update"), "message: {}", f.message);
    assert!(!f.replay.is_empty());

    // The replay string must reproduce the same failure deterministically.
    let again = Explorer::new(Config::new(1)).replay(&f.replay, || {
        let n = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let n = Arc::clone(&n);
            hs.push(spawn(move || {
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    let f2 = again.failure.expect("replay must reproduce the failure");
    assert!(f2.message.contains("lost update"));
}

/// The same update protected by a mutex: no schedule may fail, and the
/// explorer must cover many distinct schedules.
#[test]
fn mutexed_counter_never_fails() {
    let report = Explorer::new(Config::new(300)).run(|| {
        let n = Arc::new(Mutex::new(0u64));
        let mut hs = Vec::new();
        for _ in 0..3 {
            let n = Arc::clone(&n);
            hs.push(spawn(move || {
                let mut g = n.lock();
                *g += 1;
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(*n.lock(), 3);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.schedules == 300);
    // Distinct schedules are counted by Mazurkiewicz class: the only
    // recorded events are three lock acquisitions of one mutex, so the
    // class space is exactly 3! = 6 — and the explorer must cover it.
    assert_eq!(report.distinct, 6, "got {} distinct", report.distinct);
}

/// Classic AB-BA deadlock: two unranked locks taken in opposite orders.
#[test]
fn finds_ab_ba_deadlock() {
    let report = Explorer::new(Config::new(500)).run(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h1 = spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        let h2 = spawn(move || {
            let _gb = b3.lock();
            let _ga = a3.lock();
        });
        h1.join();
        h2.join();
    });
    let f = report
        .failure
        .expect("checker must find the AB-BA deadlock");
    assert!(f.message.contains("Deadlock"), "message: {}", f.message);
}

/// Ranked locks acquired against the declared hierarchy: flagged on the
/// very first schedule, no deadlock interleaving needed.
#[test]
fn finds_lock_order_inversion() {
    let report = Explorer::new(Config::new(10)).run(|| {
        let lo = Arc::new(Mutex::new_named((), LockLevel::FsAlloc));
        let hi = Arc::new(Mutex::new_named((), LockLevel::FsRmw));
        let h = spawn(move || {
            let _g_hi = hi.lock();
            let _g_lo = lo.lock(); // descends FsRmw -> FsAlloc: violation
        });
        h.join();
    });
    let f = report.failure.expect("checker must flag the inversion");
    assert!(f.message.contains("LockOrder"), "message: {}", f.message);
    assert!(
        f.message.contains("fs.rmw") && f.message.contains("fs.alloc"),
        "message: {}",
        f.message
    );
}

/// A waiter whose condition is set *before* it re-checks under the lock
/// never hangs; and a protocol with a missed-signal window is caught as
/// a deadlock (lost wakeup).
#[test]
fn finds_lost_wakeup() {
    // Broken: consumer checks the flag, then waits — if the producer's
    // notify lands between check and wait, the wakeup is lost.
    let report = Explorer::new(Config::new(400)).run(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let producer = spawn(move || {
            let (m, cv) = &*s2;
            *m.lock() = true; // guard dropped immediately
            cv.notify_one();
        });
        let s3 = Arc::clone(&state);
        let consumer = spawn(move || {
            let (m, cv) = &*s3;
            let ready = { *m.lock() };
            if !ready {
                // BUG: flag may flip between the check above and the
                // wait below; the notify then has no waiter to wake.
                let mut g = m.lock();
                cv.wait(&mut g);
            }
        });
        producer.join();
        consumer.join();
    });
    let f = report.failure.expect("checker must find the lost wakeup");
    assert!(f.message.contains("Deadlock"), "message: {}", f.message);

    // Correct: re-check the predicate in a wait loop under the lock.
    let report = Explorer::new(Config::new(400)).run(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let producer = spawn(move || {
            let (m, cv) = &*s2;
            *m.lock() = true;
            cv.notify_one();
        });
        let s3 = Arc::clone(&state);
        let consumer = spawn(move || {
            let (m, cv) = &*s3;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        producer.join();
        consumer.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// try_lock on a model thread never blocks and never false-reports.
#[test]
fn try_lock_is_exact() {
    let report = Explorer::new(Config::new(200)).run(|| {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let h = spawn(move || {
            if let Some(mut g) = m2.try_lock() {
                *g += 1;
            }
        });
        {
            let mut g = m.lock();
            *g += 10;
        }
        h.join();
        let v = *m.lock();
        assert!(v == 10 || v == 11, "impossible count {v}");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}
