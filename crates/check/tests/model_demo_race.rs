//! Seeded-bug regression for the checker itself: the
//! `pario_check_demo` cfg rebuilds `pario-fs` with the sub-block RMW
//! lock removed — reintroducing a historical lost-update race — and this
//! test asserts the checker finds that race within a bounded schedule
//! budget and that the printed schedule replays to the same failure.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg pario_check --cfg pario_check_demo" \
//!     cargo test -p pario-check --test model_demo_race
//! ```
#![cfg(all(pario_check, pario_check_demo))]

use std::sync::Arc;

use pario_check::{spawn, Config, Explorer};
use pario_fs::{FileSpec, Volume, VolumeConfig};
use pario_layout::LayoutSpec;

const BS: usize = 64;

/// The schedule budget within which the race must be found. The CI job
/// runs this; a checker regression that stops exploring the racy
/// window shows up as this test failing.
const BUDGET: usize = 400;

fn racy_model() {
    let v = Volume::create_in_memory(VolumeConfig {
        devices: 2,
        device_blocks: 128,
        block_size: BS,
    })
    .expect("in-memory volume");
    let f = v
        .create_file(
            FileSpec::new(
                "d",
                16,
                4,
                LayoutSpec::Striped {
                    devices: 2,
                    unit: 1,
                },
            )
            .initial_records(16),
        )
        .expect("create file");
    f.write_span(0, &[0u8; BS]).expect("zero block 0");

    let f1 = f.clone();
    let h1 = spawn(move || {
        f1.write_span(0, &[0xAA; 16]).expect("sub-block write");
    });
    let f2 = f.clone();
    let h2 = spawn(move || {
        f2.write_span(32, &[0xBB; 16]).expect("sub-block write");
    });
    h1.join();
    h2.join();

    let mut out = [0u8; BS];
    f.read_span(0, &mut out).expect("read back");
    assert!(
        out[..16].iter().all(|&b| b == 0xAA) && out[32..48].iter().all(|&b| b == 0xBB),
        "sub-block RMW lost an update"
    );
}

/// With the rmw lock elided, two sub-block writers to the same block
/// race their read/modify/write windows: the checker must catch one
/// writer swallowing the other's bytes, and the recorded schedule must
/// reproduce it.
#[test]
fn checker_finds_the_unlocked_rmw_race() {
    let report = Explorer::new(Config::new(BUDGET)).run(racy_model);
    let f = report
        .failure
        .unwrap_or_else(|| panic!("race not found within {BUDGET} schedules"));
    assert!(
        f.message.contains("lost an update"),
        "unexpected failure: {}",
        f.message
    );
    assert!(!f.replay.is_empty(), "failure must carry a replay string");

    let again = Explorer::new(Config::new(1)).replay(&f.replay, racy_model);
    let f2 = again
        .failure
        .expect("replaying the recorded schedule must reproduce the race");
    assert!(
        f2.message.contains("lost an update"),
        "replay found a different failure: {}",
        f2.message
    );
}
