//! Seeded-bug regression for the happens-before race detector: the
//! `pario_check_demo` cfg demotes the success ordering of the admission
//! release fast-path CAS to `Relaxed`, so handing a permit back
//! publishes nothing. A value mutated under a limit-1 admission then
//! races between consecutive holders, and this test asserts the
//! detector finds that race within a bounded schedule budget and that
//! the printed schedule replays to the same two-site report.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg pario_check --cfg pario_check_demo" \
//!     cargo test -p pario-check --test model_demo_atomic
//! ```
#![cfg(all(pario_check, pario_check_demo))]

use std::sync::Arc;

use pario_check::{spawn, CheckCell, Config, Explorer};
use pario_server::admission::{Admission, AdmissionKind};
use pario_server::Saturation;

/// The schedule budget within which the race must be found. A detector
/// regression that stops tracking the weakened edge shows up here.
const BUDGET: usize = 400;

fn racy_model() {
    let adm = Arc::new(Admission::with_kind(
        1,
        Saturation::Block,
        AdmissionKind::Fast,
    ));
    let cell = Arc::new(CheckCell::new_labeled(0u64, "permit-guarded"));
    let mut hs = Vec::new();
    for t in 1..=2u64 {
        let (adm, cell) = (Arc::clone(&adm), Arc::clone(&cell));
        hs.push(spawn(move || {
            let p = adm.acquire(t).expect("block policy never rejects");
            // Racy only in the schedule where the second holder takes
            // the *fast* acquire path after a fast release: the parked
            // hand-off path still synchronizes through the wait slot.
            cell.with_mut(|v| *v += t);
            drop(p);
        }));
    }
    for h in hs {
        h.join();
    }
    assert_eq!(cell.get(), 3);
}

/// With the release edge weakened, consecutive fast-path holders are
/// unordered: the detector must flag the cell mutation as a data race
/// with both sites labeled, and the schedule must replay.
#[test]
fn detector_finds_the_weakened_release_race() {
    let report = Explorer::new(Config::new(BUDGET)).run(racy_model);
    let f = report
        .failure
        .unwrap_or_else(|| panic!("race not found within {BUDGET} schedules"));
    assert!(
        f.message.contains("DataRace") && f.message.contains("`permit-guarded`"),
        "unexpected failure: {}",
        f.message
    );
    assert!(
        f.message.matches("model_demo_atomic.rs").count() == 2,
        "expected two labeled sites: {}",
        f.message
    );
    assert!(!f.replay.is_empty(), "failure must carry a replay string");

    let again = Explorer::new(Config::new(1)).replay(&f.replay, racy_model);
    let f2 = again
        .failure
        .expect("replaying the recorded schedule must reproduce the race");
    assert!(
        f2.message.contains("DataRace"),
        "replay found a different failure: {}",
        f2.message
    );
}
