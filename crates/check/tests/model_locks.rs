//! Model checks for `pario_server::ByteRangeLocks`: overlapping ranges
//! serialise their holders, disjoint ranges never block, and release
//! wakeups are never lost.
#![cfg(pario_check)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pario_check::{spawn, AtomicU64, Config, Explorer};
use pario_server::ByteRangeLocks;

/// Three writers to the same range do unprotected read-modify-writes
/// under the lock: any schedule in which the lock fails to serialise
/// them loses an update and fails the final assertion.
#[test]
fn overlapping_writers_serialise() {
    let report = Explorer::new(Config::new(1500)).run(|| {
        let locks = Arc::new(ByteRangeLocks::new());
        let n = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for _ in 0..3 {
            let locks = Arc::clone(&locks);
            let n = Arc::clone(&n);
            hs.push(spawn(move || {
                let _g = locks.acquire(5, 15);
                // Deliberately non-atomic update: correct only if the
                // range lock serialises us.
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 3, "range lock lost an update");
        assert_eq!(locks.held(), 0, "range leaked past its guard");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    // `distinct` counts interleaving equivalence classes (Foata canonical
    // form), not raw decision traces; three writers funnelled through one
    // range lock have a class space in the low hundreds.
    assert!(
        report.distinct >= 64,
        "only {} distinct schedules",
        report.distinct
    );
}

/// Disjoint ranges are granted without blocking in every schedule, and
/// `try_acquire` is exact about overlap.
#[test]
fn disjoint_ranges_never_block() {
    let report = Explorer::new(Config::new(1200)).run(|| {
        let locks = Arc::new(ByteRangeLocks::new());
        let g0 = locks.acquire(0, 10);
        let l2 = Arc::clone(&locks);
        let h = spawn(move || {
            let g = l2.try_acquire(10, 20);
            assert!(g.is_some(), "disjoint range refused");
            assert!(l2.try_acquire(5, 15).is_none(), "overlap granted");
        });
        h.join();
        drop(g0);
        assert_eq!(locks.held(), 0);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// A chain of waiters on the same range: every release must wake the
/// next waiter (a lost wakeup shows up as a model deadlock).
#[test]
fn release_never_loses_a_wakeup() {
    let report = Explorer::new(Config::new(1500)).run(|| {
        let locks = Arc::new(ByteRangeLocks::new());
        let mut hs = Vec::new();
        for _ in 0..3 {
            let locks = Arc::clone(&locks);
            hs.push(spawn(move || {
                let _g = locks.acquire(0, 100);
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(locks.held(), 0);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    // See above: counted by equivalence class, and this model is small.
    assert!(
        report.distinct >= 64,
        "only {} distinct schedules",
        report.distinct
    );
}
