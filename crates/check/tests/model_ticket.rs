//! Model checks for the `pario_disk` I/O executor's ticket accounting:
//! model threads race submissions into a live (non-model) worker thread
//! and every ticket must complete with exact in-flight/serviced counts
//! in every explored interleaving of the enqueue path's atomics.
#![cfg(pario_check)]

use std::sync::Arc;

use pario_check::{spawn, Config, Explorer};
use pario_disk::{mem_array, IoNode};

const BS: usize = 64;

/// Three submitters × two writes each through one node: every wait
/// returns, `serviced` counts each request exactly once, and the
/// in-flight gauge returns to zero (no lost or double-counted ticket).
#[test]
fn tickets_complete_with_exact_accounting() {
    let report = Explorer::new(Config::new(2500)).run(|| {
        let dev = mem_array(1, 64, BS).remove(0);
        let node = IoNode::spawn(dev);
        let handle = node.device();
        let mut hs = Vec::new();
        for t in 0..3u64 {
            let h = Arc::clone(&handle);
            hs.push(spawn(move || {
                for i in 0..2u64 {
                    let block = t * 2 + i;
                    let data = vec![t as u8 + 1; BS].into_boxed_slice();
                    let ticket = h.submit_write_blocks(block, data);
                    ticket.wait().expect("in-memory write never fails");
                }
            }));
        }
        for h in hs {
            h.join();
        }
        let s = node.stats();
        assert_eq!(s.serviced, 6, "lost or double-counted request");
        assert_eq!(s.in_flight, 0, "in-flight gauge leaked");
        assert!(s.max_in_flight >= 1 && s.max_in_flight <= 6);

        // Read everything back through fresh tickets: the data of every
        // write must have landed.
        for t in 0..3u64 {
            for i in 0..2u64 {
                let block = t * 2 + i;
                let buf = vec![0u8; BS].into_boxed_slice();
                let got = handle
                    .submit_read_blocks(block, buf)
                    .wait()
                    .expect("in-memory read never fails");
                assert!(
                    got.iter().all(|&b| b == t as u8 + 1),
                    "write to block {block} lost"
                );
            }
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.distinct >= 1000,
        "only {} distinct schedules",
        report.distinct
    );
}
