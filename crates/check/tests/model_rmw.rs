//! Model checks for the `pario_fs` sub-block read-modify-write path:
//! concurrent writers to disjoint byte ranges of the *same* block must
//! both land (the per-file `rmw_lock` serialises the read/modify/write
//! window), and the write path must respect the alloc-before-rmw lock
//! hierarchy in every schedule.
#![cfg(pario_check)]

use pario_check::{spawn, Config, Explorer};
use pario_fs::{FileSpec, Volume, VolumeConfig};
use pario_layout::LayoutSpec;

const BS: usize = 64;

fn small_volume() -> Volume {
    Volume::create_in_memory(VolumeConfig {
        devices: 2,
        device_blocks: 128,
        block_size: BS,
    })
    .expect("in-memory volume")
}

/// Two writers to disjoint sub-ranges of block 0. Without the
/// `rmw_lock`, one writer's read-modify-write window swallows the
/// other's bytes; the checker must find no such schedule in the
/// production build. (The `pario_check_demo` build removes the lock and
/// `tests/model_demo_race.rs` asserts the checker finds the loss.)
#[test]
fn sub_block_writers_do_not_lose_updates() {
    let report = Explorer::new(Config::new(400)).run(|| {
        let v = small_volume();
        let f = v
            .create_file(
                FileSpec::new(
                    "m",
                    16,
                    4,
                    LayoutSpec::Striped {
                        devices: 2,
                        unit: 1,
                    },
                )
                .initial_records(16),
            )
            .expect("create file");
        f.write_span(0, &[0u8; BS]).expect("zero block 0");

        let f1 = f.clone();
        let h1 = spawn(move || {
            f1.write_span(0, &[0xAA; 16]).expect("sub-block write");
        });
        let f2 = f.clone();
        let h2 = spawn(move || {
            f2.write_span(32, &[0xBB; 16]).expect("sub-block write");
        });
        h1.join();
        h2.join();

        let mut out = [0u8; BS];
        f.read_span(0, &mut out).expect("read back");
        assert!(
            out[..16].iter().all(|&b| b == 0xAA),
            "writer 1's bytes lost: {:?}",
            &out[..16]
        );
        assert!(
            out[32..48].iter().all(|&b| b == 0xBB),
            "writer 2's bytes lost: {:?}",
            &out[32..48]
        );
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// A writer that triggers allocation (file growth) racing a sub-block
/// RMW writer: the alloc lock (rank `fs.alloc`) must always be released
/// before the rmw lock (rank `fs.rmw`) is taken — any schedule that
/// acquires them in descending order is flagged as a LockOrder failure.
#[test]
fn alloc_and_rmw_never_invert() {
    let report = Explorer::new(Config::new(300)).run(|| {
        let v = small_volume();
        let f = v
            .create_file(
                FileSpec::new(
                    "g",
                    16,
                    4,
                    LayoutSpec::Striped {
                        devices: 2,
                        unit: 1,
                    },
                )
                .initial_records(8),
            )
            .expect("create file");
        f.write_span(0, &[0u8; BS]).expect("zero block 0");

        let f1 = f.clone();
        let h1 = spawn(move || {
            // Grows the file: allocator lock, then block writes.
            f1.ensure_capacity_records(64).expect("grow");
        });
        let f2 = f.clone();
        let h2 = spawn(move || {
            // Sub-block RMW inside existing capacity: rmw lock.
            f2.write_span(16, &[2u8; 16]).expect("sub-block write");
        });
        h1.join();
        h2.join();

        let mut out = [0u8; 32];
        f.read_span(0, &mut out).expect("read back");
        assert!(out[16..32].iter().all(|&b| b == 2), "rmw bytes lost");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}
