//! Schedule exploration: run a model many times under different
//! deterministic schedules and report what was found.
//!
//! A *model* is a closure that builds some shared state, spawns model
//! threads with [`spawn`], joins them, and asserts invariants. The
//! [`Explorer`] runs the model once per schedule: even iterations use a
//! seeded uniform random walk over the runnable threads, odd iterations
//! a bounded-preemption walk (prefer the running thread, preempt at
//! most 1–3 times), which concentrates probability on the low-preemption
//! schedules where most real concurrency bugs live. Distinct schedules
//! are counted by hashing the decision trace.
//!
//! On the first failing schedule the explorer stops and reports a
//! [`CheckFailure`] carrying the failure message and a **replay
//! string** — the exact decision sequence — which [`replay`] (or
//! `Explorer::replay`) re-executes deterministically.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::sched::{
    self, canonical_hash, parse_trace, AbortUnwind, Decider, FailureKind, Sched, SplitMix64,
};

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Schedules to run (exploration stops early on failure).
    pub iterations: usize,
    /// Base seed; iteration `i` uses `seed + i`.
    pub seed: u64,
}

impl Config {
    /// `iterations` schedules from seed 0.
    pub fn new(iterations: usize) -> Config {
        Config {
            iterations,
            seed: 0,
        }
    }
}

/// What an exploration found.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// Distinct schedules among them, counted by the canonical Foata
    /// hash of the executed operations: two schedules that merely
    /// permute independent operations count once.
    pub distinct: usize,
    /// The first failure, if any schedule failed.
    pub failure: Option<CheckFailure>,
}

/// A failing schedule: what broke and how to run it again.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    /// Failure class and detail (deadlock participants, the panic
    /// message, or the lock-order pair).
    pub message: String,
    /// Comma-separated scheduling decisions; feed to [`replay`].
    pub replay: String,
    /// Seed of the failing iteration.
    pub seed: u64,
}

/// Handle to a model thread spawned with [`spawn`].
#[must_use = "join model threads (or the scheduler may report a false deadlock)"]
pub struct JoinHandle {
    tid: usize,
}

impl JoinHandle {
    /// Block (at scheduler level) until the thread finishes.
    pub fn join(self) {
        if let Some((s, me)) = sched::current() {
            s.join(me, self.tid);
        }
    }
}

/// Spawn a model thread. Must be called from inside a model run; the
/// new thread does not execute until the scheduler picks it.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
    let (s, parent) = sched::current().expect("pario_check::spawn outside a model run");
    let tid = s.sched_spawn(parent, f);
    JoinHandle { tid }
}

impl Sched {
    /// Register and start a model thread running `f` (parked until
    /// scheduled). Spawning establishes the parent→child happens-before
    /// edge.
    fn sched_spawn<F: FnOnce() + Send + 'static>(self: &Arc<Self>, parent: usize, f: F) -> usize {
        let tid = self.register_thread(parent);
        let s = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name(format!("pario-check-{tid}"))
            .spawn(move || {
                sched::set_current(Some((Arc::clone(&s), tid)));
                s.wait_first(tid);
                let r = catch_unwind(AssertUnwindSafe(f));
                if let Err(p) = r {
                    if !p.is::<AbortUnwind>() {
                        s.fail(FailureKind::Panic, panic_message(p.as_ref()));
                    }
                }
                s.thread_done(tid);
                sched::set_current(None);
            })
            .expect("spawn model thread");
        self.stash_handle(h);
        tid
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("model thread panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("model thread panicked: {s}")
    } else {
        "model thread panicked".to_string()
    }
}

/// Runs a model under many schedules; see the module docs.
pub struct Explorer {
    config: Config,
}

impl Explorer {
    /// An explorer with the given configuration.
    pub fn new(config: Config) -> Explorer {
        Explorer { config }
    }

    /// Explore `config.iterations` schedules of `model`, stopping at
    /// the first failure. Prints failures (with their replay string) to
    /// stderr.
    pub fn run<F>(&self, model: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let mut seen = HashSet::new();
        let mut schedules = 0;
        for i in 0..self.config.iterations {
            let seed = self.config.seed.wrapping_add(i as u64);
            let decider = if i % 2 == 0 {
                Decider::Random(SplitMix64::new(seed))
            } else {
                Decider::BoundedPreemption {
                    rng: SplitMix64::new(seed),
                    remaining: 1 + (i as u32 / 2) % 3,
                }
            };
            let (failure, hash) = run_one(decider, Arc::clone(&model));
            schedules += 1;
            seen.insert(hash);
            if let Some(f) = failure {
                let fail = CheckFailure {
                    message: format!("[{:?}] {}", f.kind, f.message),
                    replay: f.replay,
                    seed,
                };
                eprintln!(
                    "pario-check: schedule #{schedules} (seed {seed}) failed: {}",
                    fail.message
                );
                eprintln!("pario-check: replay string: \"{}\"", fail.replay);
                return Report {
                    schedules,
                    distinct: seen.len(),
                    failure: Some(fail),
                };
            }
        }
        Report {
            schedules,
            distinct: seen.len(),
            failure: None,
        }
    }

    /// Re-execute one recorded schedule (from a failure's replay
    /// string) and return what it finds.
    pub fn replay<F>(&self, replay_str: &str, model: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let decider = Decider::Replay {
            tids: parse_trace(replay_str),
            at: 0,
        };
        let (failure, _hash) = run_one(decider, Arc::new(model) as Arc<dyn Fn() + Send + Sync>);
        Report {
            schedules: 1,
            distinct: 1,
            failure: failure.map(|f| CheckFailure {
                message: format!("[{:?}] {}", f.kind, f.message),
                replay: f.replay,
                seed: 0,
            }),
        }
    }
}

/// Convenience wrapper: replay `replay_str` against `model` once.
pub fn replay<F>(replay_str: &str, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Explorer::new(Config::new(1)).replay(replay_str, model)
}

/// Execute one schedule: root model thread runs the closure to
/// completion (or failure), then every model thread is torn down.
/// Returns the failure (if any) and the schedule's canonical hash.
fn run_one(decider: Decider, model: Arc<dyn Fn() + Send + Sync>) -> (Option<sched::Failure>, u64) {
    let sched = Arc::new(Sched::new(decider));
    let s = Arc::clone(&sched);
    let root = std::thread::Builder::new()
        .name("pario-check-root".into())
        .spawn(move || {
            sched::set_current(Some((Arc::clone(&s), 0)));
            let r = catch_unwind(AssertUnwindSafe(|| model()));
            if let Err(p) = r {
                if !p.is::<AbortUnwind>() {
                    s.fail(FailureKind::Panic, panic_message(p.as_ref()));
                }
            }
            s.thread_done(0);
            sched::set_current(None);
        })
        .expect("spawn model root thread");
    root.join().expect("model root thread never panics through");
    // Model threads may themselves have spawned threads after the root
    // exited; drain until quiescent.
    loop {
        let hs = sched.take_handles();
        if hs.is_empty() {
            break;
        }
        for h in hs {
            let _ = h.join();
        }
    }
    let failure = sched.failure();
    let hash = canonical_hash(&sched);
    (failure, hash)
}
