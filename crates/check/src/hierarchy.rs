//! The workspace lock hierarchy.
//!
//! Every named lock in the request path declares a [`LockLevel`]. The
//! rule is strict ascent: a thread may acquire a ranked lock only if its
//! level is strictly greater than every ranked lock it already holds.
//! Two locks at the same level therefore must never be held together
//! (per-file locks such as the RMW lock are never nested across files).
//!
//! The table below is the documented order (see DESIGN §8); the model
//! checker enforces it at runtime under `--cfg pario_check`, and
//! `cargo run -p xtask -- lint` enforces a textual approximation of it
//! on every build.
//!
//! | level | lock | crate | protects |
//! |------:|------|-------|----------|
//! |  3 | `NetClient` credits | pario-net | per-connection flow-control window |
//! |  5 | `NetClient` reply table | pario-net | in-flight request id -> reply slot |
//! |  7 | `NetClient` send half | pario-net | serialised frame writes to the socket |
//! | 10 | `SsState::big_lock` | pario-core | naive big-lock SS baseline |
//! | 20 | `Admission::m` | pario-server | admission queue + rotation state |
//! | 30 | `ByteRangeLocks::held` | pario-server | GDA byte-range lock table |
//! | 40 | `BufferPool` free list | pario-buffer | pooled block buffers |
//! | 45 | `DirectState::rmw` | pario-core | DA sub-record RMW window |
//! | 50 | `Volume::alloc` | pario-fs | extent allocator |
//! | 60 | `FileState::rmw_lock` | pario-fs | sub-block RMW window |
//! | 70 | `FileState::stripe_lock` | pario-fs | parity stripe RMW cycle |
//! | 75 | `VolumeCache::frames` | pario-buffer | volume-wide block cache state |
//! | 78 | `VolInner::journal` | pario-fs | intent-journal cursor + superblock generation |
//! | 80 | `HealthBoard::board` | pario-fs | device health state machine |

/// Rank of a lock in the global acquisition order. Larger ranks must be
/// acquired after smaller ranks; [`LockLevel::Unranked`] locks are
/// exempt from the hierarchy check (but still model-checked for
/// deadlock).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LockLevel {
    /// `pario-net` client flow-control credit window. The outermost
    /// lock a network call can touch: a request first takes a credit,
    /// with no other ranked lock held.
    NetCredits = 3,
    /// `pario-net` client in-flight reply table (request id -> slot).
    NetReplies = 5,
    /// `pario-net` client send half: frames are written to the socket
    /// under this lock so pipelined requests never interleave bytes.
    NetSend = 7,
    /// `pario-core` naive self-scheduled baseline big lock.
    CoreBigLock = 10,
    /// `pario-server` admission queue state.
    Admission = 20,
    /// `pario-server` GDA byte-range lock table.
    RangeLock = 30,
    /// `pario-buffer` buffer pool free list.
    BufferPool = 40,
    /// `pario-core` direct-access sub-record RMW lock.
    CoreDirectRmw = 45,
    /// `pario-fs` volume extent allocator.
    FsAlloc = 50,
    /// `pario-fs` per-file sub-block read-modify-write lock.
    FsRmw = 60,
    /// `pario-fs` per-file parity stripe lock.
    FsStripe = 70,
    /// `pario-buffer` volume-wide block cache state. Above the RMW and
    /// stripe locks (cache lookups happen inside those critical
    /// sections) and below the health board (health transitions drop
    /// cached frames only after releasing the board mutex, and I/O
    /// outcome feedback is reported after the cache lock is released).
    VolumeCache = 75,
    /// `pario-fs` metadata intent journal: append cursor + superblock
    /// generation. An innermost lock on the metadata path — grow takes
    /// it after the allocator, checkpoint takes it with nothing else
    /// ranked held (the directory snapshot is collected first) — so it
    /// sits above every I/O-path lock except the health board.
    FsJournal = 78,
    /// `pario-fs` per-volume device health board. Ranked above every
    /// I/O-path lock because error feedback is reported from inside
    /// RMW/stripe critical sections.
    FsHealth = 80,
    /// Outside the hierarchy: never checked for ordering.
    Unranked = 255,
}

impl LockLevel {
    /// Stable display name used in reports and the DESIGN table.
    pub fn name(self) -> &'static str {
        match self {
            LockLevel::NetCredits => "net.credits",
            LockLevel::NetReplies => "net.replies",
            LockLevel::NetSend => "net.send",
            LockLevel::CoreBigLock => "core.big_lock",
            LockLevel::Admission => "server.admission",
            LockLevel::RangeLock => "server.range_lock",
            LockLevel::BufferPool => "buffer.pool",
            LockLevel::CoreDirectRmw => "core.direct_rmw",
            LockLevel::FsAlloc => "fs.alloc",
            LockLevel::FsRmw => "fs.rmw",
            LockLevel::FsStripe => "fs.stripe",
            LockLevel::VolumeCache => "buffer.volume_cache",
            LockLevel::FsJournal => "fs.journal",
            LockLevel::FsHealth => "fs.health",
            LockLevel::Unranked => "unranked",
        }
    }

    /// Numeric rank (ascending acquisition order).
    pub fn rank(self) -> u8 {
        self as u8
    }
}
