//! `pario-check`: an in-tree concurrency model checker.
//!
//! The request path of pario is genuinely concurrent — shared
//! self-scheduled cursors, byte-range write locks, bounded admission,
//! and a per-device I/O executor — and stress tests alone cannot
//! explore the interleavings that break it. This crate provides the
//! sync primitives those layers build on, in two personalities:
//!
//! * **Normal builds** (no extra cfg): [`Mutex`], [`Condvar`] and the
//!   atomics are thin zero-overhead pass-throughs to `parking_lot` /
//!   `std::sync::atomic` (see `passthrough`).
//! * **`--cfg pario_check` builds**: the same types route every
//!   operation through a cooperative scheduler that runs one thread at
//!   a time and *chooses* who runs next, so a test can deterministically
//!   explore thread interleavings (seeded random walk and
//!   bounded-preemption strategies, pruned by sleep-set partial-order
//!   reduction), detect deadlocks and lock-order inversions against the
//!   declared [`hierarchy::LockLevel`] table, track the happens-before
//!   relation with vector clocks keyed on the `Ordering` each atomic
//!   call site passes, report data races on [`CheckCell`] data as two
//!   labeled sites, and print a replayable schedule string on failure.
//!
//! Model tests live in this crate's `tests/` directory behind
//! `#![cfg(pario_check)]` and drive the *real* production types
//! (`SharedCursor`, `ByteRangeLocks`, `Admission`, the fs RMW path)
//! compiled under the same cfg:
//!
//! ```text
//! RUSTFLAGS="--cfg pario_check" cargo test -p pario-check
//! ```
//!
//! To replay a failing schedule, paste the printed string into
//! `Explorer::replay` (or re-run the test: exploration is seeded and
//! deterministic).

pub mod hierarchy;
pub use hierarchy::LockLevel;

#[cfg(not(pario_check))]
mod passthrough;
#[cfg(not(pario_check))]
pub use passthrough::*;

#[cfg(pario_check)]
mod clocks;
#[cfg(pario_check)]
mod sched;

#[cfg(pario_check)]
mod checked;
#[cfg(pario_check)]
pub use checked::*;

#[cfg(pario_check)]
mod explore;
#[cfg(pario_check)]
pub use explore::{replay, spawn, CheckFailure, Config, Explorer, JoinHandle, Report};
