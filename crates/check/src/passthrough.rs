//! Normal-build primitives: thin, zero-overhead pass-throughs.
//!
//! Without `--cfg pario_check` the instrumented types collapse to
//! `parking_lot` wrappers (`#[repr(transparent)]`, every method
//! `#[inline]`) and the atomics are literal re-exports of
//! `std::sync::atomic`. The lock-level argument of
//! [`Mutex::new_named`] is dropped at compile time.

use crate::hierarchy::LockLevel;

pub use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

/// Guard type of [`Mutex::lock`] — the real `parking_lot` guard.
pub type MutexGuard<'a, T> = parking_lot::MutexGuard<'a, T>;

/// A mutual-exclusion primitive; in normal builds, `parking_lot::Mutex`
/// with a hierarchy-aware constructor that compiles to nothing.
#[repr(transparent)]
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// An unranked mutex (exempt from hierarchy checking).
    #[inline]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// A mutex ranked at `level` in the documented lock hierarchy. The
    /// level is checked only under `--cfg pario_check`; here it
    /// vanishes.
    #[inline]
    pub const fn new_named(value: T, _level: LockLevel) -> Mutex<T> {
        Mutex::new(value)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock()
    }

    /// Try to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock()
    }

    /// Get the value mutably without locking (requires `&mut self`).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// A cell for plain shared data whose synchronization protocol is
/// verified under `--cfg pario_check`; in normal builds a zero-overhead
/// `UnsafeCell` — same size and codegen as the bare field it replaces.
///
/// Safety contract: callers must ensure accesses are ordered by some
/// synchronization protocol (that is exactly what the model checker's
/// race detector proves); `with`/`with_mut` closures must not leak the
/// borrow.
#[repr(transparent)]
#[derive(Default)]
pub struct CheckCell<T> {
    inner: std::cell::UnsafeCell<T>,
}

// SAFETY: accesses are externally synchronized per the type's contract,
// which the pario_check build verifies by happens-before analysis.
unsafe impl<T: Send> Sync for CheckCell<T> {}

/// Alias that names the intent at adoption sites: data that *would* be
/// racy without the protocol the model checks.
pub type RacyCell<T> = CheckCell<T>;

impl<T> CheckCell<T> {
    /// A new cell.
    #[inline]
    pub const fn new(value: T) -> CheckCell<T> {
        CheckCell {
            inner: std::cell::UnsafeCell::new(value),
        }
    }

    /// A new cell; the race-report label vanishes in normal builds.
    #[inline]
    pub const fn new_labeled(value: T, _label: &'static str) -> CheckCell<T> {
        CheckCell::new(value)
    }

    /// Read the value.
    #[inline]
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        unsafe { *self.inner.get() }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: T) {
        unsafe { *self.inner.get() = value }
    }

    /// Run `f` on a shared borrow.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(unsafe { &*self.inner.get() })
    }

    /// Run `f` on a mutable borrow.
    #[inline]
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(unsafe { &mut *self.inner.get() })
    }

    /// Direct access through `&mut self` (no sharing possible).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Unwrap the value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// A condition variable; in normal builds, `parking_lot::Condvar`.
#[repr(transparent)]
#[derive(Default)]
pub struct Condvar {
    inner: parking_lot::Condvar,
}

impl Condvar {
    /// A new condition variable.
    #[inline]
    pub const fn new() -> Condvar {
        Condvar {
            inner: parking_lot::Condvar::new(),
        }
    }

    /// Block on this condvar, releasing `guard` while parked.
    #[inline]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.inner.wait(guard);
    }

    /// Wake one parked waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every parked waiter.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}
