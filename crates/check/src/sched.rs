//! The cooperative scheduler behind `--cfg pario_check`.
//!
//! One model run owns one [`Sched`]. Model threads are real OS threads,
//! but at most one is ever *logically running*: every instrumented
//! operation (mutex acquire/release, condvar wait/notify, atomic
//! access) is a yield point where the running thread hands control back
//! and the scheduler picks who continues, consulting a seeded
//! [`Decider`]. The sequence of choices is the schedule; recording it
//! yields a replay string, and replaying it re-executes the same
//! interleaving.
//!
//! Blocking is scheduler-level: a thread that cannot take a lock is
//! parked in the scheduler *before* touching the underlying
//! `parking_lot` lock, so the real lock is only ever contended between
//! a model thread and free-running helper threads (e.g. I/O-node
//! workers), never between two model threads. When the running thread
//! must block and no other thread is runnable, every model thread is
//! stuck: that is a deadlock (or a lost wakeup) and the run fails with
//! the schedule attached.
//!
//! The scheduler also checks the declared lock hierarchy
//! ([`LockLevel`]): acquiring a ranked lock while holding one of equal
//! or higher rank is reported as a lock-order inversion even if the
//! particular schedule did not deadlock.
//!
//! On top of scheduling, the scheduler maintains the happens-before
//! relation of the run as vector clocks ([`crate::clocks`]): spawn,
//! join, lock hand-off, condvar notify→wake, and release/acquire
//! atomic pairs each propagate clocks — keyed on the `Ordering` the
//! call site actually passes, so `Relaxed` correctly propagates
//! nothing. [`crate::CheckCell`] accesses are checked against those
//! clocks and a concurrent conflicting pair is reported as a
//! [`FailureKind::DataRace`] with both sites labeled.
//!
//! Each yield point carries an [`OpTag`] naming the object about to be
//! touched; the scheduler uses the tags for a sleep-set partial-order
//! reduction (a thread whose next operation is independent of
//! everything executed since it was last considered is not re-picked —
//! running it now would only permute independent operations) and for
//! the Foata canonical trace hash that counts distinct schedules by
//! equivalence class rather than by raw decision string.

use std::collections::{HashMap, HashSet};
use std::panic::{resume_unwind, Location};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

use crate::clocks::{CellMeta, Foata, Site, VClock};
use crate::hierarchy::LockLevel;

/// Forced preemption threshold: a thread that passes this many
/// consecutive yield points while other threads are runnable is
/// preempted regardless of strategy, so busy-wait loops in model code
/// cannot livelock a schedule.
const FAIRNESS_LIMIT: u32 = 64;

/// Hard cap on scheduling decisions per schedule; exceeding it fails
/// the run (runaway livelock in the modelled code).
const MAX_STEPS: usize = 200_000;

/// Why a model run failed.
#[derive(Clone, Debug)]
pub(crate) enum FailureKind {
    /// Every live model thread is blocked.
    Deadlock,
    /// A ranked lock was acquired out of hierarchy order.
    LockOrder,
    /// A model thread panicked (assertion failure in the test body).
    Panic,
    /// The schedule exceeded [`MAX_STEPS`] decisions.
    Runaway,
    /// Two unsynchronized accesses to a [`crate::CheckCell`], at least
    /// one a write, with no happens-before edge between them.
    DataRace,
}

/// What kind of operation a yield point is about to perform; drives the
/// independence relation behind the sleep sets and the canonical trace
/// hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpKind {
    AtomicLoad,
    AtomicStore,
    AtomicRmw,
    CellRead,
    CellWrite,
    Lock,
    /// Conservatively dependent with everything (spawn, notify, and any
    /// untagged yield).
    Global,
}

/// A yield point's pending operation: which object, what kind.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OpTag {
    pub(crate) obj: usize,
    pub(crate) kind: OpKind,
}

impl OpTag {
    pub(crate) const GLOBAL: OpTag = OpTag {
        obj: 0,
        kind: OpKind::Global,
    };

    fn read_like(self) -> bool {
        matches!(self.kind, OpKind::AtomicLoad | OpKind::CellRead)
    }

    /// Two operations are dependent iff reordering them can change the
    /// outcome: anything global, or two accesses to the same object
    /// that are not both read-like.
    fn dependent(self, other: OpTag) -> bool {
        if self.kind == OpKind::Global || other.kind == OpKind::Global {
            return true;
        }
        self.obj == other.obj && !(self.read_like() && other.read_like())
    }
}

/// A recorded model-run failure: what happened plus the schedule that
/// makes it happen again.
#[derive(Clone, Debug)]
pub(crate) struct Failure {
    pub(crate) kind: FailureKind,
    pub(crate) message: String,
    /// Comma-separated thread ids, one per scheduling decision.
    pub(crate) replay: String,
}

/// Sentinel unwind payload used to tear a model thread down once the
/// run has failed; raised with `resume_unwind` so no panic hook fires.
pub(crate) struct AbortUnwind;

/// How the scheduler chooses the next thread at a decision point.
pub(crate) enum Decider {
    /// Uniform choice among runnable threads (seeded random walk).
    Random(SplitMix64),
    /// Prefer the running thread; preempt at most `bound` times per
    /// schedule (sleep-set-free bounded-preemption walk).
    BoundedPreemption {
        /// RNG used both to decide *whether* to preempt and *whom* to run.
        rng: SplitMix64,
        /// Preemptions still available in this schedule.
        remaining: u32,
    },
    /// Follow a recorded schedule; fall back to the first candidate
    /// once the recording is exhausted or diverges.
    Replay {
        /// Recorded thread choices, oldest first.
        tids: Vec<usize>,
        /// Next index into `tids`.
        at: usize,
    },
}

/// SplitMix64: tiny, seedable, deterministic — all the checker needs.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    /// Logically executing (or real-blocked inside its step).
    Running,
    /// At a yield point, waiting to be picked.
    Ready,
    /// Parked until the lock at this address frees.
    BlockedLock(usize),
    /// Parked on the condvar at this address.
    BlockedCv(usize),
    /// Parked until thread `tid` finishes.
    BlockedJoin(usize),
    /// Finished (normally or by abort unwind).
    Done,
}

struct ThreadState {
    status: Status,
    /// Ranked locks currently held: (lock address, level).
    held: Vec<(usize, LockLevel)>,
    /// Consecutive decisions that kept this thread running.
    streak: u32,
    /// This thread's happens-before knowledge.
    clock: VClock,
    /// The operation the thread will perform when next scheduled
    /// (set at its yield point, consumed when it is picked).
    pending: Option<OpTag>,
}

impl ThreadState {
    fn new(status: Status, clock: VClock) -> ThreadState {
        ThreadState {
            status,
            held: Vec::new(),
            streak: 0,
            clock,
            pending: None,
        }
    }
}

struct LockState {
    owner: Option<usize>,
}

struct State {
    threads: Vec<ThreadState>,
    current: usize,
    locks: HashMap<usize, LockState>,
    cv_waiters: HashMap<usize, Vec<usize>>,
    decider: Decider,
    trace: Vec<usize>,
    failure: Option<Failure>,
    abort: bool,
    /// Clock published by the last release of each lock.
    lock_clocks: HashMap<usize, VClock>,
    /// Clock accumulated by notifies of each condvar.
    cv_clocks: HashMap<usize, VClock>,
    /// Clock accumulated by release-writes to each checked atomic.
    atomic_clocks: HashMap<usize, VClock>,
    /// FastTrack access metadata per [`crate::CheckCell`], keyed by the
    /// cell's address and carrying its label.
    cells: HashMap<usize, (&'static str, CellMeta)>,
    /// Sleep set: Ready threads whose pending operation is independent
    /// of everything executed since they were passed over.
    sleep: HashSet<usize>,
    /// Decisions taken while the sleep set was non-empty; cleared with
    /// the set. Bounds how long a sleeper can be deferred, so a
    /// busy-wait polling independent state cannot starve the thread it
    /// is waiting for (trace equivalence holds per finite prefix, but a
    /// walk does not backtrack — liveness needs the bound).
    sleep_age: u32,
    /// Canonical (order-insensitive) hash of the executed operations.
    foata: Foata,
}

/// One model run's scheduler. Shared by every model thread of the run
/// via `Arc`; internally a plain std mutex + condvar (never the
/// instrumented kind).
pub(crate) struct Sched {
    state: StdMutex<State>,
    cv: StdCondvar,
    /// Quick pre-lock check so finished runs stop paying for the mutex.
    aborted: AtomicBool,
    /// Real join handles of spawned model threads, drained by the
    /// explorer at the end of the run.
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Sched>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's scheduler context, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Sched>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Install `ctx` as the calling thread's model context (used by the
/// spawn wrapper in `explore`).
pub(crate) fn set_current(ctx: Option<(Arc<Sched>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

impl Sched {
    /// A scheduler whose root thread (tid 0) is already running.
    pub(crate) fn new(decider: Decider) -> Sched {
        // Every thread's clock starts with its own component at 1, so a
        // fresh thread's accesses are never mistaken for ordered-after
        // by a clock that has merely never heard of it (zero default).
        let mut root_clock = VClock::default();
        root_clock.bump(0);
        Sched {
            state: StdMutex::new(State {
                threads: vec![ThreadState::new(Status::Running, root_clock)],
                current: 0,
                locks: HashMap::new(),
                cv_waiters: HashMap::new(),
                decider,
                trace: Vec::new(),
                failure: None,
                abort: false,
                lock_clocks: HashMap::new(),
                cv_clocks: HashMap::new(),
                atomic_clocks: HashMap::new(),
                cells: HashMap::new(),
                sleep: HashSet::new(),
                sleep_age: 0,
                foata: Foata::default(),
            }),
            cv: StdCondvar::new(),
            aborted: AtomicBool::new(false),
            handles: StdMutex::new(Vec::new()),
        }
    }

    /// Stash a spawned thread's real join handle for end-of-run
    /// teardown.
    pub(crate) fn stash_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    /// Drain the stashed join handles.
    pub(crate) fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// First park of a freshly spawned model thread: wait to be
    /// scheduled before running any model code.
    pub(crate) fn wait_first(&self, me: usize) {
        if self.abort_gate() {
            return;
        }
        let st = self.lock_state();
        self.wait_until_running(st, me);
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a new model thread spawned by `parent`; returns its tid
    /// (caller spawns the real thread). Spawn is a happens-before edge:
    /// the child starts with everything the parent has seen.
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        let mut clock = st.threads[parent].clock.clone();
        clock.bump(tid);
        st.threads[parent].clock.bump(parent);
        st.threads.push(ThreadState::new(Status::Ready, clock));
        tid
    }

    /// The failure recorded for this run, if any.
    pub(crate) fn failure(&self) -> Option<Failure> {
        self.lock_state().failure.clone()
    }

    // ---------------------------------------------------------------
    // Yield points
    // ---------------------------------------------------------------

    /// Abort check at an instrumented-operation entry. During teardown
    /// this unwinds the thread — unless it is already unwinding (guard
    /// drops), in which case the operation proceeds permissively.
    /// Returns `true` if the caller should skip scheduler bookkeeping.
    fn abort_gate(&self) -> bool {
        if self.aborted.load(Ordering::Relaxed) {
            if std::thread::panicking() {
                return true;
            }
            self.unwind_abort();
        }
        false
    }

    /// Plain yield point with no object information (conservatively
    /// dependent with everything).
    pub(crate) fn yield_point(&self, me: usize) {
        self.yield_op(me, OpTag::GLOBAL);
    }

    /// Tagged yield point: let the scheduler pick who runs next,
    /// knowing what `me` will do when it resumes.
    pub(crate) fn yield_op(&self, me: usize, tag: OpTag) {
        if self.abort_gate() {
            return;
        }
        let mut st = self.lock_state();
        st.threads[me].status = Status::Ready;
        st.threads[me].pending = Some(tag);
        self.pick_next(&mut st, me);
        self.wait_until_running(st, me);
    }

    /// Grant the lock at `addr` to `me` (hierarchy check, ownership,
    /// acquire edge from the last release).
    fn grant_lock(&self, st: &mut State, me: usize, addr: usize, level: LockLevel) {
        self.check_hierarchy(st, me, addr, level);
        st.locks.insert(addr, LockState { owner: Some(me) });
        if level != LockLevel::Unranked {
            st.threads[me].held.push((addr, level));
        }
        let State {
            lock_clocks,
            threads,
            ..
        } = st;
        if let Some(lc) = lock_clocks.get(&addr) {
            threads[me].clock.join(lc);
        }
    }

    /// Release edge: publish `me`'s clock to the lock at `addr` and
    /// advance past the published point.
    fn publish_lock(st: &mut State, me: usize, addr: usize) {
        let State {
            lock_clocks,
            threads,
            ..
        } = st;
        lock_clocks
            .entry(addr)
            .or_default()
            .join(&threads[me].clock);
        threads[me].clock.bump(me);
    }

    /// Acquire the model lock at `addr` (ranked `level`), blocking at
    /// scheduler level while another model thread owns it. The caller
    /// takes the real lock afterwards.
    pub(crate) fn lock_acquire(&self, me: usize, addr: usize, level: LockLevel) {
        if self.abort_gate() {
            return;
        }
        // Acquisition is a decision point: others may run first.
        self.yield_op(
            me,
            OpTag {
                obj: addr,
                kind: OpKind::Lock,
            },
        );
        let mut st = self.lock_state();
        loop {
            let owned = st
                .locks
                .get(&addr)
                .is_some_and(|l| l.owner.is_some_and(|o| o != me));
            if !owned {
                self.grant_lock(&mut st, me, addr, level);
                return;
            }
            st.threads[me].status = Status::BlockedLock(addr);
            self.pick_next(&mut st, me);
            st = self.wait_until_running_locked(st, me);
        }
    }

    /// Try to take the model lock at `addr` without blocking. A yield
    /// point; returns whether the lock was granted.
    pub(crate) fn lock_try_acquire(&self, me: usize, addr: usize, level: LockLevel) -> bool {
        if self.abort_gate() {
            return true;
        }
        self.yield_op(
            me,
            OpTag {
                obj: addr,
                kind: OpKind::Lock,
            },
        );
        let mut st = self.lock_state();
        let owned = st
            .locks
            .get(&addr)
            .is_some_and(|l| l.owner.is_some_and(|o| o != me));
        if owned {
            return false;
        }
        self.grant_lock(&mut st, me, addr, level);
        true
    }

    /// Release the model lock at `addr` and wake its waiters. Called
    /// from guard drops: never blocks, never panics mid-unwind.
    pub(crate) fn lock_release(&self, me: usize, addr: usize) {
        let mut st = self.lock_state();
        if let Some(l) = st.locks.get_mut(&addr) {
            if l.owner == Some(me) {
                l.owner = None;
            }
        }
        st.threads[me].held.retain(|&(a, _)| a != addr);
        Self::publish_lock(&mut st, me, addr);
        let mut woke = false;
        for t in st.threads.iter_mut() {
            if t.status == Status::BlockedLock(addr) {
                t.status = Status::Ready;
                woke = true;
            }
        }
        if woke {
            self.cv.notify_all();
        }
    }

    /// Park on the condvar at `cv_addr`, releasing the model lock at
    /// `lock_addr` while parked and re-acquiring it before returning.
    pub(crate) fn cv_wait(&self, me: usize, cv_addr: usize, lock_addr: usize, level: LockLevel) {
        if self.abort_gate() {
            return;
        }
        {
            let mut st = self.lock_state();
            if let Some(l) = st.locks.get_mut(&lock_addr) {
                if l.owner == Some(me) {
                    l.owner = None;
                }
            }
            st.threads[me].held.retain(|&(a, _)| a != lock_addr);
            Self::publish_lock(&mut st, me, lock_addr);
            let mut woke = false;
            for t in st.threads.iter_mut() {
                if t.status == Status::BlockedLock(lock_addr) {
                    t.status = Status::Ready;
                    woke = true;
                }
            }
            if woke {
                self.cv.notify_all();
            }
            st.cv_waiters.entry(cv_addr).or_default().push(me);
            st.threads[me].status = Status::BlockedCv(cv_addr);
            self.pick_next(&mut st, me);
            let mut st = self.wait_until_running_locked(st, me);
            // Woken by a notify: absorb the notifiers' published clocks
            // (the actual waker's clock is among them).
            let State {
                cv_clocks, threads, ..
            } = &mut *st;
            if let Some(cc) = cv_clocks.get(&cv_addr) {
                threads[me].clock.join(cc);
            }
            drop(st);
        }
        // Woken: re-acquire the lock (no extra yield; being scheduled
        // was the decision).
        let mut st = self.lock_state();
        loop {
            let owned = st
                .locks
                .get(&lock_addr)
                .is_some_and(|l| l.owner.is_some_and(|o| o != me));
            if !owned {
                self.grant_lock(&mut st, me, lock_addr, level);
                return;
            }
            st.threads[me].status = Status::BlockedLock(lock_addr);
            self.pick_next(&mut st, me);
            st = self.wait_until_running_locked(st, me);
        }
    }

    /// Wake one or all waiters of the condvar at `cv_addr`. Waking is a
    /// decision point (the scheduler may run a woken thread first).
    pub(crate) fn cv_notify(&self, me: usize, cv_addr: usize, all: bool) {
        if self.abort_gate() {
            return;
        }
        {
            let mut st = self.lock_state();
            // Notify edge: whoever wakes will absorb this clock.
            {
                let State {
                    cv_clocks, threads, ..
                } = &mut *st;
                cv_clocks
                    .entry(cv_addr)
                    .or_default()
                    .join(&threads[me].clock);
                threads[me].clock.bump(me);
            }
            let n_waiting = st.cv_waiters.get(&cv_addr).map_or(0, Vec::len);
            let woken: Vec<usize> = if n_waiting == 0 {
                Vec::new()
            } else if all {
                std::mem::take(st.cv_waiters.get_mut(&cv_addr).expect("non-empty entry"))
            } else {
                // Which waiter notify_one wakes is itself a scheduling
                // decision: explored when recording, recorded in the
                // trace, consumed on replay.
                let i = if n_waiting == 1 {
                    0
                } else {
                    match &mut st.decider {
                        Decider::Random(rng) => rng.below(n_waiting),
                        Decider::BoundedPreemption { rng, .. } => rng.below(n_waiting),
                        Decider::Replay { tids, at } => {
                            let want = tids.get(*at).copied();
                            *at += 1;
                            let w = st.cv_waiters.get(&cv_addr).expect("non-empty entry");
                            want.and_then(|t| w.iter().position(|&x| x == t))
                                .unwrap_or(0)
                        }
                    }
                };
                let tid = st
                    .cv_waiters
                    .get_mut(&cv_addr)
                    .expect("non-empty entry")
                    .remove(i);
                if n_waiting > 1 {
                    st.trace.push(tid);
                }
                vec![tid]
            };
            let mut any = false;
            for tid in woken {
                st.threads[tid].status = Status::Ready;
                any = true;
            }
            if any {
                self.cv.notify_all();
            }
        }
        self.yield_point(me);
    }

    /// Block until thread `tid` finishes. Join is a happens-before
    /// edge: the joiner absorbs everything the child did.
    pub(crate) fn join(&self, me: usize, tid: usize) {
        if self.abort_gate() {
            return;
        }
        let mut st = self.lock_state();
        while st.threads[tid].status != Status::Done {
            st.threads[me].status = Status::BlockedJoin(tid);
            self.pick_next(&mut st, me);
            st = self.wait_until_running_locked(st, me);
        }
        let child = st.threads[tid].clock.clone();
        st.threads[me].clock.join(&child);
    }

    /// Apply the happens-before edges of an atomic operation that just
    /// executed on the atomic at `addr`: an acquire side joins the
    /// atomic's published clock into the thread, a release side
    /// publishes the thread's clock to the atomic. `Relaxed` passes
    /// `(false, false)` and propagates nothing.
    pub(crate) fn atomic_sync(&self, me: usize, addr: usize, acquire: bool, release: bool) {
        if !acquire && !release {
            return;
        }
        if self.aborted.load(Ordering::Relaxed) {
            return;
        }
        let mut st = self.lock_state();
        let State {
            atomic_clocks,
            threads,
            ..
        } = &mut *st;
        let w = atomic_clocks.entry(addr).or_default();
        if acquire {
            threads[me].clock.join(w);
        }
        if release {
            w.join(&threads[me].clock);
            threads[me].clock.bump(me);
        }
    }

    /// A [`crate::CheckCell`] access: a tagged yield point followed by
    /// a FastTrack check of the access against the happens-before
    /// clocks. A conflicting concurrent pair fails the run as a
    /// [`FailureKind::DataRace`] naming both sites.
    pub(crate) fn cell_access(
        &self,
        me: usize,
        addr: usize,
        label: &'static str,
        write: bool,
        loc: &'static Location<'static>,
    ) {
        if self.abort_gate() {
            return;
        }
        self.yield_op(
            me,
            OpTag {
                obj: addr,
                kind: if write {
                    OpKind::CellWrite
                } else {
                    OpKind::CellRead
                },
            },
        );
        let mut st = self.lock_state();
        if st.abort {
            return;
        }
        let clock = st.threads[me].clock.clone();
        let site = Site { tid: me, loc };
        let meta = &mut st
            .cells
            .entry(addr)
            .or_insert_with(|| (label, CellMeta::new()))
            .1;
        let res = if write {
            meta.on_write(me, &clock, site)
        } else {
            meta.on_read(me, &clock, site)
        };
        if let Err(prior) = res {
            let this_kind = if write { "write" } else { "read" };
            let msg = format!(
                "data race on `{label}`: {} by thread {} at {} is concurrent with {} by thread {} at {}",
                prior.kind, prior.site.tid, prior.site.loc, this_kind, me, loc,
            );
            self.fail_locked(&mut st, FailureKind::DataRace, msg);
        }
    }

    /// Mark the calling thread finished and schedule a successor.
    pub(crate) fn thread_done(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me].status = Status::Done;
        let mut woke = false;
        for t in st.threads.iter_mut() {
            if t.status == Status::BlockedJoin(me) {
                t.status = Status::Ready;
                woke = true;
            }
        }
        if woke {
            self.cv.notify_all();
        }
        self.pick_next(&mut st, me);
    }

    /// Record a failure (first one wins) and begin tearing the run
    /// down. Does not unwind the caller.
    pub(crate) fn fail(&self, kind: FailureKind, message: String) {
        let mut st = self.lock_state();
        self.fail_locked(&mut st, kind, message);
    }

    /// [`Sched::fail`] with the state lock already held.
    fn fail_locked(&self, st: &mut State, kind: FailureKind, message: String) {
        if st.failure.is_none() {
            let replay = trace_string(&st.trace);
            st.failure = Some(Failure {
                kind,
                message,
                replay,
            });
        }
        st.abort = true;
        self.aborted.store(true, Ordering::Relaxed);
        self.cv.notify_all();
    }

    fn unwind_abort(&self) -> ! {
        resume_unwind(Box::new(AbortUnwind))
    }

    // ---------------------------------------------------------------
    // Internals
    // ---------------------------------------------------------------

    /// Strict-ascent hierarchy check for acquiring (`addr`, `level`).
    fn check_hierarchy(&self, st: &mut State, me: usize, addr: usize, level: LockLevel) {
        if level == LockLevel::Unranked {
            return;
        }
        let viol = st.threads[me]
            .held
            .iter()
            .find(|&&(a, held)| a != addr && held != LockLevel::Unranked && held >= level)
            .copied();
        if let Some((_, held)) = viol {
            let msg = format!(
                "lock-order inversion: thread {me} acquired {} (rank {}) while holding {} (rank {})",
                level.name(),
                level.rank(),
                held.name(),
                held.rank(),
            );
            self.fail_locked(st, FailureKind::LockOrder, msg);
        }
    }

    /// Choose and install the next running thread. `me` has already set
    /// its own (non-Running) status. Detects deadlock and runaways.
    fn pick_next(&self, st: &mut State, me: usize) {
        if st.abort {
            return;
        }
        if st.trace.len() >= MAX_STEPS {
            let replay = trace_string(&st.trace[..64.min(st.trace.len())]);
            if st.failure.is_none() {
                st.failure = Some(Failure {
                    kind: FailureKind::Runaway,
                    message: format!("schedule exceeded {MAX_STEPS} decisions (livelock?)"),
                    replay,
                });
            }
            st.abort = true;
            self.aborted.store(true, Ordering::Relaxed);
            self.cv.notify_all();
            return;
        }
        let ready: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Done) {
                return; // clean end of run
            }
            // `me` just blocked or finished and nobody can run: every
            // live thread is parked — deadlock / lost wakeup.
            let detail: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Done)
                .map(|(i, t)| match t.status {
                    Status::BlockedLock(a) => format!("thread {i} blocked on lock {a:#x}"),
                    Status::BlockedCv(a) => format!("thread {i} waiting on condvar {a:#x}"),
                    Status::BlockedJoin(t2) => format!("thread {i} joining thread {t2}"),
                    _ => format!("thread {i} in state {:?}", t.status),
                })
                .collect();
            self.fail_locked(
                st,
                FailureKind::Deadlock,
                format!("deadlock: {}", detail.join("; ")),
            );
            return;
        }
        // Sleep-set partial-order reduction: a sleeping thread's next
        // operation commutes with everything executed since it was put
        // to sleep, so scheduling it now reaches a state some other
        // schedule already covers. Deadlock detection above uses the
        // full ready set — sleep never hides a runnable thread there.
        // The age bound keeps the walk live: deferring a sleeper is
        // equivalence-preserving per step, but a poll loop over
        // independent state would otherwise defer it forever.
        if !st.sleep.is_empty() {
            st.sleep_age += 1;
            if st.sleep_age > FAIRNESS_LIMIT {
                st.sleep.clear();
            }
        }
        if st.sleep.is_empty() {
            st.sleep_age = 0;
        }
        let mut candidates: Vec<usize> = ready
            .iter()
            .copied()
            .filter(|t| !st.sleep.contains(t))
            .collect();
        if candidates.is_empty() {
            st.sleep.clear();
            st.sleep_age = 0;
            candidates = ready;
        }
        let chosen = if candidates.len() == 1 {
            candidates[0]
        } else {
            let prev = st.current;
            let streak = st.threads[prev].streak;
            let pick = match &mut st.decider {
                Decider::Random(rng) => candidates[rng.below(candidates.len())],
                Decider::BoundedPreemption { rng, remaining } => {
                    let continuing = candidates.contains(&prev) && prev == me;
                    if continuing && streak < FAIRNESS_LIMIT {
                        let preempt = *remaining > 0 && rng.next() % 4 == 0;
                        if preempt {
                            *remaining -= 1;
                            let others: Vec<usize> =
                                candidates.iter().copied().filter(|&t| t != prev).collect();
                            others[rng.below(others.len())]
                        } else {
                            prev
                        }
                    } else if continuing {
                        // Fairness fallback: forced switch.
                        let others: Vec<usize> =
                            candidates.iter().copied().filter(|&t| t != prev).collect();
                        others[rng.below(others.len())]
                    } else {
                        candidates[rng.below(candidates.len())]
                    }
                }
                Decider::Replay { tids, at } => {
                    let want = tids.get(*at).copied();
                    *at += 1;
                    match want {
                        Some(t) if candidates.contains(&t) => t,
                        _ => candidates[0],
                    }
                }
            };
            st.trace.push(pick);
            pick
        };
        // The chosen thread's pending operation executes next: fold it
        // into the canonical trace hash, wake sleepers that depend on
        // it, and put passed-over candidates whose next operation is
        // independent of it to sleep.
        st.sleep.remove(&chosen);
        if let Some(tag) = st.threads[chosen].pending.take() {
            st.foata.record(
                chosen,
                tag.obj,
                tag.kind as u8,
                tag.read_like(),
                tag.kind == OpKind::Global,
            );
            let State { sleep, threads, .. } = &mut *st;
            sleep.retain(|&u| matches!(threads[u].pending, Some(p) if !p.dependent(tag)));
            for &u in &candidates {
                if u == chosen {
                    continue;
                }
                if let Some(p) = threads[u].pending {
                    if !p.dependent(tag) {
                        sleep.insert(u);
                    }
                }
            }
        }
        if chosen == st.current {
            st.threads[chosen].streak += 1;
        } else {
            st.threads[chosen].streak = 0;
        }
        st.current = chosen;
        st.threads[chosen].status = Status::Running;
        self.cv.notify_all();
    }

    /// Park until `me` is the running thread (or the run aborts).
    fn wait_until_running(&self, st: std::sync::MutexGuard<'_, State>, me: usize) {
        let st = self.wait_until_running_locked(st, me);
        drop(st);
    }

    fn wait_until_running_locked<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, State>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, State> {
        loop {
            if st.abort {
                drop(st);
                if std::thread::panicking() {
                    // Already unwinding (guard drops during teardown):
                    // proceed permissively rather than double-panic.
                    return self.lock_state();
                }
                self.unwind_abort();
            }
            if st.threads[me].status == Status::Running {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Render a schedule as its replay string.
fn trace_string(trace: &[usize]) -> String {
    let parts: Vec<String> = trace.iter().map(|t| t.to_string()).collect();
    parts.join(",")
}

/// Parse a replay string back into thread choices.
pub(crate) fn parse_trace(s: &str) -> Vec<usize> {
    s.split(',')
        .filter(|p| !p.trim().is_empty())
        .filter_map(|p| p.trim().parse().ok())
        .collect()
}

/// The canonical (Foata) hash of the executed schedule: equal for
/// schedules that only permute independent operations. The explorer
/// counts distinct schedules with this, so the count reflects
/// genuinely different interleavings, not decision-string noise.
pub(crate) fn canonical_hash(sched: &Sched) -> u64 {
    sched.lock_state().foata.hash()
}
