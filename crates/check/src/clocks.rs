//! Vector clocks and FastTrack-style access metadata for the
//! happens-before data-race detector.
//!
//! The scheduler gives every model thread a [`VClock`] and threads sync
//! state (locks, condvars, release/acquire atomics) a clock of its own.
//! Synchronizing operations *join* clocks along the happens-before
//! edges the memory model actually guarantees — a `Relaxed` atomic op
//! propagates nothing. A [`CellMeta`] records the last write and the
//! last read(s) of one [`crate::CheckCell`]; in the common case both
//! collapse to a single *epoch* `(tid, clock)` so the per-access check
//! is two comparisons (the FastTrack fast path), and only genuinely
//! read-shared cells pay for a read vector.
//!
//! [`Foata`] accumulates a canonical hash of the executed operation
//! sequence: each operation's Foata depth (1 + the deepest operation it
//! depends on) is order-insensitive under commuting adjacent
//! *independent* operations, so two schedules hash equal iff they are
//! the same Mazurkiewicz trace up to hash collision. The explorer
//! counts distinct schedules with this hash, which together with the
//! scheduler's sleep sets stops equivalent interleavings from being
//! counted (or explored) twice.

use std::collections::HashMap;
use std::panic::Location;

/// A vector clock: `clock[t]` is the latest operation of thread `t`
/// known to happen-before the clock's owner. Missing entries are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    /// Component for thread `tid` (zero if never synchronized with).
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advance own component: the thread has performed a new operation
    /// not covered by previously published clocks.
    pub(crate) fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum: absorb everything `other` has seen.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, &o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(o);
        }
    }
}

/// A labeled access site: which thread touched the cell, from where.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Site {
    pub(crate) tid: usize,
    pub(crate) loc: &'static Location<'static>,
}

/// The prior access a racing operation conflicts with.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PriorAccess {
    /// `"write"` or `"read"`.
    pub(crate) kind: &'static str,
    pub(crate) site: Site,
}

/// Last reads of one cell: none yet, a single epoch (the FastTrack fast
/// path — covers exclusive and handed-off access), or a full vector for
/// genuinely concurrent readers.
#[derive(Clone, Debug)]
enum Reads {
    None,
    Epoch(usize, u64, Site),
    Vector(Vec<(usize, u64, Site)>),
}

/// Per-[`crate::CheckCell`] access metadata (FastTrack state machine).
#[derive(Clone, Debug)]
pub(crate) struct CellMeta {
    /// Epoch + site of the most recent write, if any.
    write: Option<(usize, u64, Site)>,
    reads: Reads,
}

impl CellMeta {
    pub(crate) fn new() -> CellMeta {
        CellMeta {
            write: None,
            reads: Reads::None,
        }
    }

    /// Check a read at `site` by a thread whose clock is `clock`
    /// against the last write; record the read. `Err` is a race with
    /// the returned prior access.
    pub(crate) fn on_read(
        &mut self,
        me: usize,
        clock: &VClock,
        site: Site,
    ) -> Result<(), PriorAccess> {
        // Same-epoch fast path: this thread already read at this clock.
        if let Reads::Epoch(t, c, _) = self.reads {
            if t == me && c == clock.get(me) {
                return Ok(());
            }
        }
        if let Some((wt, wc, ws)) = self.write {
            if wt != me && wc > clock.get(wt) {
                return Err(PriorAccess {
                    kind: "write",
                    site: ws,
                });
            }
        }
        let my = (me, clock.get(me), site);
        self.reads = match std::mem::replace(&mut self.reads, Reads::None) {
            Reads::None => Reads::Epoch(my.0, my.1, my.2),
            Reads::Epoch(t, c, s) => {
                if t == me || c <= clock.get(t) {
                    // Exclusive or handed-off: the previous read
                    // happens-before this one, stay on the epoch path.
                    Reads::Epoch(my.0, my.1, my.2)
                } else {
                    Reads::Vector(vec![(t, c, s), my])
                }
            }
            Reads::Vector(mut v) => {
                match v.iter_mut().find(|(t, _, _)| *t == me) {
                    Some(slot) => *slot = my,
                    None => v.push(my),
                }
                Reads::Vector(v)
            }
        };
        Ok(())
    }

    /// Check a write at `site` against the last write and all recorded
    /// reads; record the write (which clears the read set — everything
    /// in it now happens-before the write).
    pub(crate) fn on_write(
        &mut self,
        me: usize,
        clock: &VClock,
        site: Site,
    ) -> Result<(), PriorAccess> {
        if let Some((wt, wc, ws)) = self.write {
            if wt != me && wc > clock.get(wt) {
                return Err(PriorAccess {
                    kind: "write",
                    site: ws,
                });
            }
        }
        match &self.reads {
            Reads::None => {}
            Reads::Epoch(t, c, s) => {
                if *t != me && *c > clock.get(*t) {
                    return Err(PriorAccess {
                        kind: "read",
                        site: *s,
                    });
                }
            }
            Reads::Vector(v) => {
                for &(t, c, s) in v {
                    if t != me && c > clock.get(t) {
                        return Err(PriorAccess {
                            kind: "read",
                            site: s,
                        });
                    }
                }
            }
        }
        self.write = Some((me, clock.get(me), site));
        self.reads = Reads::None;
        Ok(())
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv(h: u64, v: u64) -> u64 {
    let mut h = h ^ v;
    h = h.wrapping_mul(FNV_PRIME);
    h
}

/// Conflict depths recorded per shared object.
#[derive(Clone, Copy, Debug, Default)]
struct ObjDepth {
    /// Deepest write-like operation on the object so far.
    write: usize,
    /// Deepest read-like operation on the object so far.
    read: usize,
}

/// Order-insensitive canonical trace hash (Foata normal form).
///
/// Each executed operation gets depth `1 + max(depth of the previous
/// operation of its thread, depth of the operations it conflicts
/// with)`; operations are hashed as `(tid, per-thread index, depth,
/// kind)` — deliberately address-free, so the hash is stable across
/// runs whose allocations land elsewhere — and accumulated
/// commutatively per depth level.
#[derive(Debug, Default)]
pub(crate) struct Foata {
    thread_depth: Vec<usize>,
    thread_ops: Vec<u64>,
    objs: HashMap<usize, ObjDepth>,
    /// Depth floor forced by globally-dependent operations (spawn,
    /// notify, anything untagged).
    floor: usize,
    max_depth: usize,
    levels: Vec<u64>,
}

impl Foata {
    /// Record one executed operation.
    ///
    /// `obj` identifies the shared object (ignored when `global`);
    /// `read_like` operations conflict only with write-like ones on the
    /// same object; `global` operations conflict with everything.
    pub(crate) fn record(
        &mut self,
        tid: usize,
        obj: usize,
        kind: u8,
        read_like: bool,
        global: bool,
    ) {
        if self.thread_depth.len() <= tid {
            self.thread_depth.resize(tid + 1, 0);
            self.thread_ops.resize(tid + 1, 0);
        }
        let mut base = self.thread_depth[tid].max(self.floor);
        if global {
            base = base.max(self.max_depth);
        } else {
            let od = self.objs.entry(obj).or_default();
            base = base.max(od.write);
            if !read_like {
                base = base.max(od.read);
            }
        }
        let depth = base + 1;
        self.thread_depth[tid] = depth;
        self.max_depth = self.max_depth.max(depth);
        if global {
            self.floor = self.floor.max(depth);
        } else {
            let od = self.objs.entry(obj).or_default();
            if read_like {
                od.read = od.read.max(depth);
            } else {
                od.write = od.write.max(depth);
            }
        }
        let mut ev = FNV_OFFSET;
        ev = fnv(ev, tid as u64);
        ev = fnv(ev, self.thread_ops[tid]);
        ev = fnv(ev, depth as u64);
        ev = fnv(ev, kind as u64);
        self.thread_ops[tid] += 1;
        if self.levels.len() < depth {
            self.levels.resize(depth, 0);
        }
        self.levels[depth - 1] = self.levels[depth - 1].wrapping_add(ev);
    }

    /// The canonical hash of everything recorded so far.
    pub(crate) fn hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &lvl in &self.levels {
            h = fnv(h, lvl);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(tid: usize) -> Site {
        Site {
            tid,
            loc: Location::caller(),
        }
    }

    fn clock(parts: &[(usize, u64)]) -> VClock {
        let mut c = VClock::default();
        for &(t, v) in parts {
            for _ in 0..v {
                c.bump(t);
            }
        }
        c
    }

    #[test]
    fn vclock_join_is_pointwise_max() {
        let mut a = clock(&[(0, 3), (2, 1)]);
        let b = clock(&[(0, 1), (1, 5)]);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(9), 0);
    }

    #[test]
    fn concurrent_write_write_is_a_race() {
        let mut m = CellMeta::new();
        // Thread 0 writes at clock [0:1]; thread 1 has never heard of it.
        m.on_write(0, &clock(&[(0, 1)]), site(0)).unwrap();
        let err = m.on_write(1, &clock(&[(1, 1)]), site(1)).unwrap_err();
        assert_eq!(err.kind, "write");
        assert_eq!(err.site.tid, 0);
    }

    #[test]
    fn synchronized_handoff_is_not_a_race() {
        let mut m = CellMeta::new();
        m.on_write(0, &clock(&[(0, 1)]), site(0)).unwrap();
        // Thread 1 has absorbed thread 0's clock (e.g. via a release/
        // acquire pair): ordered, not racing.
        m.on_write(1, &clock(&[(0, 1), (1, 1)]), site(1)).unwrap();
        m.on_read(0, &clock(&[(0, 2)]), site(0)).unwrap_err();
        m.on_read(0, &clock(&[(0, 2), (1, 1)]), site(0)).unwrap();
    }

    #[test]
    fn read_shared_promotes_and_still_catches_racy_write() {
        let mut m = CellMeta::new();
        // Two concurrent readers force the vector path; both fine.
        m.on_read(0, &clock(&[(0, 1)]), site(0)).unwrap();
        m.on_read(1, &clock(&[(1, 1)]), site(1)).unwrap();
        // A writer that has only seen reader 0 races reader 1.
        let err = m
            .on_write(2, &clock(&[(0, 1), (2, 1)]), site(2))
            .unwrap_err();
        assert_eq!(err.kind, "read");
        assert_eq!(err.site.tid, 1);
        // A writer ordered after both readers is clean.
        m.on_write(2, &clock(&[(0, 1), (1, 1), (2, 1)]), site(2))
            .unwrap();
    }

    #[test]
    fn same_epoch_read_fast_path_is_silent() {
        let mut m = CellMeta::new();
        let c = clock(&[(0, 1)]);
        m.on_read(0, &c, site(0)).unwrap();
        m.on_read(0, &c, site(0)).unwrap();
        assert!(matches!(m.reads, Reads::Epoch(0, 1, _)));
    }

    #[test]
    fn foata_hash_ignores_order_of_independent_ops() {
        // Threads 0 and 1 touch disjoint objects: any interleaving is
        // the same trace.
        let mut a = Foata::default();
        a.record(0, 100, 1, false, false);
        a.record(1, 200, 1, false, false);
        a.record(0, 100, 1, false, false);
        let mut b = Foata::default();
        b.record(0, 100, 1, false, false);
        b.record(0, 100, 1, false, false);
        b.record(1, 200, 1, false, false);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn foata_hash_distinguishes_conflicting_orders() {
        // Same object, both writes: order matters.
        let mut a = Foata::default();
        a.record(0, 100, 1, false, false);
        a.record(1, 100, 1, false, false);
        let mut b = Foata::default();
        b.record(1, 100, 1, false, false);
        b.record(0, 100, 1, false, false);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn foata_reads_commute_but_read_write_does_not() {
        let mut a = Foata::default();
        a.record(0, 100, 2, true, false);
        a.record(1, 100, 2, true, false);
        let mut b = Foata::default();
        b.record(1, 100, 2, true, false);
        b.record(0, 100, 2, true, false);
        assert_eq!(a.hash(), b.hash());

        let mut c = Foata::default();
        c.record(0, 100, 2, true, false);
        c.record(1, 100, 1, false, false);
        let mut d = Foata::default();
        d.record(1, 100, 1, false, false);
        d.record(0, 100, 2, true, false);
        assert_ne!(c.hash(), d.hash());
    }
}
