//! Instrumented primitives for `--cfg pario_check` builds.
//!
//! Same API surface as the normal-mode pass-throughs, but every
//! operation performed **on a model thread** (one spawned inside an
//! [`crate::Explorer`] run) first routes through the run's cooperative
//! scheduler: lock acquisition, condvar wait/notify and each atomic
//! access become scheduling decision points, lock ownership is tracked
//! for deadlock detection, and ranked locks are checked against the
//! declared [`LockLevel`] hierarchy.
//!
//! Off a model thread the types degrade to plain `parking_lot`/std
//! behavior, so production code compiled under the cfg still works when
//! executed outside a model (including free-running helper threads such
//! as I/O-node workers, which coexist with model threads).
//!
//! The data of a checked mutex still lives behind a real
//! `parking_lot::Mutex`; the scheduler guarantees at most one model
//! thread holds it, and non-model threads contend on the real lock as
//! usual, so mixed use is safe.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::hierarchy::LockLevel;
use crate::sched::{self, Sched};

/// A mutual-exclusion primitive, scheduler-aware on model threads.
pub struct Mutex<T: ?Sized> {
    level: LockLevel,
    inner: parking_lot::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`]; releases the model lock (waking
/// scheduler-blocked threads) and then the real lock on drop.
#[must_use = "a lock is held only while its guard lives"]
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    real: Option<parking_lot::MutexGuard<'a, T>>,
    model: Option<(Arc<Sched>, usize)>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// An unranked mutex (exempt from hierarchy checking).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex::new_named(value, LockLevel::Unranked)
    }

    /// A mutex ranked at `level` in the documented lock hierarchy.
    pub const fn new_named(value: T, level: LockLevel) -> Mutex<T> {
        Mutex {
            level,
            inner: parking_lot::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Stable identity of this lock within a model run.
    fn addr(&self) -> usize {
        &self.inner as *const _ as *const u8 as usize
    }

    /// Acquire the lock, blocking until available. On a model thread
    /// the block happens at scheduler level and is a decision point.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match sched::current() {
            Some((s, tid)) => {
                s.lock_acquire(tid, self.addr(), self.level);
                MutexGuard {
                    mutex: self,
                    real: Some(self.inner.lock()),
                    model: Some((s, tid)),
                }
            }
            None => MutexGuard {
                mutex: self,
                real: Some(self.inner.lock()),
                model: None,
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match sched::current() {
            Some((s, tid)) => {
                if !s.lock_try_acquire(tid, self.addr(), self.level) {
                    return None;
                }
                Some(MutexGuard {
                    mutex: self,
                    real: Some(self.inner.lock()),
                    model: Some((s, tid)),
                })
            }
            None => self.inner.try_lock().map(|g| MutexGuard {
                mutex: self,
                real: Some(g),
                model: None,
            }),
        }
    }

    /// Get the value mutably without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard holds the real lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard holds the real lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real lock first, so a freshly scheduled model waiter (or a
        // non-model contender) can take it immediately.
        drop(self.real.take());
        if let Some((s, tid)) = self.model.take() {
            s.lock_release(tid, self.mutex.addr());
        }
    }
}

/// A reader-writer lock, scheduler-aware on model threads.
///
/// In model runs both `read` and `write` are treated as *exclusive*
/// acquisitions of one scheduler-level lock: reads still never contend
/// with each other on the real lock (the scheduler admits one model
/// holder at a time), but every acquisition is a decision point and is
/// tracked for deadlock detection. This is conservative — it explores a
/// subset of real read-parallel schedules — and keeps writer-held
/// windows (e.g. file metadata during growth) visible to the scheduler
/// so model threads never real-block on an invisible lock. RwLocks are
/// always unranked: the fs metadata lock is taken both before `fs.alloc`
/// (growth) and after `fs.rmw` (block I/O), which no single rank admits;
/// deadlock detection still covers it.
pub struct RwLock<T: ?Sized> {
    inner: parking_lot::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
#[must_use = "the read lock is held only while its guard lives"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    real: Option<parking_lot::RwLockReadGuard<'a, T>>,
    model: Option<(Arc<Sched>, usize)>,
}

/// RAII guard for [`RwLock::write`].
#[must_use = "the write lock is held only while its guard lives"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    real: Option<parking_lot::RwLockWriteGuard<'a, T>>,
    model: Option<(Arc<Sched>, usize)>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    /// A new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: parking_lot::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    fn addr(&self) -> usize {
        &self.inner as *const _ as *const u8 as usize
    }

    /// Acquire shared access (exclusive at model-scheduler level).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model = sched::current();
        if let Some((s, tid)) = &model {
            s.lock_acquire(*tid, self.addr(), LockLevel::Unranked);
        }
        RwLockReadGuard {
            lock: self,
            real: Some(self.inner.read()),
            model,
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model = sched::current();
        if let Some((s, tid)) = &model {
            s.lock_acquire(*tid, self.addr(), LockLevel::Unranked);
        }
        RwLockWriteGuard {
            lock: self,
            real: Some(self.inner.write()),
            model,
        }
    }

    /// Get the value mutably without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard holds the real lock")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.real.take());
        if let Some((s, tid)) = self.model.take() {
            s.lock_release(tid, self.lock.addr());
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard holds the real lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard holds the real lock")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.real.take());
        if let Some((s, tid)) = self.model.take() {
            s.lock_release(tid, self.lock.addr());
        }
    }
}

/// A condition variable, scheduler-aware on model threads.
#[derive(Default)]
pub struct Condvar {
    inner: parking_lot::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: parking_lot::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        &self.inner as *const _ as *const u8 as usize
    }

    /// Block on this condvar, releasing `guard` while parked.
    ///
    /// Model threads park in the scheduler; a schedule in which every
    /// live thread ends up parked here is reported as a lost wakeup.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match guard.model.clone() {
            Some((s, tid)) => {
                let lock_addr = guard.mutex.addr();
                let level = guard.mutex.level;
                drop(guard.real.take());
                s.cv_wait(tid, self.addr(), lock_addr, level);
                guard.real = Some(guard.mutex.inner.lock());
            }
            None => {
                let real = guard.real.as_mut().expect("guard holds the real lock");
                self.inner.wait(real);
            }
        }
    }

    /// Wake one parked waiter. Which model waiter wakes is a recorded
    /// scheduling decision.
    pub fn notify_one(&self) {
        if let Some((s, tid)) = sched::current() {
            s.cv_notify(tid, self.addr(), false);
        }
        self.inner.notify_one();
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        if let Some((s, tid)) = sched::current() {
            s.cv_notify(tid, self.addr(), true);
        }
        self.inner.notify_all();
    }
}

/// Does a load with this ordering have acquire semantics?
fn load_acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Does a store/RMW with this ordering have release semantics?
fn store_releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Instrumented atomics: every access on a model thread is a yield
/// point, which is what lets the explorer interleave lock-free
/// protocols (the SS cursor's reserve-then-transfer, the executor's
/// in-flight accounting) at the granularity races actually occur.
///
/// After the real operation executes, the happens-before clocks are
/// propagated exactly as the passed `Ordering` warrants: an
/// acquire-load joins the atomic's published clock into the thread, a
/// release-store publishes the thread's clock, an `AcqRel` RMW does
/// both, and `Relaxed` propagates **nothing** — which is what lets the
/// race detector catch an ordering bug (a too-weak publish) that every
/// interleaving-only check would miss on x86 hardware.
macro_rules! checked_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Instrumented atomic; see the module docs.
        pub struct $name {
            inner: $std,
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(<$prim>::default())
            }
        }

        impl $name {
            /// A new atomic initialised to `v`.
            pub const fn new(v: $prim) -> $name {
                $name {
                    inner: <$std>::new(v),
                }
            }

            fn addr(&self) -> usize {
                &self.inner as *const _ as *const u8 as usize
            }

            /// Pre-operation yield point; returns the model context for
            /// the post-operation clock propagation.
            fn hook(&self, kind: sched::OpKind) -> Option<(Arc<Sched>, usize)> {
                let ctx = sched::current();
                if let Some((s, tid)) = &ctx {
                    s.yield_op(
                        *tid,
                        sched::OpTag {
                            obj: self.addr(),
                            kind,
                        },
                    );
                }
                ctx
            }

            fn sync(&self, ctx: Option<(Arc<Sched>, usize)>, acquire: bool, release: bool) {
                if let Some((s, tid)) = ctx {
                    s.atomic_sync(tid, self.addr(), acquire, release);
                }
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $prim {
                let ctx = self.hook(sched::OpKind::AtomicLoad);
                let v = self.inner.load(order);
                self.sync(ctx, load_acquires(order), false);
                v
            }

            /// Atomic store.
            pub fn store(&self, v: $prim, order: Ordering) {
                let ctx = self.hook(sched::OpKind::AtomicStore);
                self.inner.store(v, order);
                self.sync(ctx, false, store_releases(order));
            }

            /// Atomic swap.
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                let ctx = self.hook(sched::OpKind::AtomicRmw);
                let prev = self.inner.swap(v, order);
                self.sync(ctx, load_acquires(order), store_releases(order));
                prev
            }

            /// Atomic compare-exchange. On success the *success*
            /// ordering's edges apply (as an RMW); on failure only the
            /// *failure* ordering's load side does.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                let ctx = self.hook(sched::OpKind::AtomicRmw);
                let r = self.inner.compare_exchange(current, new, success, failure);
                let (acq, rel) = match r {
                    Ok(_) => (load_acquires(success), store_releases(success)),
                    Err(_) => (load_acquires(failure), false),
                };
                self.sync(ctx, acq, rel);
                r
            }

            /// Atomic compare-exchange allowed to fail spuriously.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                let ctx = self.hook(sched::OpKind::AtomicRmw);
                let r = self
                    .inner
                    .compare_exchange_weak(current, new, success, failure);
                let (acq, rel) = match r {
                    Ok(_) => (load_acquires(success), store_releases(success)),
                    Err(_) => (load_acquires(failure), false),
                };
                self.sync(ctx, acq, rel);
                r
            }
        }
    };
}

macro_rules! checked_atomic_arith {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Atomic add; returns the previous value.
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                let ctx = self.hook(sched::OpKind::AtomicRmw);
                let prev = self.inner.fetch_add(v, order);
                self.sync(ctx, load_acquires(order), store_releases(order));
                prev
            }

            /// Atomic subtract; returns the previous value.
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                let ctx = self.hook(sched::OpKind::AtomicRmw);
                let prev = self.inner.fetch_sub(v, order);
                self.sync(ctx, load_acquires(order), store_releases(order));
                prev
            }

            /// Atomic max; returns the previous value.
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                let ctx = self.hook(sched::OpKind::AtomicRmw);
                let prev = self.inner.fetch_max(v, order);
                self.sync(ctx, load_acquires(order), store_releases(order));
                prev
            }
        }
    };
}

checked_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
checked_atomic_arith!(AtomicU64, u64);
checked_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
checked_atomic_arith!(AtomicUsize, usize);
checked_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
checked_atomic_arith!(AtomicU32, u32);
checked_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

impl AtomicBool {
    /// Atomic OR; returns the previous value.
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        let ctx = self.hook(sched::OpKind::AtomicRmw);
        let prev = self.inner.fetch_or(v, order);
        self.sync(ctx, load_acquires(order), store_releases(order));
        prev
    }
}

/// A cell for *plain* (non-atomic) data shared between threads under
/// some synchronization protocol — the moral equivalent of the field a
/// lock-free algorithm guards with its atomics. Every access on a model
/// thread is checked against the run's happens-before clocks: two
/// concurrent accesses, at least one a write, fail the schedule as a
/// `DataRace` naming both sites (`#[track_caller]` keeps the labels
/// free). In normal builds this is a zero-overhead `UnsafeCell`.
///
/// The accessors are safe to *call* because a model run serializes
/// model threads through the scheduler's own lock; the **protocol** is
/// what the detector verifies. Production code must only use a
/// `CheckCell` where such a protocol exists, and keep `with`/`with_mut`
/// closures free of instrumented operations (the borrow must not span
/// a yield point).
pub struct CheckCell<T> {
    label: &'static str,
    inner: std::cell::UnsafeCell<T>,
}

// SAFETY: within a model run, the cooperative scheduler runs one model
// thread at a time and hands off through its own mutex, so accesses are
// really serialized (and the detector reports any pair the *modelled*
// synchronization fails to order).
unsafe impl<T: Send> Sync for CheckCell<T> {}

/// Alias that names the intent at adoption sites: data that *would* be
/// racy without the protocol the model checks.
pub type RacyCell<T> = CheckCell<T>;

impl<T> CheckCell<T> {
    /// A new cell labeled `cell` in race reports.
    pub const fn new(value: T) -> CheckCell<T> {
        CheckCell::new_labeled(value, "cell")
    }

    /// A new cell carrying `label` in race reports.
    pub const fn new_labeled(value: T, label: &'static str) -> CheckCell<T> {
        CheckCell {
            label,
            inner: std::cell::UnsafeCell::new(value),
        }
    }

    fn addr(&self) -> usize {
        self.inner.get() as usize
    }

    #[track_caller]
    fn check(&self, write: bool) {
        if let Some((s, tid)) = sched::current() {
            s.cell_access(
                tid,
                self.addr(),
                self.label,
                write,
                std::panic::Location::caller(),
            );
        }
    }

    /// Read the value (checked as a read).
    #[track_caller]
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        self.check(false);
        unsafe { *self.inner.get() }
    }

    /// Overwrite the value (checked as a write).
    #[track_caller]
    pub fn set(&self, value: T) {
        self.check(true);
        unsafe { *self.inner.get() = value }
    }

    /// Run `f` on a shared borrow (checked as a read).
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.check(false);
        f(unsafe { &*self.inner.get() })
    }

    /// Run `f` on a mutable borrow (checked as a write).
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.check(true);
        f(unsafe { &mut *self.inner.get() })
    }

    /// Direct access through `&mut self` (no sharing possible).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for CheckCell<T> {
    fn default() -> CheckCell<T> {
        CheckCell::new(T::default())
    }
}
