//! Measurement collected during a simulation run.

use serde::Serialize;

use crate::time::SimTime;

/// A log-2 bucketed latency histogram (bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds; bucket 0 additionally catches
/// sub-microsecond samples).
#[derive(Clone, Debug, Default, Serialize, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts, indexed by `floor(log2(us))`.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Largest sample seen.
    pub max: SimTime,
}

impl Histogram {
    /// Record one latency sample.
    pub fn record(&mut self, t: SimTime) {
        let us = t.as_ns() / 1_000;
        let idx = if us <= 1 {
            0
        } else {
            63 - us.leading_zeros() as usize
        };
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.max = self.max.max(t);
    }

    /// The smallest latency bound `b` such that at least `q` (0..=1) of
    /// samples are `< b` — a coarse quantile from the bucket bounds.
    pub fn quantile_upper_bound(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return SimTime::from_us(1 << (i + 1));
            }
        }
        self.max
    }
}

/// Per-device accounting.
#[derive(Clone, Debug, Default, Serialize)]
pub struct DeviceStats {
    /// Requests serviced.
    pub requests: u64,
    /// Blocks transferred.
    pub blocks: u64,
    /// Total time the device was servicing a request.
    pub busy: SimTime,
    /// Portion of `busy` spent seeking.
    pub seek: SimTime,
    /// Portion of `busy` spent in rotational latency.
    pub rotation: SimTime,
    /// Portion of `busy` spent transferring data.
    pub transfer: SimTime,
    /// Sum over requests of (completion - issue); divide by `requests` for
    /// mean response time including queueing.
    pub response_total: SimTime,
    /// Distribution of per-request response times.
    pub response_hist: Histogram,
}

impl DeviceStats {
    /// Mean response time (queue + service) per request.
    pub fn mean_response(&self) -> SimTime {
        if self.requests == 0 {
            SimTime::ZERO
        } else {
            self.response_total / self.requests
        }
    }

    /// Fraction of `makespan` this device was busy.
    pub fn utilization(&self, makespan: SimTime) -> f64 {
        if makespan.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / makespan.as_secs_f64()
        }
    }
}

/// Per-process accounting.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ProcStats {
    /// Virtual time spent computing.
    pub compute: SimTime,
    /// Virtual time spent blocked on I/O.
    pub io_wait: SimTime,
    /// Virtual time spent blocked at barriers.
    pub barrier_wait: SimTime,
    /// Time the process finished its script.
    pub finished_at: SimTime,
    /// Blocking I/O calls issued.
    pub io_calls: u64,
}

/// One recorded device-level event, for pattern-style figures and debugging.
#[derive(Clone, Debug, Serialize)]
pub struct TraceEvent {
    /// When service started.
    pub start: SimTime,
    /// When service completed.
    pub end: SimTime,
    /// Issuing process.
    pub proc: usize,
    /// Servicing device.
    pub device: usize,
    /// Device-local starting block.
    pub block: u64,
    /// Blocks transferred.
    pub nblocks: u32,
    /// True for writes.
    pub is_write: bool,
}

/// Everything a finished run reports.
#[derive(Clone, Debug, Default, Serialize)]
pub struct SimReport {
    /// Time the last event occurred (total virtual run time).
    pub makespan: SimTime,
    /// Per-process stats, indexed by process id.
    pub procs: Vec<ProcStats>,
    /// Per-device stats, indexed by device id.
    pub devices: Vec<DeviceStats>,
    /// Device-service trace (only if tracing was enabled).
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// Total blocks transferred across all devices.
    pub fn total_blocks(&self) -> u64 {
        self.devices.iter().map(|d| d.blocks).sum()
    }

    /// Aggregate throughput in blocks per simulated second.
    pub fn blocks_per_sec(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_blocks() as f64 / self.makespan.as_secs_f64()
        }
    }

    /// Aggregate throughput in bytes per simulated second, given the device
    /// block size used by the experiment.
    pub fn bytes_per_sec(&self, block_size: usize) -> f64 {
        self.blocks_per_sec() * block_size as f64
    }

    /// Mean device utilization over the run.
    pub fn mean_utilization(&self) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        self.devices
            .iter()
            .map(|d| d.utilization(self.makespan))
            .sum::<f64>()
            / self.devices.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_stats_derived_metrics() {
        let d = DeviceStats {
            requests: 4,
            blocks: 8,
            busy: SimTime::from_ms(5),
            response_total: SimTime::from_ms(8),
            ..DeviceStats::default()
        };
        assert_eq!(d.mean_response(), SimTime::from_ms(2));
        let u = d.utilization(SimTime::from_ms(10));
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(DeviceStats::default().mean_response(), SimTime::ZERO);
        assert_eq!(DeviceStats::default().utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile_upper_bound(0.5), SimTime::ZERO);
        for us in [1u64, 3, 3, 100, 100, 100, 100, 5000] {
            h.record(SimTime::from_us(us));
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.max, SimTime::from_ms(5));
        // 1us -> bucket 0; 3us -> bucket 1; 100us -> bucket 6; 5000 -> 12.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[6], 4);
        assert_eq!(h.buckets[12], 1);
        // Median bound: 4 of 8 samples inside buckets 0..=6.
        assert_eq!(h.quantile_upper_bound(0.5), SimTime::from_us(128));
        assert!(h.quantile_upper_bound(1.0) >= SimTime::from_ms(5));
    }

    #[test]
    fn report_throughput() {
        let mut r = SimReport {
            makespan: SimTime::from_secs(2),
            ..Default::default()
        };
        r.devices.push(DeviceStats {
            blocks: 100,
            ..DeviceStats::default()
        });
        r.devices.push(DeviceStats {
            blocks: 300,
            ..DeviceStats::default()
        });
        assert_eq!(r.total_blocks(), 400);
        assert!((r.blocks_per_sec() - 200.0).abs() < 1e-9);
        assert!((r.bytes_per_sec(1024) - 200.0 * 1024.0).abs() < 1e-6);
    }
}
