//! Virtual time for the discrete-event engine.
//!
//! Simulated time is an integer count of nanoseconds. Using an integer (and
//! not `f64`) keeps event ordering exact and the whole simulation bit-for-bit
//! reproducible across runs and platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `SimTime` is deliberately a thin newtype: all arithmetic is plain integer
/// arithmetic, and overflow panics in debug builds like any other integer
/// overflow. A nanosecond tick gives ~584 years of simulated range, far more
/// than any experiment here needs.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// A span of `ns` nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// A span of `us` microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// A span of `ms` milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// A span of `s` whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// A span of `s` seconds, rounded to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs clamp to zero; callers constructing
    /// service times from rate arithmetic should never produce them, but a
    /// clamp is safer than a panic deep inside an experiment sweep.
    pub fn from_secs_f64(s: f64) -> SimTime {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This time expressed in seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `self - other`, clamping at zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// True if this is the zero span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_ms(500));
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(3);
        let b = SimTime::from_ms(1);
        assert_eq!(a + b, SimTime::from_ms(4));
        assert_eq!(a - b, SimTime::from_ms(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a * 2, SimTime::from_ms(6));
        assert_eq!(a / 3, SimTime::from_ms(1));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_and_display() {
        let total: SimTime = [SimTime::from_ms(1), SimTime::from_ms(2)].into_iter().sum();
        assert_eq!(total, SimTime::from_ms(3));
        assert_eq!(format!("{}", SimTime::from_ns(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_us(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_ms(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::from_ms(2), SimTime::ZERO, SimTime::from_us(10)];
        v.sort();
        assert_eq!(
            v,
            vec![SimTime::ZERO, SimTime::from_us(10), SimTime::from_ms(2)]
        );
    }
}
