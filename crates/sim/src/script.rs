//! Scripted process behaviour.
//!
//! A simulated process is a straight-line script of operations: compute for
//! a while, do some I/O, synchronise. Scripts are built ahead of time by the
//! experiment (often from a layout mapping), which keeps the engine free of
//! application logic and makes every run exactly reproducible.

use crate::request::DiskReq;
use crate::time::SimTime;

/// One step in a process script.
#[derive(Clone, Debug)]
pub enum Op {
    /// Occupy the CPU for the given span (no device activity).
    Compute(SimTime),
    /// Issue the requests and block until *all* of this process's
    /// outstanding requests (including earlier async ones) complete.
    Io(Vec<DiskReq>),
    /// Issue the requests and continue immediately (read-ahead / deferred
    /// write). Completions are collected by a later `Io` or `WaitAll`.
    IoAsync(Vec<DiskReq>),
    /// Block until every outstanding request of this process completes.
    WaitAll,
    /// Block until every live process has reached its own `Barrier`.
    Barrier,
}

impl Op {
    /// A blocking read of `nblocks` at `block` on `device`.
    pub fn read(device: usize, block: u64, nblocks: u32) -> Op {
        Op::Io(vec![DiskReq::read(device, block, nblocks)])
    }

    /// A blocking write of `nblocks` at `block` on `device`.
    pub fn write(device: usize, block: u64, nblocks: u32) -> Op {
        Op::Io(vec![DiskReq::write(device, block, nblocks)])
    }
}

/// Builder for a process script.
///
/// ```
/// use pario_sim::{Script, SimTime};
/// let script = Script::new()
///     .compute(SimTime::from_us(50))
///     .read(0, 0, 8)
///     .barrier()
///     .build();
/// assert_eq!(script.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Script {
    ops: Vec<Op>,
}

impl Script {
    /// Start an empty script.
    pub fn new() -> Script {
        Script::default()
    }

    /// Append an arbitrary op.
    pub fn op(mut self, op: Op) -> Script {
        self.ops.push(op);
        self
    }

    /// Append a compute phase.
    pub fn compute(self, d: SimTime) -> Script {
        self.op(Op::Compute(d))
    }

    /// Append a blocking single-extent read.
    pub fn read(self, device: usize, block: u64, nblocks: u32) -> Script {
        self.op(Op::read(device, block, nblocks))
    }

    /// Append a blocking single-extent write.
    pub fn write(self, device: usize, block: u64, nblocks: u32) -> Script {
        self.op(Op::write(device, block, nblocks))
    }

    /// Append a blocking multi-request I/O (e.g. one logical block split
    /// across several devices by a declustered layout).
    pub fn io(self, reqs: Vec<DiskReq>) -> Script {
        self.op(Op::Io(reqs))
    }

    /// Append a non-blocking I/O (read-ahead / write-behind).
    pub fn io_async(self, reqs: Vec<DiskReq>) -> Script {
        self.op(Op::IoAsync(reqs))
    }

    /// Append a wait for all outstanding async I/O.
    pub fn wait_all(self) -> Script {
        self.op(Op::WaitAll)
    }

    /// Append a global barrier.
    pub fn barrier(self) -> Script {
        self.op(Op::Barrier)
    }

    /// Finish building.
    pub fn build(self) -> Vec<Op> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let s = Script::new()
            .compute(SimTime::from_us(1))
            .read(0, 2, 3)
            .write(1, 4, 5)
            .wait_all()
            .barrier()
            .build();
        assert_eq!(s.len(), 5);
        assert!(matches!(s[0], Op::Compute(d) if d == SimTime::from_us(1)));
        match &s[1] {
            Op::Io(reqs) => {
                assert_eq!(reqs.len(), 1);
                assert_eq!(reqs[0].block, 2);
            }
            other => panic!("unexpected op {other:?}"),
        }
        assert!(matches!(s[3], Op::WaitAll));
        assert!(matches!(s[4], Op::Barrier));
    }
}
