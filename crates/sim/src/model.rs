//! Device service models.
//!
//! A [`DeviceModel`] owns a device's request queue and decides *which*
//! pending request to service next (the scheduling policy) and *how long*
//! that service takes (the timing model). The engine only sees opaque
//! enqueue/start-next operations, so rotating disks, fixed-latency RAM
//! devices, and anything else plug in interchangeably.

use std::collections::VecDeque;

use crate::request::{PendingReq, ServiceBreakdown, Started};
use crate::time::SimTime;

/// A pluggable per-device queueing-and-timing model.
///
/// The engine calls `enqueue` when a process issues a request, and
/// `start_next` whenever the device is idle and may begin servicing. A model
/// services one request at a time; overlap across devices is what the
/// simulation is for.
pub trait DeviceModel: Send {
    /// Add a request to the device queue.
    fn enqueue(&mut self, req: PendingReq);

    /// Number of requests waiting (not counting one in service).
    fn pending(&self) -> usize;

    /// Choose the next request, compute its completion time from `now`, and
    /// commit internal state (head position etc.) to it. Returns `None` when
    /// the queue is empty.
    fn start_next(&mut self, now: SimTime) -> Option<Started>;
}

/// The simplest useful model: FIFO queue, constant per-request overhead plus
/// a constant per-block transfer time.
///
/// This models a device with no positional state — a RAM disk, or a disk
/// whose seek pattern the experiment deliberately abstracts away. It is also
/// the reference model for engine unit tests because its timing is trivial
/// to predict by hand.
#[derive(Debug)]
pub struct FixedLatencyModel {
    /// Fixed overhead charged to every request.
    pub per_request: SimTime,
    /// Transfer time charged per block.
    pub per_block: SimTime,
    queue: VecDeque<PendingReq>,
}

impl FixedLatencyModel {
    /// Create a model with the given per-request and per-block costs.
    pub fn new(per_request: SimTime, per_block: SimTime) -> FixedLatencyModel {
        FixedLatencyModel {
            per_request,
            per_block,
            queue: VecDeque::new(),
        }
    }
}

impl DeviceModel for FixedLatencyModel {
    fn enqueue(&mut self, req: PendingReq) {
        self.queue.push_back(req);
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn start_next(&mut self, now: SimTime) -> Option<Started> {
        let pending = self.queue.pop_front()?;
        let transfer = self.per_block * u64::from(pending.req.nblocks);
        let breakdown = ServiceBreakdown {
            seek: self.per_request,
            rotation: SimTime::ZERO,
            transfer,
        };
        Some(Started {
            pending,
            complete_at: now + breakdown.total(),
            breakdown,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::DiskReq;

    fn pend(block: u64, nblocks: u32, tag: u64) -> PendingReq {
        PendingReq {
            req: DiskReq::read(0, block, nblocks),
            proc: 0,
            issued: SimTime::ZERO,
            tag,
        }
    }

    #[test]
    fn fifo_order_and_timing() {
        let mut m = FixedLatencyModel::new(SimTime::from_us(10), SimTime::from_us(2));
        m.enqueue(pend(100, 1, 0));
        m.enqueue(pend(0, 3, 1));
        assert_eq!(m.pending(), 2);

        let s0 = m.start_next(SimTime::ZERO).unwrap();
        assert_eq!(s0.pending.tag, 0);
        assert_eq!(s0.complete_at, SimTime::from_us(12));
        assert_eq!(m.pending(), 1);

        let s1 = m.start_next(s0.complete_at).unwrap();
        assert_eq!(s1.pending.tag, 1);
        // 10us overhead + 3 blocks * 2us.
        assert_eq!(s1.complete_at, SimTime::from_us(12 + 16));
        assert!(m.start_next(SimTime::ZERO).is_none());
    }
}
