//! # pario-sim — deterministic discrete-event I/O simulation
//!
//! The timing experiments in Crockett's *File Concepts for Parallel I/O*
//! (1989) concern the interaction of parallel processes with a bank of
//! rotating storage devices: how striping scales transfer rates, how seeks
//! degrade a device shared by many processes, how read-ahead overlaps I/O
//! with computation. This crate provides the substrate those experiments run
//! on: a deterministic discrete-event engine with
//!
//! * a virtual nanosecond clock ([`SimTime`]),
//! * scripted processes ([`Script`]/[`Op`]) that compute, issue blocking or
//!   asynchronous device requests, and synchronise at barriers,
//! * pluggable per-device service models ([`DeviceModel`]) — the rotating
//!   disk model with seek/rotation/transfer timing lives in `pario-disk`,
//! * and per-run measurement ([`SimReport`]).
//!
//! Everything is exactly reproducible: equal-time events are ordered by
//! insertion sequence and no wall-clock or OS entropy enters the engine.
//!
//! ```
//! use pario_sim::{FixedLatencyModel, Script, SimTime, Simulation};
//!
//! let mut sim = Simulation::new();
//! let disks: Vec<usize> = (0..4)
//!     .map(|_| {
//!         sim.add_device(Box::new(FixedLatencyModel::new(
//!             SimTime::from_us(100),
//!             SimTime::from_us(10),
//!         )))
//!     })
//!     .collect();
//! // One process streams 64 blocks striped round-robin over 4 devices.
//! let mut script = Script::new();
//! for b in 0..64u64 {
//!     script = script.read(disks[(b % 4) as usize], b / 4, 1);
//! }
//! let report = Simulation::run({
//!     sim.add_proc(script.build());
//!     sim
//! });
//! assert!(report.makespan > SimTime::ZERO);
//! ```

#![warn(missing_docs)]

mod engine;
mod model;
mod request;
mod script;
mod stats;
mod time;

pub use engine::Simulation;
pub use model::{DeviceModel, FixedLatencyModel};
pub use request::{DiskReq, PendingReq, ReqKind, ServiceBreakdown, Started};
pub use script::{Op, Script};
pub use stats::{DeviceStats, Histogram, ProcStats, SimReport, TraceEvent};
pub use time::SimTime;
