//! The discrete-event engine.
//!
//! The engine owns a set of scripted processes and a set of devices, and
//! advances a virtual clock from event to event. Two event kinds exist: a
//! process becomes runnable, or a device finishes servicing a request.
//! Events at equal times are ordered by insertion sequence, so runs are
//! exactly reproducible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::model::DeviceModel;
use crate::request::{DiskReq, PendingReq, ReqKind, Started};
use crate::script::Op;
use crate::stats::{DeviceStats, ProcStats, SimReport, TraceEvent};
use crate::time::SimTime;

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum EvKind {
    ProcReady(usize),
    DiskDone(usize),
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct Ev {
    time: SimTime,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Ev) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Ev) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum ProcState {
    Idle,
    Computing,
    WaitingIo,
    AtBarrier,
    Done,
}

struct Proc {
    ops: VecDeque<Op>,
    outstanding: usize,
    state: ProcState,
    blocked_since: SimTime,
    stats: ProcStats,
}

struct Device {
    model: Box<dyn DeviceModel>,
    current: Option<Started>,
    service_start: SimTime,
    stats: DeviceStats,
}

/// A configured simulation: devices, scripted processes, and a clock.
///
/// ```
/// use pario_sim::{FixedLatencyModel, Script, SimTime, Simulation};
///
/// let mut sim = Simulation::new();
/// let dev = sim.add_device(Box::new(FixedLatencyModel::new(
///     SimTime::from_us(10),
///     SimTime::from_us(1),
/// )));
/// sim.add_proc(Script::new().read(dev, 0, 4).build());
/// let report = sim.run();
/// assert_eq!(report.makespan, SimTime::from_us(14));
/// ```
pub struct Simulation {
    now: SimTime,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    req_tag: u64,
    procs: Vec<Proc>,
    devices: Vec<Device>,
    trace: bool,
    trace_events: Vec<TraceEvent>,
}

impl Default for Simulation {
    fn default() -> Simulation {
        Simulation::new()
    }
}

impl Simulation {
    /// An empty simulation at time zero.
    pub fn new() -> Simulation {
        Simulation {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            req_tag: 0,
            procs: Vec::new(),
            devices: Vec::new(),
            trace: false,
            trace_events: Vec::new(),
        }
    }

    /// Record every serviced request in the report's trace.
    pub fn enable_trace(&mut self) {
        self.trace = true;
    }

    /// Add a device; returns its index for use in [`DiskReq`]s.
    pub fn add_device(&mut self, model: Box<dyn DeviceModel>) -> usize {
        self.devices.push(Device {
            model,
            current: None,
            service_start: SimTime::ZERO,
            stats: DeviceStats::default(),
        });
        self.devices.len() - 1
    }

    /// Add a scripted process; returns its index.
    pub fn add_proc(&mut self, script: Vec<Op>) -> usize {
        self.procs.push(Proc {
            ops: script.into(),
            outstanding: 0,
            state: ProcState::Idle,
            blocked_since: SimTime::ZERO,
            stats: ProcStats::default(),
        });
        self.procs.len() - 1
    }

    fn schedule(&mut self, time: SimTime, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev { time, seq, kind }));
    }

    /// Run every process to completion and report.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while some process is still blocked
    /// (a deadlocked barrier or an I/O that can never complete). That is
    /// always a bug in the experiment script, not a recoverable condition.
    pub fn run(mut self) -> SimReport {
        for p in 0..self.procs.len() {
            self.schedule(SimTime::ZERO, EvKind::ProcReady(p));
        }
        while let Some(Reverse(ev)) = self.heap.pop() {
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            match ev.kind {
                EvKind::ProcReady(p) => self.step(p),
                EvKind::DiskDone(d) => self.complete(d),
            }
        }
        let stuck: Vec<usize> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.state != ProcState::Done)
            .map(|(i, _)| i)
            .collect();
        assert!(
            stuck.is_empty(),
            "simulation deadlock: processes {stuck:?} never finished \
             (mismatched barriers or missing devices?)"
        );
        SimReport {
            makespan: self.now,
            procs: self.procs.into_iter().map(|p| p.stats).collect(),
            devices: self.devices.into_iter().map(|d| d.stats).collect(),
            trace: self.trace_events,
        }
    }

    /// Advance process `p` through its script until it blocks or finishes.
    fn step(&mut self, p: usize) {
        loop {
            let op = match self.procs[p].ops.pop_front() {
                Some(op) => op,
                None => {
                    self.procs[p].state = ProcState::Done;
                    self.procs[p].stats.finished_at = self.now;
                    // A process leaving the computation can satisfy a
                    // barrier the remaining processes are waiting at.
                    self.maybe_release_barrier();
                    return;
                }
            };
            match op {
                Op::Compute(d) => {
                    let proc = &mut self.procs[p];
                    proc.stats.compute += d;
                    proc.state = ProcState::Computing;
                    let at = self.now + d;
                    self.schedule(at, EvKind::ProcReady(p));
                    return;
                }
                Op::Io(reqs) => {
                    self.issue(p, &reqs);
                    let proc = &mut self.procs[p];
                    proc.stats.io_calls += 1;
                    if proc.outstanding > 0 {
                        proc.state = ProcState::WaitingIo;
                        proc.blocked_since = self.now;
                        return;
                    }
                }
                Op::IoAsync(reqs) => {
                    self.issue(p, &reqs);
                }
                Op::WaitAll => {
                    let proc = &mut self.procs[p];
                    if proc.outstanding > 0 {
                        proc.state = ProcState::WaitingIo;
                        proc.blocked_since = self.now;
                        return;
                    }
                }
                Op::Barrier => {
                    let proc = &mut self.procs[p];
                    proc.state = ProcState::AtBarrier;
                    proc.blocked_since = self.now;
                    self.maybe_release_barrier();
                    return;
                }
            }
        }
    }

    fn issue(&mut self, p: usize, reqs: &[DiskReq]) {
        for req in reqs {
            assert!(
                req.device < self.devices.len(),
                "request targets device {} but only {} exist",
                req.device,
                self.devices.len()
            );
            assert!(req.nblocks >= 1, "zero-length request");
            let tag = self.req_tag;
            self.req_tag += 1;
            self.devices[req.device].model.enqueue(PendingReq {
                req: *req,
                proc: p,
                issued: self.now,
                tag,
            });
            self.procs[p].outstanding += 1;
            self.kick(req.device);
        }
    }

    /// Start the next queued request on device `d` if it is idle.
    fn kick(&mut self, d: usize) {
        if self.devices[d].current.is_some() {
            return;
        }
        let now = self.now;
        if let Some(started) = self.devices[d].model.start_next(now) {
            let at = started.complete_at;
            self.devices[d].service_start = now;
            self.devices[d].current = Some(started);
            self.schedule(at, EvKind::DiskDone(d));
        }
    }

    fn complete(&mut self, d: usize) {
        let started = self.devices[d]
            .current
            .take()
            .expect("DiskDone for idle device");
        let service_start = self.devices[d].service_start;
        let b = started.breakdown;
        {
            let stats = &mut self.devices[d].stats;
            stats.requests += 1;
            stats.blocks += u64::from(started.pending.req.nblocks);
            stats.busy += b.total();
            stats.seek += b.seek;
            stats.rotation += b.rotation;
            stats.transfer += b.transfer;
            let response = self.now - started.pending.issued;
            stats.response_total += response;
            stats.response_hist.record(response);
        }
        if self.trace {
            self.trace_events.push(TraceEvent {
                start: service_start,
                end: self.now,
                proc: started.pending.proc,
                device: d,
                block: started.pending.req.block,
                nblocks: started.pending.req.nblocks,
                is_write: started.pending.req.kind == ReqKind::Write,
            });
        }
        let p = started.pending.proc;
        let proc = &mut self.procs[p];
        debug_assert!(proc.outstanding > 0);
        proc.outstanding -= 1;
        if proc.state == ProcState::WaitingIo && proc.outstanding == 0 {
            proc.stats.io_wait += self.now - proc.blocked_since;
            proc.state = ProcState::Idle;
            self.schedule(self.now, EvKind::ProcReady(p));
        }
        self.kick(d);
    }

    fn maybe_release_barrier(&mut self) {
        let live = self
            .procs
            .iter()
            .filter(|p| p.state != ProcState::Done)
            .count();
        let waiting = self
            .procs
            .iter()
            .filter(|p| p.state == ProcState::AtBarrier)
            .count();
        if live == 0 || waiting < live {
            return;
        }
        for p in 0..self.procs.len() {
            if self.procs[p].state == ProcState::AtBarrier {
                let since = self.procs[p].blocked_since;
                self.procs[p].stats.barrier_wait += self.now - since;
                self.procs[p].state = ProcState::Idle;
                self.schedule(self.now, EvKind::ProcReady(p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FixedLatencyModel;
    use crate::script::Script;

    fn dev() -> Box<FixedLatencyModel> {
        // 10us per request, 1us per block.
        Box::new(FixedLatencyModel::new(
            SimTime::from_us(10),
            SimTime::from_us(1),
        ))
    }

    #[test]
    fn single_read_timing() {
        let mut sim = Simulation::new();
        let d = sim.add_device(dev());
        sim.add_proc(Script::new().read(d, 0, 4).build());
        let r = sim.run();
        assert_eq!(r.makespan, SimTime::from_us(14));
        assert_eq!(r.devices[0].requests, 1);
        assert_eq!(r.devices[0].blocks, 4);
        assert_eq!(r.procs[0].io_wait, SimTime::from_us(14));
        assert_eq!(r.procs[0].finished_at, SimTime::from_us(14));
    }

    #[test]
    fn two_procs_two_devices_overlap() {
        let mut sim = Simulation::new();
        let d0 = sim.add_device(dev());
        let d1 = sim.add_device(dev());
        sim.add_proc(Script::new().read(d0, 0, 10).build());
        sim.add_proc(Script::new().read(d1, 0, 10).build());
        let r = sim.run();
        // Both 20us transfers run in parallel.
        assert_eq!(r.makespan, SimTime::from_us(20));
    }

    #[test]
    fn two_procs_one_device_serialize() {
        let mut sim = Simulation::new();
        let d0 = sim.add_device(dev());
        sim.add_proc(Script::new().read(d0, 0, 10).build());
        sim.add_proc(Script::new().read(d0, 100, 10).build());
        let r = sim.run();
        assert_eq!(r.makespan, SimTime::from_us(40));
        // The second process queued behind the first.
        let waits: Vec<_> = r.procs.iter().map(|p| p.io_wait).collect();
        assert!(waits.contains(&SimTime::from_us(20)));
        assert!(waits.contains(&SimTime::from_us(40)));
    }

    #[test]
    fn async_io_overlaps_compute() {
        let mut sim = Simulation::new();
        let d0 = sim.add_device(dev());
        // Issue a 20us read, compute 50us, then collect: I/O hides entirely.
        sim.add_proc(
            Script::new()
                .io_async(vec![DiskReq::read(d0, 0, 10)])
                .compute(SimTime::from_us(50))
                .wait_all()
                .build(),
        );
        let r = sim.run();
        assert_eq!(r.makespan, SimTime::from_us(50));
        assert_eq!(r.procs[0].io_wait, SimTime::ZERO);

        // Same work, synchronously: times add.
        let mut sim = Simulation::new();
        let d0 = sim.add_device(dev());
        sim.add_proc(
            Script::new()
                .read(d0, 0, 10)
                .compute(SimTime::from_us(50))
                .build(),
        );
        let r = sim.run();
        assert_eq!(r.makespan, SimTime::from_us(70));
    }

    #[test]
    fn barrier_synchronizes() {
        let mut sim = Simulation::new();
        sim.add_proc(
            Script::new()
                .compute(SimTime::from_us(5))
                .barrier()
                .compute(SimTime::from_us(1))
                .build(),
        );
        sim.add_proc(
            Script::new()
                .compute(SimTime::from_us(50))
                .barrier()
                .compute(SimTime::from_us(1))
                .build(),
        );
        let r = sim.run();
        assert_eq!(r.makespan, SimTime::from_us(51));
        assert_eq!(r.procs[0].barrier_wait, SimTime::from_us(45));
        assert_eq!(r.procs[1].barrier_wait, SimTime::ZERO);
    }

    #[test]
    fn finished_proc_releases_barrier() {
        let mut sim = Simulation::new();
        // Proc 0 never reaches a barrier but finishes; proc 1's barrier must
        // still release once proc 0 is done.
        sim.add_proc(Script::new().compute(SimTime::from_us(30)).build());
        sim.add_proc(Script::new().barrier().compute(SimTime::from_us(1)).build());
        let r = sim.run();
        assert_eq!(r.makespan, SimTime::from_us(31));
    }

    #[test]
    fn lone_proc_barrier_self_releases() {
        // With "only live processes participate" semantics, a barrier whose
        // peers have all finished (or never existed) releases immediately
        // rather than deadlocking.
        let mut sim = Simulation::new();
        sim.add_proc(
            Script::new()
                .barrier()
                .compute(SimTime::from_us(2))
                .barrier()
                .build(),
        );
        let r = sim.run();
        assert_eq!(r.makespan, SimTime::from_us(2));
        assert_eq!(r.procs[0].barrier_wait, SimTime::ZERO);
    }

    #[test]
    fn trace_records_service_intervals() {
        let mut sim = Simulation::new();
        sim.enable_trace();
        let d0 = sim.add_device(dev());
        sim.add_proc(Script::new().read(d0, 7, 2).write(d0, 9, 1).build());
        let r = sim.run();
        assert_eq!(r.trace.len(), 2);
        assert_eq!(r.trace[0].block, 7);
        assert!(!r.trace[0].is_write);
        assert_eq!(r.trace[0].start, SimTime::ZERO);
        assert_eq!(r.trace[0].end, SimTime::from_us(12));
        assert!(r.trace[1].is_write);
        assert_eq!(r.trace[1].start, SimTime::from_us(12));
    }

    #[test]
    fn deterministic_repeat() {
        let build = || {
            let mut sim = Simulation::new();
            sim.enable_trace();
            let d0 = sim.add_device(dev());
            let d1 = sim.add_device(dev());
            for p in 0..4 {
                let mut s = Script::new();
                for i in 0..8 {
                    s = s
                        .read((p + i) % 2, (p * 100 + i) as u64, 1 + (i as u32 % 3))
                        .compute(SimTime::from_us(3));
                }
                let _ = (d0, d1);
                sim.add_proc(s.build());
            }
            sim.run()
        };
        let a = build();
        let b = build();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(b.trace.iter()) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.proc, y.proc);
            assert_eq!(x.block, y.block);
        }
    }

    #[test]
    fn empty_io_does_not_block() {
        let mut sim = Simulation::new();
        sim.add_proc(vec![
            Op::Io(vec![]),
            Op::WaitAll,
            Op::Compute(SimTime::from_us(1)),
        ]);
        let r = sim.run();
        assert_eq!(r.makespan, SimTime::from_us(1));
    }
}
