//! I/O request descriptors exchanged between simulated processes and
//! simulated devices.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Direction of a device transfer.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ReqKind {
    /// Transfer from device to memory.
    Read,
    /// Transfer from memory to device.
    Write,
}

/// One request against one device: `nblocks` device blocks starting at
/// device-local block address `block`.
///
/// Requests are purely *positional* — the simulator models timing, not data
/// content. The block address matters because rotating-disk service time
/// depends on where the head currently is and where the request wants it.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DiskReq {
    /// Target device index within the simulation.
    pub device: usize,
    /// Device-local starting block address.
    pub block: u64,
    /// Number of contiguous blocks to transfer (must be >= 1).
    pub nblocks: u32,
    /// Read or write.
    pub kind: ReqKind,
}

impl DiskReq {
    /// A read of `nblocks` blocks at `block` on `device`.
    pub fn read(device: usize, block: u64, nblocks: u32) -> DiskReq {
        DiskReq {
            device,
            block,
            nblocks,
            kind: ReqKind::Read,
        }
    }

    /// A write of `nblocks` blocks at `block` on `device`.
    pub fn write(device: usize, block: u64, nblocks: u32) -> DiskReq {
        DiskReq {
            device,
            block,
            nblocks,
            kind: ReqKind::Write,
        }
    }

    /// The device-local block one past the end of this request.
    pub fn end_block(&self) -> u64 {
        self.block + u64::from(self.nblocks)
    }
}

/// A request sitting in (or just removed from) a device queue, with the
/// bookkeeping the engine needs to route its completion.
#[derive(Copy, Clone, Debug)]
pub struct PendingReq {
    /// The request itself.
    pub req: DiskReq,
    /// Index of the simulated process that issued it.
    pub proc: usize,
    /// Virtual time at which the process issued the request.
    pub issued: SimTime,
    /// Monotonic tag assigned at issue; breaks ties deterministically in
    /// schedulers and appears in traces.
    pub tag: u64,
}

/// Where a request's service time went, as computed by a device model.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceBreakdown {
    /// Head movement.
    pub seek: SimTime,
    /// Rotational latency waiting for the first sector.
    pub rotation: SimTime,
    /// Media transfer time.
    pub transfer: SimTime,
}

impl ServiceBreakdown {
    /// Total service time (excluding time spent queued).
    pub fn total(&self) -> SimTime {
        self.seek + self.rotation + self.transfer
    }
}

/// A request a device model has committed to service.
#[derive(Copy, Clone, Debug)]
pub struct Started {
    /// The queued request being serviced.
    pub pending: PendingReq,
    /// Virtual time at which service completes.
    pub complete_at: SimTime,
    /// Where the service time goes.
    pub breakdown: ServiceBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = DiskReq::read(2, 10, 4);
        assert_eq!(r.kind, ReqKind::Read);
        assert_eq!(r.device, 2);
        assert_eq!(r.end_block(), 14);
        let w = DiskReq::write(0, 0, 1);
        assert_eq!(w.kind, ReqKind::Write);
        assert_eq!(w.end_block(), 1);
    }

    #[test]
    fn breakdown_total() {
        let b = ServiceBreakdown {
            seek: SimTime::from_us(10),
            rotation: SimTime::from_us(5),
            transfer: SimTime::from_us(1),
        };
        assert_eq!(b.total(), SimTime::from_us(16));
    }
}
