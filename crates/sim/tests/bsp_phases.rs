//! Bulk-synchronous patterns on the engine: multi-superstep barrier
//! accounting, compute/I-O phase alternation, and stragglers.

use pario_sim::{FixedLatencyModel, Op, Script, SimTime, Simulation};

fn dev() -> Box<FixedLatencyModel> {
    Box::new(FixedLatencyModel::new(
        SimTime::from_us(20),
        SimTime::from_us(5),
    ))
}

#[test]
fn supersteps_advance_in_lockstep() {
    // 3 processes, 4 supersteps of (compute, io, barrier); compute times
    // differ per process, so every superstep waits for the slowest.
    let mut sim = Simulation::new();
    let d = sim.add_device(dev());
    for p in 0..3u64 {
        let mut s = Script::new();
        for step in 0..4u64 {
            s = s
                .compute(SimTime::from_us(100 * (p + 1)))
                .read(d, p * 100 + step, 1)
                .barrier();
        }
        sim.add_proc(s.build());
    }
    let r = sim.run();
    // Each superstep costs at least the slowest compute (300us); the
    // serialized I/O of 3 requests adds 3*25us.
    let floor = SimTime::from_us(4 * (300 + 25));
    assert!(r.makespan >= floor, "{} < {}", r.makespan, floor);
    // The fastest process accumulates barrier wait; the slowest barely.
    assert!(r.procs[0].barrier_wait > r.procs[2].barrier_wait);
    // Everyone performed 4 blocking I/O calls.
    assert!(r.procs.iter().all(|p| p.io_calls == 4));
}

#[test]
fn phase_structure_shows_in_device_idle_time() {
    // With a barrier after each I/O burst, the device idles during the
    // compute phases: busy time is well below the makespan.
    let mut sim = Simulation::new();
    let d = sim.add_device(dev());
    for _ in 0..2 {
        sim.add_proc(
            Script::new()
                .compute(SimTime::from_ms(1))
                .read(d, 0, 1)
                .barrier()
                .compute(SimTime::from_ms(1))
                .read(d, 1, 1)
                .barrier()
                .build(),
        );
    }
    let r = sim.run();
    let util = r.devices[0].utilization(r.makespan);
    assert!(util < 0.2, "device should be mostly idle, util={util:.2}");
    assert!(r.makespan >= SimTime::from_ms(2));
}

#[test]
fn straggler_detection_via_barrier_wait() {
    // One straggler makes everyone else's barrier_wait large — exactly
    // the signal a load-balance study reads from the report.
    let mut sim = Simulation::new();
    for p in 0..4u64 {
        let compute = if p == 3 {
            SimTime::from_ms(10)
        } else {
            SimTime::from_ms(1)
        };
        sim.add_proc(Script::new().compute(compute).barrier().build());
    }
    let r = sim.run();
    for p in 0..3 {
        assert_eq!(r.procs[p].barrier_wait, SimTime::from_ms(9), "proc {p}");
    }
    assert_eq!(r.procs[3].barrier_wait, SimTime::ZERO);
    assert_eq!(r.makespan, SimTime::from_ms(10));
}

#[test]
fn async_prefetch_across_barriers() {
    // Fire-and-forget reads issued before a barrier complete during the
    // next phase; WaitAll after the barrier collects them.
    let mut sim = Simulation::new();
    let d = sim.add_device(dev());
    sim.add_proc(vec![
        Op::IoAsync(vec![pario_sim::DiskReq::read(d, 0, 100)]),
        Op::Barrier,
        Op::Compute(SimTime::from_us(10)),
        Op::WaitAll,
    ]);
    sim.add_proc(vec![Op::Barrier]);
    let r = sim.run();
    // Read costs 20 + 100*5 = 520us, overlapping the barrier + compute.
    assert_eq!(r.makespan, SimTime::from_us(520));
    assert_eq!(r.procs[0].io_wait, SimTime::from_us(510));
}
