//! Property tests for the engine's foundational guarantees: exact
//! determinism, work conservation, and stat accounting.

use proptest::prelude::*;

use pario_sim::{DiskReq, FixedLatencyModel, Op, SimTime, Simulation};

/// A compact recipe for generating an arbitrary-but-valid simulation.
#[derive(Clone, Debug)]
struct Recipe {
    devices: usize,
    procs: Vec<Vec<(u8, u64, u8)>>, // (op selector, value, device hint)
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (1usize..5, 1usize..6).prop_flat_map(|(devices, nprocs)| {
        let ops = proptest::collection::vec((0u8..4, 0u64..1000, proptest::num::u8::ANY), 1..20);
        proptest::collection::vec(ops, nprocs).prop_map(move |procs| Recipe { devices, procs })
    })
}

fn build(r: &Recipe) -> Simulation {
    let mut sim = Simulation::new();
    sim.enable_trace();
    for _ in 0..r.devices {
        sim.add_device(Box::new(FixedLatencyModel::new(
            SimTime::from_us(50),
            SimTime::from_us(7),
        )));
    }
    for script in &r.procs {
        let ops: Vec<Op> = script
            .iter()
            .map(|&(sel, val, dev)| {
                let device = dev as usize % r.devices;
                match sel {
                    0 => Op::Compute(SimTime::from_us(val)),
                    1 => Op::Io(vec![DiskReq::read(device, val, 1 + (val % 4) as u32)]),
                    2 => Op::IoAsync(vec![DiskReq::write(device, val, 1)]),
                    _ => Op::WaitAll,
                }
            })
            .collect();
        sim.add_proc(ops);
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two runs of the same recipe are bit-for-bit identical.
    #[test]
    fn identical_runs(r in recipe_strategy()) {
        let a = build(&r).run();
        let b = build(&r).run();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(&b.trace) {
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
            prop_assert_eq!(x.proc, y.proc);
            prop_assert_eq!(x.device, y.device);
            prop_assert_eq!(x.block, y.block);
        }
        for (x, y) in a.devices.iter().zip(&b.devices) {
            prop_assert_eq!(x.busy, y.busy);
            prop_assert_eq!(&x.response_hist, &y.response_hist);
        }
    }

    /// Every issued request is serviced exactly once, and device busy
    /// time is consistent with the trace.
    #[test]
    fn work_conservation(r in recipe_strategy()) {
        let issued: u64 = r
            .procs
            .iter()
            .flatten()
            .filter(|&&(sel, _, _)| sel == 1 || sel == 2)
            .count() as u64;
        let report = build(&r).run();
        let serviced: u64 = report.devices.iter().map(|d| d.requests).sum();
        prop_assert_eq!(serviced, issued);
        prop_assert_eq!(report.trace.len() as u64, issued);
        // Per-device busy equals the sum of its trace intervals.
        for (d, stats) in report.devices.iter().enumerate() {
            let traced: SimTime = report
                .trace
                .iter()
                .filter(|t| t.device == d)
                .map(|t| t.end - t.start)
                .sum();
            prop_assert_eq!(traced, stats.busy);
        }
        // The response histogram counts every request.
        let hist_count: u64 = report.devices.iter().map(|d| d.response_hist.count).sum();
        prop_assert_eq!(hist_count, issued);
    }

    /// A device never services two requests at once (trace intervals on
    /// one device are disjoint).
    #[test]
    fn no_device_overlap(r in recipe_strategy()) {
        let report = build(&r).run();
        for d in 0..r.devices {
            let mut intervals: Vec<(SimTime, SimTime)> = report
                .trace
                .iter()
                .filter(|t| t.device == d)
                .map(|t| (t.start, t.end))
                .collect();
            intervals.sort();
            for w in intervals.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap on device {}", d);
            }
        }
    }

    /// Makespan equals the last event in the system — the later of the
    /// final process finish and the final device completion (a process
    /// may finish with fire-and-forget async writes still in flight).
    #[test]
    fn makespan_is_last_event(r in recipe_strategy()) {
        let report = build(&r).run();
        let last_finish = report
            .procs
            .iter()
            .map(|p| p.finished_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        let last_io = report
            .trace
            .iter()
            .map(|t| t.end)
            .max()
            .unwrap_or(SimTime::ZERO);
        prop_assert_eq!(report.makespan, last_finish.max(last_io));
    }
}
