//! A queue with multiple servers — the paper's motivating workload for
//! the self-scheduled (SS) organization: "self-scheduled input is
//! appropriate for algorithms which select the next available unit of
//! work for processing, as in a queue with multiple servers.
//! Self-scheduled output can be used when the order of the results is
//! not important."
//!
//! A master writes a file of heavy-tailed tasks; four workers claim
//! tasks through a shared SS reader (automatic load balancing) and emit
//! results through a shared SS writer. The same tasks run under a static
//! partitioned split for contrast.
//!
//! ```sh
//! cargo run --example work_queue
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pario::core::{Organization, ParallelFile};
use pario::fs::{Volume, VolumeConfig};
use pario::workloads::TaskQueue;

const TASKS: usize = 120;
const RECORD: usize = 64;
const WORKERS: u32 = 4;

fn spin_units(units: u64) {
    // One work unit = 50 microseconds of CPU.
    let end = Instant::now() + Duration::from_micros(50 * units);
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

fn main() {
    let volume = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: 4096,
    })
    .expect("volume");

    // The master publishes the task file (task id + work units).
    let q = TaskQueue::generate(TASKS, 1, 2026);
    let input = ParallelFile::create(&volume, "tasks", Organization::SelfScheduledSeq, RECORD, 64)
        .expect("create tasks");
    {
        let mut w = input.global_writer();
        for (id, &work) in q.work.iter().enumerate() {
            let mut rec = vec![0u8; RECORD];
            rec[..8].copy_from_slice(&(id as u64).to_le_bytes());
            rec[8..16].copy_from_slice(&work.to_le_bytes());
            w.write_record(&rec).expect("write task");
        }
        w.finish().expect("finish");
    }
    let results = ParallelFile::create(
        &volume,
        "results",
        Organization::SelfScheduledSeq,
        RECORD,
        64,
    )
    .expect("create results");

    // Self-scheduled run: whoever is free takes the next task.
    let per_worker: Vec<AtomicU64> = (0..WORKERS).map(|_| AtomicU64::new(0)).collect();
    let t0 = Instant::now();
    crossbeam::thread::scope(|s| {
        for w in 0..WORKERS {
            let reader = input.self_sched_reader().expect("reader");
            let writer = results.self_sched_writer().expect("writer");
            let per_worker = &per_worker;
            s.spawn(move |_| {
                let mut rec = vec![0u8; RECORD];
                while reader.read_next(&mut rec).expect("claim").is_some() {
                    let id = u64::from_le_bytes(rec[..8].try_into().unwrap());
                    let work = u64::from_le_bytes(rec[8..16].try_into().unwrap());
                    spin_units(work); // "process" the task
                    let mut out = vec![0u8; RECORD];
                    out[..8].copy_from_slice(&id.to_le_bytes());
                    out[8..16].copy_from_slice(&u64::from(w).to_le_bytes());
                    writer.write_next(&out).expect("emit");
                    per_worker[w as usize].fetch_add(work, Ordering::Relaxed);
                }
            });
        }
    })
    .expect("workers");
    let self_sched_time = t0.elapsed();
    results
        .self_sched_writer()
        .unwrap()
        .finish()
        .expect("finish");

    let loads: Vec<u64> = per_worker
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    println!("self-scheduled: {self_sched_time:?}, per-worker work units {loads:?}");

    // Every task appears in the results exactly once (order immaterial).
    let mut seen = [false; TASKS];
    let mut g = results.global_reader();
    let mut rec = vec![0u8; RECORD];
    while g.read_record(&mut rec).expect("read") {
        let id = u64::from_le_bytes(rec[..8].try_into().unwrap()) as usize;
        assert!(!seen[id], "task {id} duplicated");
        seen[id] = true;
    }
    assert!(seen.iter().all(|&s| s), "every task processed");
    println!("all {TASKS} tasks processed exactly once");

    // Static contrast: contiguous quarter of the queue per worker.
    let t0 = Instant::now();
    crossbeam::thread::scope(|s| {
        for w in 0..WORKERS as usize {
            let chunk: Vec<u64> = q
                .work
                .chunks(TASKS.div_ceil(WORKERS as usize))
                .nth(w)
                .unwrap_or(&[])
                .to_vec();
            s.spawn(move |_| {
                for units in chunk {
                    spin_units(units);
                }
            });
        }
    })
    .expect("workers");
    let static_time = t0.elapsed();
    println!("static partitioning: {static_time:?}");
    // On a single CPU core spun work serialises whatever the split, so
    // wall times converge; the load-balance contrast is in the makespan
    // model (max per-worker finish time on truly parallel workers):
    println!(
        "modelled parallel makespans (work units): ideal {}, self-scheduled {}, static {} — self-scheduling absorbs the heavy tail",
        q.ideal_makespan(u64::from(WORKERS)),
        q.self_sched_makespan(WORKERS),
        q.static_makespan(WORKERS)
    );
    println!("ok");
}
