//! Wrapped matrix storage — the paper's motivating workload for the
//! interleaved (IS) organization: "this organization would be useful for
//! wrapped storage of a matrix, for example."
//!
//! Three worker threads own the rows of a 12x8 matrix round-robin
//! (wrapped): worker p holds rows p, p+3, p+6, p+9. Each writes its rows
//! through its strided IS handle; the global view then shows the matrix
//! in plain row-major order for any sequential tool.
//!
//! ```sh
//! cargo run --example wrapped_matrix
//! ```

use pario::core::{Organization, ParallelFile};
use pario::fs::{Volume, VolumeConfig};
use pario::workloads::WrappedMatrix;

const ROWS: u64 = 12;
const COLS: u64 = 8;
const ELEM: usize = 64; // one record per matrix element

fn main() {
    let volume = Volume::create_in_memory(VolumeConfig {
        devices: 3, // one device per worker: private drives
        device_blocks: 1024,
        block_size: ELEM * COLS as usize, // one row = one volume block
    })
    .expect("volume");

    let m = WrappedMatrix {
        rows: ROWS,
        cols: COLS,
        processes: 3,
    };
    let pf = ParallelFile::create(
        &volume,
        "matrix",
        Organization::InterleavedSeq { processes: 3 },
        ELEM,
        COLS as usize, // one file block per row
    )
    .expect("create");

    // Each worker writes its wrapped rows concurrently.
    crossbeam::thread::scope(|s| {
        for p in 0..3u32 {
            let mut h = pf.interleaved_handle(p).expect("handle");
            let rows = m.rows_of(p);
            s.spawn(move |_| {
                for row in rows {
                    for col in 0..COLS {
                        let mut rec = vec![0u8; ELEM];
                        rec[..8].copy_from_slice(&m.element(row, col).to_le_bytes());
                        h.write_next(&rec).expect("write");
                    }
                }
            });
        }
    })
    .expect("threads");
    println!(
        "3 workers wrote a {ROWS}x{COLS} matrix wrapped row-wise \
         ({} records)",
        pf.len_records()
    );

    // Because IS interleaves whole rows across the three drives, each
    // worker's rows sit on its own device:
    let layout = pf.raw().layout();
    for row in 0..ROWS {
        assert_eq!(layout.map(row).device, (row % 3) as usize);
    }
    println!("row r is stored on device r % 3 — a private drive per worker");

    // A sequential program reads the matrix in row-major order through
    // the global view, oblivious to the parallel structure.
    let mut g = pf.global_reader();
    let mut rec = vec![0u8; ELEM];
    print!("global view (first column of each row): ");
    for row in 0..ROWS {
        g.seek_record(row * COLS);
        assert!(g.read_record(&mut rec).expect("read"));
        let v = u64::from_le_bytes(rec[..8].try_into().unwrap());
        assert_eq!(v, m.element(row, 0));
        print!("{v} ");
    }
    println!("\nok");
}
