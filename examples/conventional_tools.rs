//! Conventional sequential software over a parallel file — the paper's
//! defining requirement for *standard* parallel files: "they must appear
//! conventional to the system … so that they can be used by standard
//! sequential software such as editors, graphics utilities, print
//! spoolers, etc."
//!
//! Four threads write a type-IS file in parallel; then plain
//! `std::io::Read`-based code (a checksummer and a pattern scanner that
//! know nothing about parallel files) consumes it through the byte-stream
//! global view.
//!
//! ```sh
//! cargo run --example conventional_tools
//! ```

use std::io::{BufRead, BufReader, Read, Seek, SeekFrom};

use pario::core::{Organization, ParallelFile};
use pario::fs::{ByteReader, ByteWriter, Volume, VolumeConfig};

const RECORD: usize = 64;

/// A stand-in for any off-the-shelf stream consumer.
fn fletcher32(mut r: impl Read) -> u32 {
    let (mut a, mut b) = (0u32, 0u32);
    let mut buf = [0u8; 1024];
    loop {
        let n = r.read(&mut buf).expect("read");
        if n == 0 {
            break;
        }
        for &x in &buf[..n] {
            a = (a + u32::from(x)) % 65535;
            b = (b + a) % 65535;
        }
    }
    (b << 16) | a
}

fn main() {
    let volume = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: 512,
    })
    .expect("volume");
    let pf = ParallelFile::create(
        &volume,
        "report.txt",
        Organization::InterleavedSeq { processes: 4 },
        RECORD,
        8,
    )
    .expect("create");

    // Parallel producers: each worker writes its strided lines.
    crossbeam::thread::scope(|s| {
        for p in 0..4u32 {
            let mut h = pf.interleaved_handle(p).expect("handle");
            s.spawn(move |_| {
                for k in 0..8u64 {
                    for c in 0..8u64 {
                        let line_no = (u64::from(p) + k * 4) * 8 + c;
                        let text = format!("line {line_no:04} from worker {p}");
                        let mut rec = vec![b' '; RECORD];
                        rec[..text.len()].copy_from_slice(text.as_bytes());
                        rec[RECORD - 1] = b'\n';
                        h.write_next(&rec).expect("write");
                    }
                }
            });
        }
    })
    .expect("threads");
    println!(
        "4 workers wrote {} records (IS organization)",
        pf.len_records()
    );

    // Conventional tool #1: checksum the whole "file" via std::io.
    let sum = fletcher32(ByteReader::new(pf.raw().clone()));
    println!("fletcher32 over the byte stream: {sum:#010x}");

    // Conventional tool #2: a line scanner using BufRead, plus a seek.
    let mut reader = BufReader::new(ByteReader::new(pf.raw().clone()));
    let mut first = String::new();
    reader.read_line(&mut first).expect("line");
    println!("first line: {}", first.trim_end());
    let mut br = ByteReader::new(pf.raw().clone());
    br.seek(SeekFrom::End(-(RECORD as i64))).expect("seek");
    let mut last = String::new();
    br.read_to_string(&mut last).expect("tail");
    println!("last line:  {}", last.trim_end());
    assert!(first.contains("line 0000"));
    assert!(last.contains("from worker 3"));

    // Conventional tool #3: append through std::io::Write.
    let mut w = ByteWriter::append(pf.raw().clone());
    let mut tail = "appended by a sequential tool".to_string();
    tail.push_str(&" ".repeat(RECORD - tail.len() - 1));
    tail.push('\n');
    std::io::Write::write_all(&mut w, tail.as_bytes()).expect("append");
    w.finish().expect("finish");
    assert_eq!(pf.len_records(), 257);
    println!("sequential append landed as record 257 — one file, two worlds");
    println!("ok");
}
