//! Riding out a drive failure — the paper's §5 reliability machinery in
//! one sitting: parity-protected striping keeps a file readable through
//! a fail-stop, a scrub verifies stripe consistency, and a replacement
//! drive is rebuilt by XOR.
//!
//! ```sh
//! cargo run --example failure_recovery
//! ```

use pario::core::{Organization, ParallelFile};
use pario::fs::{Volume, VolumeConfig};
use pario::layout::LayoutSpec;
use pario::reliability::{rebuild_parity_slot, scrub};

const RECORD: usize = 1024;
const RECORDS: u64 = 64;

fn main() {
    // Four data drives + one drive's worth of rotated parity (RAID-5
    // style) — Kim's scheme, as cited by the paper.
    let volume = Volume::create_in_memory(VolumeConfig {
        devices: 5,
        device_blocks: 512,
        block_size: RECORD,
    })
    .expect("volume");
    let pf = ParallelFile::create_with_layout(
        &volume,
        "protected",
        Organization::GlobalDirect,
        RECORD,
        1,
        LayoutSpec::Parity {
            data_devices: 4,
            rotated: true,
        },
        None,
    )
    .expect("create");

    let h = pf.direct_handle().expect("handle");
    for r in 0..RECORDS {
        let mut rec = vec![0u8; RECORD];
        rec[..8].copy_from_slice(&(r * r).to_le_bytes());
        h.write_record(r, &rec).expect("write");
    }
    println!("wrote {RECORDS} records under rotated parity");
    assert!(scrub(pf.raw()).expect("scrub").is_empty());
    println!("scrub: every stripe's parity consistent");

    // Disaster: drive 2 dies mid-flight.
    volume.device(2).fail();
    println!("drive 2 FAILED");

    // Reads keep working — blocks on the dead drive reconstruct by XOR
    // of their stripe peers and parity.
    let mut rec = vec![0u8; RECORD];
    for r in 0..RECORDS {
        h.read_record(r, &mut rec).expect("degraded read");
        let v = u64::from_le_bytes(rec[..8].try_into().unwrap());
        assert_eq!(v, r * r);
    }
    println!("all {RECORDS} records still readable (degraded XOR reads)");

    // Writes keep working too: parity absorbs updates for the dead slot.
    let mut rec = vec![0u8; RECORD];
    rec[..8].copy_from_slice(&4242u64.to_le_bytes());
    h.write_record(9, &rec).expect("degraded write");
    h.read_record(9, &mut rec).expect("read back");
    assert_eq!(u64::from_le_bytes(rec[..8].try_into().unwrap()), 4242);
    println!("update of a record on the dead drive accepted and readable");

    // A replacement arrives blank; rebuild reconstructs its contents.
    volume.device(2).heal();
    let zero = vec![0u8; RECORD];
    for b in 0..volume.device(2).num_blocks() {
        volume.device(2).write_block(b, &zero).expect("blank");
    }
    let rebuilt = rebuild_parity_slot(pf.raw(), 2).expect("rebuild");
    println!("replacement drive rebuilt: {rebuilt} blocks reconstructed");

    assert!(scrub(pf.raw()).expect("scrub").is_empty());
    for r in 0..RECORDS {
        h.read_record(r, &mut rec).expect("read");
        let v = u64::from_le_bytes(rec[..8].try_into().unwrap());
        let expect = if r == 9 { 4242 } else { r * r };
        assert_eq!(v, expect, "record {r}");
    }
    println!("post-rebuild scrub clean; every record exact");
    println!("ok");
}
