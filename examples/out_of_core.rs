//! Out-of-core computation — the paper's motivating workload for the
//! partitioned direct access (PDA) organization: "this organization is
//! useful for programs which can't fit all of their data into memory,
//! and are using files for auxiliary storage. Blocks can be thought of
//! as pages of virtual memory, with the direct access feature allowing
//! multiple passes on the data."
//!
//! Four workers run a multi-pass relaxation over a data set "too large"
//! for memory: each pass sweeps the worker's pages back and forth
//! (as relaxation solvers do), paging records in and out through its
//! partition handle.
//!
//! ```sh
//! cargo run --example out_of_core
//! ```

use pario::core::{Organization, ParallelFile};
use pario::fs::{Volume, VolumeConfig};
use pario::workloads::OutOfCore;

const RECORD: usize = 256;
const RECORDS_PER_PART: u64 = 256;
const PARTS: u32 = 4;
const PASSES: u32 = 3;

fn main() {
    let volume = Volume::create_in_memory(VolumeConfig {
        devices: PARTS as usize,
        device_blocks: 2048,
        block_size: 4096,
    })
    .expect("volume");

    let total = RECORDS_PER_PART * u64::from(PARTS);
    let pf = ParallelFile::create_sized(
        &volume,
        "pages",
        Organization::PartitionedDirect { partitions: PARTS },
        RECORD,
        16,
        total,
    )
    .expect("create");

    // Initialise every record with a counter in its first 8 bytes.
    for p in 0..PARTS {
        let h = pf.partition_handle(p).expect("handle");
        for i in 0..h.len() {
            let mut rec = vec![0u8; RECORD];
            rec[..8].copy_from_slice(&1u64.to_le_bytes());
            h.write_at(i, &rec).expect("init");
        }
    }

    // The access pattern the workload generator prescribes: alternating
    // sweep direction per pass, read-modify-write per page.
    let pattern = OutOfCore {
        pages_per_part: RECORDS_PER_PART,
        processes: PARTS,
        passes: PASSES,
    };

    crossbeam::thread::scope(|s| {
        for (p, accesses) in pattern.trace().per_process(PARTS).into_iter().enumerate() {
            let h = pf.partition_handle(p as u32).expect("handle");
            s.spawn(move |_| {
                let mut rec = vec![0u8; RECORD];
                let mut pending: Option<u64> = None;
                for a in accesses {
                    match a.kind {
                        pario::workloads::AccessKind::Read => {
                            h.read_at(a.index, &mut rec).expect("page in");
                            let v = u64::from_le_bytes(rec[..8].try_into().unwrap());
                            pending = Some(v * 2 + 1); // the "relaxation"
                        }
                        pario::workloads::AccessKind::Write => {
                            let v = pending.take().expect("write follows read");
                            rec[..8].copy_from_slice(&v.to_le_bytes());
                            h.write_at(a.index, &rec).expect("page out");
                        }
                    }
                }
            });
        }
    })
    .expect("workers");

    // After k passes of v -> 2v+1 starting from 1: v = 2^(k+1) - 1.
    let expect = (1u64 << (PASSES + 1)) - 1;
    let mut g = pf.global_reader();
    let mut rec = vec![0u8; RECORD];
    let mut n = 0;
    while g.read_record(&mut rec).expect("read") {
        let v = u64::from_le_bytes(rec[..8].try_into().unwrap());
        assert_eq!(v, expect, "record {n}");
        n += 1;
    }
    println!(
        "{PARTS} workers, {PASSES} alternating passes over {n} records \
         ({} KiB per partition, paged through PDA handles)",
        RECORDS_PER_PART as usize * RECORD / 1024
    );
    println!("every record reached the expected value {expect}");

    // Device traffic: each worker paged only its own device.
    for d in 0..PARTS as usize {
        let c = volume.device(d).counters();
        println!("device {d}: {} reads, {} writes", c.reads, c.writes);
    }
    println!("ok");
}
