//! Quickstart: create a volume over four devices, write a self-scheduled
//! parallel file from multiple threads, read it back through both the
//! internal and the global (conventional sequential) views.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pario::core::{Organization, ParallelFile};
use pario::fs::{Volume, VolumeConfig};

fn main() {
    // A volume over 4 in-memory devices (swap in `FileDisk`s for
    // persistence — see the `persistence` integration test).
    let volume = Volume::create_in_memory(VolumeConfig {
        devices: 4,
        device_blocks: 1024,
        block_size: 4096,
    })
    .expect("volume");

    // A self-scheduled (type SS) file: any thread's write lands in the
    // globally next record slot.
    let pf = ParallelFile::create(
        &volume,
        "results.dat",
        Organization::SelfScheduledSeq,
        128, // record size
        32,  // records per file block
    )
    .expect("create");

    // Four worker threads produce 100 records total, racing freely.
    crossbeam::thread::scope(|s| {
        for worker in 0..4u8 {
            let w = pf.self_sched_writer().expect("SS writer");
            s.spawn(move |_| {
                for k in 0..25u32 {
                    let mut rec = vec![0u8; 128];
                    rec[0] = worker;
                    rec[1] = k as u8;
                    let slot = w.write_next(&rec).expect("write");
                    let _ = slot; // position chosen by the shared cursor
                }
            });
        }
    })
    .expect("threads");
    pf.self_sched_writer().unwrap().finish().expect("finish");
    println!("wrote {} records from 4 threads", pf.len_records());

    // The internal view: claim records cooperatively.
    let reader = pf.self_sched_reader().expect("SS reader");
    let mut buf = vec![0u8; 128];
    let mut claimed = 0;
    while reader.read_next(&mut buf).expect("read").is_some() {
        claimed += 1;
    }
    println!("internal (SS) view claimed {claimed} records exactly once");

    // The global view: the same file as an ordinary sequential file, the
    // way an editor or print spooler would see it.
    let mut global = pf.global_reader();
    let mut per_worker = [0u32; 4];
    while global.read_record(&mut buf).expect("read") {
        per_worker[buf[0] as usize] += 1;
    }
    println!("global view totals per worker: {per_worker:?}");
    assert_eq!(per_worker.iter().sum::<u32>(), 100);
    println!("ok");
}
